"""Tests for harness utilities: breakdowns, tables, geomean."""

import pytest

from repro.bench import (
    BreakdownRecorder,
    TimeBreakdown,
    format_seconds,
    format_table,
    geomean,
)
from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext


def test_breakdown_totals():
    b = TimeBreakdown(agg_compute=2.0, agg_reduce=3.0, driver=1.0,
                      non_agg=4.0)
    assert b.total == 10.0
    assert b.aggregation == 5.0
    assert b.agg_fraction == 0.5


def test_breakdown_scaled():
    b = TimeBreakdown(1.0, 2.0, 3.0, 4.0).scaled(2.0)
    assert b.total == 20.0
    assert b.agg_compute == 2.0


def test_breakdown_zero_total():
    assert TimeBreakdown(0, 0, 0, 0).agg_fraction == 0.0


def test_recorder_brackets_aggregations():
    sc = SparkerContext(ClusterConfig.laptop())
    rdd = sc.parallelize(range(100), 8)
    recorder = BreakdownRecorder(sc)
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    b = recorder.finish()
    assert b.agg_compute > 0
    assert b.agg_reduce > 0
    assert b.total == pytest.approx(
        b.agg_compute + b.agg_reduce + b.driver + b.non_agg)


def test_recorder_excludes_prior_activity():
    sc = SparkerContext(ClusterConfig.laptop())
    rdd = sc.parallelize(range(100), 8)
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    recorder = BreakdownRecorder(sc)  # start *after* the first aggregation
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    b = recorder.finish()
    # Only one aggregation's worth of time inside the bracket.
    assert b.total < sc.now


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_format_seconds_scales():
    assert format_seconds(5e-7) == "0.50us"
    assert format_seconds(2.5e-3) == "2.50ms"
    assert format_seconds(3.2) == "3.20s"


def test_format_table_alignment():
    text = format_table(["A", "Wide header"], [(1, 2.5), ("xx", 1e-5)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    assert "Wide header" in lines[2]
    # All rows padded to the same visual width structure.
    assert len(lines) == 6


def test_format_table_number_rendering():
    text = format_table(["x"], [(0.123456,), (1234.5,), (0.0,)])
    assert "0.123" in text
    assert "1.23e+03" in text or "1234" in text.replace(" ", "")
