"""Tests for the nine-workload harness (reduced-scale runs)."""

import pytest

from repro.bench import WORKLOADS, run_workload
from repro.cluster import ClusterConfig


def test_nine_workloads_registered():
    assert set(WORKLOADS) == {"LDA-E", "LDA-N", "LR-A", "LR-C", "LR-K",
                              "SVM-A", "SVM-C", "SVM-K", "SVM-K12"}


def test_workload_model_dataset_pairing():
    assert WORKLOADS["LDA-N"].model == "lda"
    assert WORKLOADS["LDA-N"].dataset_name == "nytimes"
    assert WORKLOADS["SVM-K12"].dataset_name == "kdd12"
    assert WORKLOADS["LR-K"].dataset_name == "kdd10"


def test_svm_uses_table3_regparam():
    for name in ("SVM-A", "SVM-C", "SVM-K", "SVM-K12"):
        assert WORKLOADS[name].reg_param == 0.01
        assert WORKLOADS[name].mini_batch_fraction == 1.0
    for name in ("LR-A", "LR-C", "LR-K"):
        assert WORKLOADS[name].reg_param == 0.0


def test_run_workload_returns_consistent_result():
    result = run_workload("LR-A", ClusterConfig.laptop(num_nodes=2),
                          iterations=2)
    assert result.workload == "LR-A"
    assert result.iterations == 2
    assert result.end_to_end > 0
    assert result.breakdown.total == pytest.approx(result.end_to_end,
                                                   rel=1e-6)
    assert result.final_loss > 0


def test_run_workload_lda():
    result = run_workload("LDA-E", ClusterConfig.laptop(num_nodes=2),
                          iterations=1)
    assert result.breakdown.agg_compute > 0
    assert result.breakdown.driver > 0


def test_run_workload_split_backend_changes_time_not_semantics():
    tree = run_workload("LR-A", ClusterConfig.laptop(num_nodes=2),
                        aggregation="tree", iterations=2)
    split = run_workload("LR-A", ClusterConfig.laptop(num_nodes=2),
                         aggregation="split", iterations=2)
    assert tree.final_loss == pytest.approx(split.final_loss)
    assert tree.end_to_end != split.end_to_end


def test_unknown_workload_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        run_workload("LR-K12", ClusterConfig.laptop())


def test_workload_deterministic():
    a = run_workload("SVM-A", ClusterConfig.laptop(num_nodes=2),
                     iterations=1)
    b = run_workload("SVM-A", ClusterConfig.laptop(num_nodes=2),
                     iterations=1)
    assert a.end_to_end == b.end_to_end
    assert a.final_loss == b.final_loss
