"""The benchmark regression gate (tools/bench_regress.py).

Covers the metric registry mechanics — wildcard paths, direction-aware
tolerances, configuration gating — and pins that every *committed*
BENCH_*.json artifact passes its own invariants, which is exactly what
the ``obs-smoke`` CI job runs.
"""

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

from bench_regress import (  # noqa: E402
    REGISTRY,
    Metric,
    Outcome,
    check_invariants,
    compare_reports,
    expand,
    main,
    same_configuration,
)


def outcome_of(fn, *args):
    out = Outcome()
    fn(*args, out)
    return out


# ------------------------------------------------------------ path expansion
def test_expand_concrete_path():
    assert list(expand({"a": {"b": 3}}, "a.b")) == [("a.b", 3)]


def test_expand_wildcard_fans_out_sorted():
    report = {"cells": {"z": {"v": 1}, "a": {"v": 2}}}
    assert list(expand(report, "cells.*.v")) == [
        ("cells.a.v", 2), ("cells.z.v", 1)]


def test_expand_missing_path_yields_nothing():
    assert list(expand({"a": 1}, "a.b.c")) == []
    assert list(expand({}, "x")) == []


# ----------------------------------------------------------------- tolerances
def test_metric_direction_lower():
    metric = Metric("m", "lower", rel_tol=0.20)
    assert metric.worse_by(1.0, 1.1) == pytest.approx(0.1)
    assert metric.worse_by(1.0, 0.9) == pytest.approx(-0.1)
    assert metric.allowance(1.0) == pytest.approx(0.20)


def test_metric_direction_higher_with_slack():
    metric = Metric("m", "higher", rel_tol=0.10, abs_slack=0.05)
    assert metric.worse_by(1.0, 0.8) == pytest.approx(0.2)
    assert metric.allowance(2.0) == pytest.approx(0.25)


def test_compare_flags_regression_beyond_tolerance():
    spec = type(REGISTRY["obs_overhead"])(metrics=(
        Metric("x", "lower", rel_tol=0.20),))
    base, curr = {"x": 1.0}, {"x": 1.5}
    out = outcome_of(lambda b, c, o: compare_reports(b, c, spec, o),
                     base, curr)
    assert out.failures == 1
    curr_ok = {"x": 1.15}
    out = outcome_of(lambda b, c, o: compare_reports(b, c, spec, o),
                     base, curr_ok)
    assert out.failures == 0 and out.checks == 1


def test_compare_skips_same_config_metrics_across_configs():
    spec = type(REGISTRY["obs_overhead"])(metrics=(
        Metric("x", "lower", same_config=True),))
    base = {"configuration": {"nodes": 4}, "x": 1.0}
    curr = {"configuration": {"nodes": 2}, "x": 99.0}
    out = outcome_of(lambda b, c, o: compare_reports(b, c, spec, o),
                     base, curr)
    assert out.failures == 0 and out.checks == 0


def test_same_configuration_ignores_smoke_and_repeats():
    base = {"configuration": {"nodes": 4, "repeats": 15, "smoke": False}}
    curr = {"configuration": {"nodes": 4, "repeats": 3, "smoke": True}}
    assert same_configuration(base, curr)
    curr2 = {"configuration": {"nodes": 2, "repeats": 15, "smoke": False}}
    assert not same_configuration(base, curr2)


def test_invariant_failure_detected():
    spec = REGISTRY["obs_overhead"]
    report = {"benchmark": "obs_overhead", "virtual_time_identical": False,
              "overhead_vs_detached": {"event_log": 0.5,
                                       "event_log_sync": 0.4}}
    out = outcome_of(lambda r, o: check_invariants(r, spec, o), report)
    # both the zero-perturbation flag and buffering-beats-sync fail
    assert out.failures == 2


def test_missing_invariant_path_fails():
    spec = REGISTRY["fault_recovery"]
    out = outcome_of(lambda r, o: check_invariants(r, spec, o),
                     {"benchmark": "fault_recovery"})
    assert out.failures >= 1


# ----------------------------------------------------------------- CLI modes
def test_check_mode_passes_on_committed_artifacts(capsys):
    artifacts = sorted(REPO.glob("BENCH_*.json"))
    assert artifacts, "repo must ship benchmark artifacts"
    assert main(["--check"] + [str(p) for p in artifacts]) == 0
    assert "[FAIL]" not in capsys.readouterr().out


def test_compare_mode_detects_overhead_regression(tmp_path, capsys):
    baseline_path = REPO / "BENCH_obs_overhead.json"
    baseline = json.loads(baseline_path.read_text())
    worse = json.loads(baseline_path.read_text())
    for mode in worse["overhead_vs_detached"]:
        worse["overhead_vs_detached"][mode] = (
            baseline["overhead_vs_detached"][mode] * 2.0 + 1.0)
    current = tmp_path / "current.json"
    current.write_text(json.dumps(worse))
    assert main(["--baseline", str(baseline_path),
                 "--current", str(current)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_compare_mode_passes_on_identical_artifact(tmp_path, capsys):
    baseline_path = REPO / "BENCH_obs_overhead.json"
    current = tmp_path / "same.json"
    current.write_text(baseline_path.read_text())
    assert main(["--baseline", str(baseline_path),
                 "--current", str(current)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_compare_mode_rejects_mismatched_benchmarks(tmp_path):
    current = tmp_path / "other.json"
    current.write_text(json.dumps({"benchmark": "sparse_agg"}))
    with pytest.raises(SystemExit):
        main(["--baseline", str(REPO / "BENCH_obs_overhead.json"),
              "--current", str(current)])


def test_unregistered_benchmark_is_not_gated(tmp_path):
    report = {"benchmark": "brand_new", "x": 1.0}
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(report))
    b.write_text(json.dumps({"benchmark": "brand_new", "x": 99.0}))
    assert main(["--baseline", str(a), "--current", str(b)]) == 0
