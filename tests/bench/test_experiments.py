"""Smoke tests for the figure experiments at reduced scale.

The full-scale shapes are asserted by the benchmark suite; these verify
the experiment plumbing (structure, monotonic basics) quickly.
"""

import pytest

from repro.bench import (
    aws_config_for_cores,
    bic_config_for_cores,
    fig12_p2p_latency,
    fig15_reduce_scatter_scaling,
    fig16_aggregation_scaling,
    table1_clusters,
    table2_datasets,
    table3_models,
)
from repro.cluster import KB, MB


def test_tables_render():
    assert "BIC" in table1_clusters()
    assert "kdd12" in table2_datasets()
    assert "LDA" in table3_models()


def test_bic_config_for_cores():
    assert bic_config_for_cores(24).num_nodes == 1
    assert bic_config_for_cores(192).num_nodes == 8
    with pytest.raises(ValueError):
        bic_config_for_cores(23)


def test_aws_config_for_cores_multi_node():
    cfg = aws_config_for_cores(960)
    assert cfg.num_nodes == 10
    assert cfg.num_executors * cfg.executor_cores == 960


def test_aws_config_for_cores_intra_node():
    cfg = aws_config_for_cores(8)
    assert cfg.num_nodes == 1
    assert cfg.num_executors == 1
    assert cfg.executor_cores == 8
    cfg = aws_config_for_cores(48)
    assert cfg.num_executors == 6


def test_aws_config_validation():
    with pytest.raises(ValueError):
        aws_config_for_cores(100)
    with pytest.raises(ValueError):
        aws_config_for_cores(7)


def test_fig12_structure():
    latencies = fig12_p2p_latency()
    assert set(latencies) == {"BM", "SC", "MPI"}
    assert latencies["MPI"] < latencies["SC"] < latencies["BM"]


def test_fig15_reduced_scale():
    rows = fig15_reduce_scatter_scaling(executor_counts=(6, 12),
                                        sizes=(256 * KB,))
    assert len(rows) == 2
    (_b1, n1, sc1, mpi1), (_b2, n2, sc2, mpi2) = rows
    assert (n1, n2) == (6, 12)
    assert sc2 > sc1  # latency-bound: more executors, more time
    assert mpi1 > 0 and mpi2 > 0


def test_fig15_rejects_bad_executor_counts():
    with pytest.raises(ValueError):
        fig15_reduce_scatter_scaling(executor_counts=(5,),
                                     sizes=(256 * KB,))


def test_fig16_reduced_scale_checks_results():
    rows = fig16_aggregation_scaling(node_counts=(1,), sizes=(1 * MB,),
                                     methods=("tree", "split"))
    times = {m: s for (_b, _n, m, s) in rows}
    assert times["tree"] > 0 and times["split"] > 0
