"""Tests for the host-time attribution profiler."""

from repro.bench.profile import (
    BUCKETS,
    SIM_CORE_SUBBUCKETS,
    HostTimeBreakdown,
    classify_path,
    classify_sim_core,
    profile_host,
)
from repro.bench.workloads import run_workload
from repro.cluster import ClusterConfig


def test_classify_path_rules():
    assert classify_path("/x/src/repro/sim/core.py") == "sim_core"
    assert classify_path("/x/src/repro/cluster/flows.py") == "sim_core"
    assert classify_path("/x/src/repro/serde/sizeof.py") == "serde"
    assert classify_path("/x/src/repro/ml/aggregators.py") == "user_compute"
    assert classify_path("/lib/numpy/core/numeric.py") == "user_compute"
    assert classify_path("/somewhere/else.py") == "other"


def test_classify_sim_core_subrules():
    assert classify_sim_core("/x/src/repro/cluster/flows.py") == "allocator"
    assert classify_sim_core("/x/src/repro/sim/calendar.py") == "calendar"
    assert classify_sim_core("/x/src/repro/sim/core.py") == "dispatch"
    assert classify_sim_core("/x/src/repro/rdd/executor.py") == "dispatch"


def test_sim_core_split_partitions_the_bucket():
    _result, breakdown = profile_host(
        run_workload, "LR-A", ClusterConfig.bic(2),
        aggregation="tree", iterations=1)
    assert set(breakdown.sim_core_split) == set(SIM_CORE_SUBBUCKETS)
    # The sub-buckets partition sim_core exactly.
    assert abs(sum(breakdown.sim_core_split.values())
               - breakdown.buckets["sim_core"]) < 1e-9
    # A real run touches both the allocator and the dispatch machinery.
    assert breakdown.sim_core_split["allocator"] > 0
    assert breakdown.sim_core_split["dispatch"] > 0
    payload = breakdown.as_dict()
    assert set(payload["sim_core_split"]) == set(SIM_CORE_SUBBUCKETS)
    assert abs(sum(payload["sim_core_fractions"].values()) - 1.0) < 1e-9
    assert "[sim_core:" in str(breakdown)


def test_profile_host_returns_result_and_buckets():
    result, breakdown = profile_host(
        run_workload, "LR-A", ClusterConfig.bic(2),
        aggregation="tree", iterations=1)
    assert result.workload == "LR-A"
    assert isinstance(breakdown, HostTimeBreakdown)
    assert breakdown.total > 0
    assert set(breakdown.buckets) == set(BUCKETS)
    # A real run spends measurable time in the simulation kernel.
    assert breakdown.fraction("sim_core") > 0
    payload = breakdown.as_dict()
    assert payload["buckets"].keys() == breakdown.buckets.keys()
    assert payload["top"], "expected at least one hot function"


def test_fractions_sum_to_one():
    _result, breakdown = profile_host(
        run_workload, "LR-A", ClusterConfig.bic(2),
        aggregation="tree", iterations=1)
    total = sum(breakdown.fraction(bucket) for bucket in BUCKETS)
    assert abs(total - 1.0) < 1e-9


def test_profile_host_propagates_exceptions():
    import pytest

    def boom():
        raise RuntimeError("intentional")

    with pytest.raises(RuntimeError, match="intentional"):
        profile_host(boom)
