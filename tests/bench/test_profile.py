"""Tests for the host-time attribution profiler."""

from repro.bench.profile import (
    BUCKETS,
    HostTimeBreakdown,
    classify_path,
    profile_host,
)
from repro.bench.workloads import run_workload
from repro.cluster import ClusterConfig


def test_classify_path_rules():
    assert classify_path("/x/src/repro/sim/core.py") == "sim_core"
    assert classify_path("/x/src/repro/cluster/flows.py") == "sim_core"
    assert classify_path("/x/src/repro/serde/sizeof.py") == "serde"
    assert classify_path("/x/src/repro/ml/aggregators.py") == "user_compute"
    assert classify_path("/lib/numpy/core/numeric.py") == "user_compute"
    assert classify_path("/somewhere/else.py") == "other"


def test_profile_host_returns_result_and_buckets():
    result, breakdown = profile_host(
        run_workload, "LR-A", ClusterConfig.bic(2),
        aggregation="tree", iterations=1)
    assert result.workload == "LR-A"
    assert isinstance(breakdown, HostTimeBreakdown)
    assert breakdown.total > 0
    assert set(breakdown.buckets) == set(BUCKETS)
    # A real run spends measurable time in the simulation kernel.
    assert breakdown.fraction("sim_core") > 0
    payload = breakdown.as_dict()
    assert payload["buckets"].keys() == breakdown.buckets.keys()
    assert payload["top"], "expected at least one hot function"


def test_fractions_sum_to_one():
    _result, breakdown = profile_host(
        run_workload, "LR-A", ClusterConfig.bic(2),
        aggregation="tree", iterations=1)
    total = sum(breakdown.fraction(bucket) for bucket in BUCKETS)
    assert abs(total - 1.0) < 1e-9


def test_profile_host_propagates_exceptions():
    import pytest

    def boom():
        raise RuntimeError("intentional")

    with pytest.raises(RuntimeError, match="intentional"):
        profile_host(boom)
