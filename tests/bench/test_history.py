"""Tests for the stage-log analyzer (the paper's §2.3 methodology)."""

import numpy as np
import pytest

from repro.bench import BreakdownRecorder
from repro.bench.history import analyze_stage_log, render_stage_log
from repro.cluster import MB, ClusterConfig
from repro.rdd import SparkerContext
from repro.serde import SizedPayload


def run_aggregation(method="tree", nodes=2):
    sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
    n = sc.cluster.total_cores
    data = [SizedPayload(np.ones(32), sim_bytes=16 * MB) for _ in range(n)]
    rdd = sc.parallelize(data, n).cache()
    rdd.count()
    mark = len(sc.dag.stage_log)
    recorder = BreakdownRecorder(sc)
    zero = lambda: SizedPayload(np.zeros(32), sim_bytes=16 * MB)  # noqa: E731
    if method == "split":
        rdd.split_aggregate(zero, lambda a, x: a.merge_inplace(x),
                            lambda u, i, k: u.split(i, k),
                            lambda a, b: a.merge(b), SizedPayload.concat)
    else:
        rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                           lambda a, b: a.merge(b))
    return sc, sc.dag.stage_log[mark:], recorder.finish()


def test_tree_aggregation_stages_classified():
    _sc, stages, _b = run_aggregation("tree")
    analysis = analyze_stage_log(stages)
    assert analysis.num_stages >= 2
    assert analysis.agg_compute > 0
    assert analysis.agg_reduce > 0
    assert analysis.aggregation_share > 0.9  # pure aggregation job


def test_split_aggregation_stages_classified():
    _sc, stages, _b = run_aggregation("split")
    analysis = analyze_stage_log(stages)
    assert analysis.stage_kinds.get("reduced_result") == 1
    assert analysis.agg_compute > 0


def test_log_analysis_agrees_with_stopwatch():
    """The log-derived compute matches the stopwatch-derived compute (it
    is literally the first stage's duration for the tree path)."""
    _sc, stages, breakdown = run_aggregation("tree")
    analysis = analyze_stage_log(stages)
    assert analysis.agg_compute == pytest.approx(breakdown.agg_compute,
                                                 rel=1e-6)


def test_analysis_of_non_aggregation_job():
    sc = SparkerContext(ClusterConfig.laptop())
    sc.parallelize(range(100), 8).map(lambda x: x + 1).count()
    analysis = analyze_stage_log(sc.dag.stage_log)
    assert analysis.agg_compute == 0
    assert analysis.agg_reduce == 0
    assert analysis.other > 0
    assert analysis.aggregation_share == 0.0


def test_empty_log():
    analysis = analyze_stage_log([])
    assert analysis.num_stages == 0
    assert analysis.total_stage_time == 0.0
    assert analysis.aggregation_share == 0.0


def test_render_stage_log():
    _sc, stages, _b = run_aggregation("tree")
    text = render_stage_log(stages, title="T")
    assert "treeAgg:level0" in text
    assert "Bucket" in text
    assert text.count("\n") >= len(stages) + 2


def test_history_round_trips_through_json(tmp_path):
    from repro.bench import dump_history, load_history

    _sc, stages, _b = run_aggregation("tree")
    path = tmp_path / "history.jsonl"
    assert dump_history(stages, path) == len(stages)
    loaded = load_history(path)
    assert len(loaded) == len(stages)
    for orig, back in zip(stages, loaded):
        assert back.stage_id == orig.stage_id
        assert back.kind == orig.kind
        assert back.rdd_name == orig.rdd_name
        assert back.duration == pytest.approx(orig.duration)
    # Analysis of the loaded log matches analysis of the live log.
    live = analyze_stage_log(stages)
    filed = analyze_stage_log(loaded)
    assert filed.agg_compute == pytest.approx(live.agg_compute)
    assert filed.agg_reduce == pytest.approx(live.agg_reduce)


def test_unfinished_stage_has_none_duration_and_is_skipped(tmp_path):
    """Regression: a submitted-but-never-finished stage used to report a
    NaN duration; it now reports None and is excluded (but counted)."""
    from repro.bench import dump_history, load_history
    from repro.rdd.scheduler import StageInfo

    open_stage = StageInfo(stage_id=9, kind="result", rdd_name="map@9",
                           num_tasks=4, attempt=0, submitted_at=1.5)
    assert not open_stage.finished
    assert open_stage.duration is None

    _sc, stages, _b = run_aggregation("tree")
    full = analyze_stage_log(stages)
    analysis = analyze_stage_log(list(stages) + [open_stage])
    assert analysis.unfinished == 1
    assert analysis.num_stages == full.num_stages + 1
    assert analysis.total_stage_time == pytest.approx(full.total_stage_time)

    # rendering and the JSON round-trip survive the open stage too
    assert "map@9" in render_stage_log([open_stage])
    path = tmp_path / "open.jsonl"
    dump_history([open_stage], path)
    (loaded,) = load_history(path)
    assert loaded.duration is None


def test_load_history_skips_blank_lines(tmp_path):
    from repro.bench import dump_history, load_history

    _sc, stages, _b = run_aggregation("tree")
    path = tmp_path / "history.jsonl"
    dump_history(stages, path)
    path.write_text(path.read_text() + "\n\n", encoding="utf-8")
    assert len(load_history(path)) == len(stages)
