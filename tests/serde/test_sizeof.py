"""Tests for simulated size estimation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serde import sim_sizeof


def test_none_is_tiny():
    assert sim_sizeof(None) == 1.0


def test_numpy_array_uses_nbytes():
    arr = np.zeros(1000, dtype=np.float64)
    assert sim_sizeof(arr) == pytest.approx(8000, abs=64)


def test_numpy_scalar():
    assert sim_sizeof(np.float64(1.0)) == pytest.approx(10.0)


def test_scalars():
    assert sim_sizeof(3) == pytest.approx(10.0)
    assert sim_sizeof(3.5) == pytest.approx(10.0)
    assert sim_sizeof(True) == 1.0


def test_string_utf8_length():
    assert sim_sizeof("abcd") == pytest.approx(4 + 16)
    assert sim_sizeof("é") == pytest.approx(2 + 16)


def test_bytes():
    assert sim_sizeof(b"12345") == pytest.approx(5 + 16)


def test_list_scales_with_length():
    small = sim_sizeof([1.0] * 10)
    big = sim_sizeof([1.0] * 1000)
    assert big > 50 * small / 10


def test_large_list_extrapolated_consistently():
    exact = sim_sizeof([1.0] * 64)
    extrapolated = sim_sizeof([1.0] * 6400)
    assert extrapolated == pytest.approx(
        (exact - 16) * 100 + 16, rel=0.01)


def test_dict_counts_keys_and_values():
    d = {i: float(i) for i in range(10)}
    assert sim_sizeof(d) > sim_sizeof(list(d.values()))


def test_sim_sized_protocol_wins():
    class Declared:
        def __sim_size__(self):
            return 12345.0

    assert sim_sizeof(Declared()) == 12345.0


def test_sim_sized_negative_rejected():
    class Bad:
        def __sim_size__(self):
            return -1.0

    with pytest.raises(ValueError):
        sim_sizeof(Bad())


def test_plain_object_uses_dict():
    class Holder:
        def __init__(self):
            self.arr = np.zeros(100)
            self.tag = "x"

    size = sim_sizeof(Holder())
    assert size > 800


def test_slots_object():
    class Slotted:
        __slots__ = ("a", "b")

        def __init__(self):
            self.a = np.zeros(10)
            # b intentionally unset

    assert sim_sizeof(Slotted()) > 80


def test_empty_containers():
    assert sim_sizeof([]) == 16.0
    assert sim_sizeof({}) == 16.0
    assert sim_sizeof(()) == 16.0


@given(st.integers(min_value=0, max_value=10_000))
def test_array_size_monotone_in_length(n):
    assert sim_sizeof(np.zeros(n)) == pytest.approx(8 * n + 16)


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                max_size=30))
def test_list_size_positive_and_deterministic(values):
    a = sim_sizeof(values)
    b = sim_sizeof(values)
    assert a == b > 0
