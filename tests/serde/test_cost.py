"""Tests for the serialization cost model."""

import numpy as np
import pytest

from repro.cluster import MB, ClusterConfig
from repro.serde import SerdeModel


def test_linear_in_bytes():
    model = SerdeModel(ser_bandwidth=100.0, deser_bandwidth=200.0, fixed=1.0)
    assert model.ser_time_bytes(0) == 1.0
    assert model.ser_time_bytes(100) == pytest.approx(2.0)
    assert model.deser_time_bytes(200) == pytest.approx(2.0)


def test_round_trip_is_sum():
    model = SerdeModel(100.0, 100.0, fixed=0.5)
    assert model.round_trip_bytes(100) == pytest.approx(
        model.ser_time_bytes(100) + model.deser_time_bytes(100))


def test_value_path_uses_sim_sizeof():
    model = SerdeModel(1.0, 1.0)
    arr = np.zeros(10)
    assert model.ser_time(arr) == pytest.approx(arr.nbytes + 16)


def test_from_config():
    cfg = ClusterConfig.bic()
    model = SerdeModel.from_config(cfg)
    assert model.ser_bandwidth == cfg.ser_bandwidth
    assert model.fixed == cfg.ser_fixed
    # 8 MB at ~300 MB/s is in the tens of milliseconds: the regime where
    # per-task serialization hurts and IMM pays off.
    assert 0.01 < model.ser_time_bytes(8 * MB) < 0.1


def test_validation():
    with pytest.raises(ValueError):
        SerdeModel(0.0, 1.0)
    with pytest.raises(ValueError):
        SerdeModel(1.0, -1.0)
    with pytest.raises(ValueError):
        SerdeModel(1.0, 1.0, fixed=-1.0)
    model = SerdeModel(1.0, 1.0)
    with pytest.raises(ValueError):
        model.ser_time_bytes(-5)
    with pytest.raises(ValueError):
        model.deser_time_bytes(-5)
