"""Sparse kernels, the wire-format policy, and the sizeof extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serde import (
    DEFAULT_SPARSE_POLICY,
    SparsePolicy,
    coalesce_chunks,
    densify_sparse,
    density_of,
    merge_sparse,
    representation_of,
    scatter_into,
    sim_dense_sizeof,
    sim_sizeof,
    slice_sparse,
)


# ------------------------------------------------------------------ kernels
def test_coalesce_chunks_dedups_in_order():
    idx, vals = coalesce_chunks(
        [np.array([3, 1, 3]), np.array([1, 7])],
        [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0])])
    np.testing.assert_array_equal(idx, [1, 3, 7])
    np.testing.assert_array_equal(vals, [(2.0 + 4.0), (1.0 + 3.0), 5.0])


def test_merge_sparse_matches_dense_sum():
    a_i, a_v = np.array([0, 5]), np.array([1.0, 2.0])
    b_i, b_v = np.array([5, 9]), np.array([3.0, 4.0])
    idx, vals = merge_sparse(a_i, a_v, b_i, b_v)
    dense = densify_sparse(idx, vals, 10)
    expected = np.zeros(10)
    expected[[0, 5, 9]] = [1.0, 5.0, 4.0]
    np.testing.assert_array_equal(dense, expected)


def test_slice_sparse_rebases_window():
    idx = np.array([2, 4, 8, 9])
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    s_idx, s_vals = slice_sparse(idx, vals, 4, 9)
    np.testing.assert_array_equal(s_idx, [0, 4])
    np.testing.assert_array_equal(s_vals, [2.0, 3.0])


def test_scatter_into_accumulates_duplicates():
    dense = np.zeros(4)
    scatter_into(dense, np.array([1, 1, 3]), np.array([1.0, 2.0, 4.0]))
    np.testing.assert_array_equal(dense, [0.0, 3.0, 0.0, 4.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 49),
                          st.floats(-1e6, 1e6, allow_nan=False)),
                max_size=200))
def test_coalesce_bit_identical_to_add_at(entries):
    idx = np.array([e[0] for e in entries], dtype=np.int64)
    vals = np.array([e[1] for e in entries])
    reference = np.zeros(50)
    np.add.at(reference, idx, vals)
    u_idx, u_vals = coalesce_chunks([idx], [vals])
    np.testing.assert_array_equal(densify_sparse(u_idx, u_vals, 50),
                                  reference)


# ------------------------------------------------------------------- policy
def test_policy_wire_bytes_and_break_even():
    policy = SparsePolicy()
    # 16 B per sparse element vs 8 B dense: break-even at density 0.5.
    assert policy.sparse_wire_bytes(10) == 160.0
    assert policy.dense_wire_bytes(100) == 800.0
    assert policy.prefer_sparse(49, 100)
    assert not policy.prefer_sparse(50, 100)
    assert policy.wire_bytes(10, 100) == 160.0
    assert policy.wire_bytes(90, 100) == 800.0


def test_policy_should_densify_threshold():
    policy = SparsePolicy(density_threshold=0.25)
    assert not policy.should_densify(24, 100)
    assert policy.should_densify(25, 100)
    assert not policy.should_densify(0, 0)


def test_policy_validation():
    with pytest.raises(ValueError):
        SparsePolicy(density_threshold=0.0)
    with pytest.raises(ValueError):
        SparsePolicy(density_threshold=1.5)
    with pytest.raises(ValueError):
        SparsePolicy(index_bytes=-1.0)


def test_policy_scale_applies():
    policy = DEFAULT_SPARSE_POLICY
    assert policy.sparse_wire_bytes(10, scale=2.0) == 320.0
    assert policy.wire_bytes(10, 100, scale=3.0) == 480.0


# ------------------------------------------------------ sizeof extensions
class _Sparseish:
    representation = "sparse"
    density = 0.125

    def __sim_size__(self):
        return 100.0

    def __sim_dense_size__(self):
        return 800.0


def test_sim_dense_sizeof_prefers_protocol():
    obj = _Sparseish()
    assert sim_sizeof(obj) == 100.0
    assert sim_dense_sizeof(obj) == 800.0
    # falls back to sim_sizeof for plain values
    assert sim_dense_sizeof(3.0) == sim_sizeof(3.0)


def test_representation_and_density_probes():
    obj = _Sparseish()
    assert representation_of(obj) == "sparse"
    assert density_of(obj) == 0.125
    assert representation_of([1, 2]) == "dense"
    assert density_of(42) == 1.0


def test_heterogeneous_list_sampled_across_whole_list():
    # A list whose expensive elements all sit past the old first-64
    # sampling window: stride sampling must not extrapolate from the
    # cheap prefix alone.
    cheap, costly = 1.0, "x" * 1000
    items = [cheap] * 640 + [costly] * 640
    estimate = sim_sizeof(items)
    true_size = sim_sizeof([cheap]) - sim_sizeof([]) \
        + sim_sizeof([costly]) - sim_sizeof([])
    # per-pair average must reflect both element kinds
    per_item = (estimate - sim_sizeof([])) / len(items)
    assert per_item > 0.4 * (true_size / 2)
    # and a homogeneous list still extrapolates exactly
    uniform = [2.5] * 6400
    assert sim_sizeof(uniform) == pytest.approx(
        (sim_sizeof([2.5] * 64) - sim_sizeof([])) * 100 + sim_sizeof([]))
