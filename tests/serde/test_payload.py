"""Tests for SizedPayload and segment arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serde import SizedPayload, segment_bounds, sim_sizeof


def test_default_sim_size_is_physical():
    p = SizedPayload(np.zeros(100))
    assert p.sim_bytes == 800
    assert p.scale == 1.0


def test_declared_sim_size():
    p = SizedPayload(np.zeros(100), sim_bytes=8_000_000)
    assert sim_sizeof(p) == 8_000_000
    assert p.scale == pytest.approx(10_000)


def test_merge_sums_elementwise():
    a = SizedPayload(np.arange(4, dtype=float))
    b = SizedPayload(np.ones(4))
    merged = a.merge(b)
    np.testing.assert_allclose(merged.data, [1, 2, 3, 4])
    # Merging equal-sized payloads must not inflate the simulated size.
    assert merged.sim_bytes == a.sim_bytes


def test_merge_inplace_mutates_left():
    a = SizedPayload(np.arange(4, dtype=float))
    b = SizedPayload(np.ones(4))
    out = a.merge_inplace(b)
    assert out is a
    np.testing.assert_allclose(a.data, [1, 2, 3, 4])


def test_merge_length_mismatch_rejected():
    with pytest.raises(ValueError):
        SizedPayload(np.zeros(3)).merge(SizedPayload(np.zeros(4)))


def test_split_partitions_exactly():
    p = SizedPayload(np.arange(10, dtype=float), sim_bytes=1000)
    segments = [p.split(i, 3) for i in range(3)]
    np.testing.assert_allclose(
        np.concatenate([s.data for s in segments]), p.data)
    assert sum(s.sim_bytes for s in segments) == pytest.approx(1000)
    # 10 elements over 3 segments: sizes 4, 3, 3.
    assert [len(s) for s in segments] == [4, 3, 3]


def test_split_out_of_range():
    p = SizedPayload(np.zeros(4))
    with pytest.raises(IndexError):
        p.split(3, 3)
    with pytest.raises(IndexError):
        p.split(-1, 3)


def test_concat_round_trip():
    p = SizedPayload(np.arange(17, dtype=float), sim_bytes=1700)
    back = SizedPayload.concat([p.split(i, 5) for i in range(5)])
    np.testing.assert_allclose(back.data, p.data)
    assert back.sim_bytes == pytest.approx(1700)


def test_concat_empty_rejected():
    with pytest.raises(ValueError):
        SizedPayload.concat([])


def test_non_1d_rejected():
    with pytest.raises(ValueError):
        SizedPayload(np.zeros((2, 2)))


def test_negative_sim_size_rejected():
    with pytest.raises(ValueError):
        SizedPayload(np.zeros(2), sim_bytes=-1)


def test_copy_is_independent():
    p = SizedPayload(np.zeros(4))
    q = p.copy()
    q.data[0] = 7
    assert p.data[0] == 0


def test_segment_bounds_basic():
    assert segment_bounds(10, 3) == [0, 4, 7, 10]
    assert segment_bounds(9, 3) == [0, 3, 6, 9]
    assert segment_bounds(2, 4) == [0, 1, 2, 2, 2]


def test_segment_bounds_validation():
    with pytest.raises(ValueError):
        segment_bounds(10, 0)


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=64))
def test_segment_bounds_cover_everything(n, k):
    bounds = segment_bounds(n, k)
    assert bounds[0] == 0 and bounds[-1] == n
    assert len(bounds) == k + 1
    sizes = [b - a for a, b in zip(bounds, bounds[1:])]
    assert all(s >= 0 for s in sizes)
    assert max(sizes) - min(sizes) <= 1  # balanced


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=16))
def test_split_concat_identity_property(n, k):
    rng = np.random.default_rng(n * 1000 + k)
    p = SizedPayload(rng.standard_normal(n), sim_bytes=float(n * 80))
    segments = [p.split(i, k) for i in range(k)]
    back = SizedPayload.concat(segments)
    np.testing.assert_allclose(back.data, p.data)
    assert back.sim_bytes == pytest.approx(p.sim_bytes)
