"""Top-k sparsification kernels: determinism and the residual-carry law."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serde import densify_sparse, topk_indices, topk_sparsify


def test_topk_indices_picks_largest_magnitudes():
    values = np.array([0.5, -9.0, 2.0, 0.0, -3.0])
    np.testing.assert_array_equal(topk_indices(values, 2), [1, 4])


def test_topk_indices_sorted_ascending():
    rng = np.random.default_rng(0)
    idx = topk_indices(rng.normal(size=100), 17)
    assert idx.dtype == np.int64
    assert np.all(np.diff(idx) > 0)


def test_topk_indices_ties_break_to_lower_index():
    values = np.array([2.0, -2.0, 2.0, 1.0])
    np.testing.assert_array_equal(topk_indices(values, 2), [0, 1])


def test_topk_indices_k_at_least_size_returns_everything():
    values = np.array([1.0, 0.0, -2.0])
    np.testing.assert_array_equal(topk_indices(values, 3), [0, 1, 2])
    np.testing.assert_array_equal(topk_indices(values, 10), [0, 1, 2])


def test_topk_indices_rejects_nonpositive_k():
    with pytest.raises(ValueError, match="k must be >= 1"):
        topk_indices(np.ones(4), 0)


def test_topk_sparsify_residual_carry_identity():
    rng = np.random.default_rng(3)
    values = rng.normal(size=64)
    idx, sent, residual = topk_sparsify(values, 5)
    rebuilt = densify_sparse(idx, sent, values.size) + residual
    # bit-exact, not approx: selected slots are zeroed, others untouched
    assert rebuilt.tobytes() == values.tobytes()
    assert np.count_nonzero(residual[idx]) == 0


def test_topk_sparsify_k_equals_dim_is_exact():
    rng = np.random.default_rng(4)
    values = rng.normal(size=32)
    idx, sent, residual = topk_sparsify(values, 32)
    assert densify_sparse(idx, sent, 32).tobytes() == values.tobytes()
    assert not residual.any()


def test_topk_sparsify_input_not_mutated():
    values = np.arange(8, dtype=float)
    before = values.copy()
    topk_sparsify(values, 3)
    np.testing.assert_array_equal(values, before)


def test_topk_determinism_across_equal_buffers():
    """Two executors holding equal buffers must select identically."""
    rng = np.random.default_rng(5)
    a = rng.normal(size=50)
    b = a.copy()
    ia, sa, _ = topk_sparsify(a, 7)
    ib, sb, _ = topk_sparsify(b, 7)
    np.testing.assert_array_equal(ia, ib)
    assert sa.tobytes() == sb.tobytes()


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 80), k=st.integers(1, 100), seed=st.integers(0, 50))
def test_topk_property_carry_and_selection(n, k, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(-9, 10, size=n).astype(float)
    idx, sent, residual = topk_sparsify(values, k)
    assert idx.size == min(k, n)
    rebuilt = densify_sparse(idx, sent, n) + residual
    assert rebuilt.tobytes() == values.tobytes()
    # every kept magnitude >= every dropped magnitude
    if idx.size < n:
        dropped = np.setdiff1d(np.arange(n), idx)
        assert np.abs(values[idx]).min() >= np.abs(values[dropped]).max()
