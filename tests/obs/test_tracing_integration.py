"""End-to-end acceptance tests for the observability layer.

The three contract points from the issue:

a. an event log of a seeded splitAggregate run reconstructs the same
   agg-compute / agg-reduce / driver decomposition as the live stopwatch,
b. the Chrome trace has one lane per busy executor core plus driver and
   NIC lanes (checked in ``test_chrome_trace``),
c. tracing on vs off yields identical virtual times.
"""

import json

import pytest

from repro.obs import analyze_events, dump_events, load_events
from repro.obs.__main__ import main as obs_main
from tests.obs.helpers import run_lr


def test_event_stream_covers_engine_layers():
    _sc, recorder = run_lr(aggregation="split", nic=True)
    kinds = {e.kind for e in recorder.events}
    assert {"job_start", "job_end", "stage_submitted", "stage_completed",
            "task_start", "task_end", "block", "message_sent",
            "message_delivered", "ring_hop", "imm_merge", "phase",
            "nic_sample"} <= kinds


def test_decomposition_matches_live_stopwatch():
    """(a): event-derived phase totals == stopwatch totals (within 1%)."""
    sc, recorder = run_lr(aggregation="split")
    live = sc.stopwatch.as_dict()
    derived = analyze_events(recorder.events).phases
    assert set(derived) == set(live)
    for key, total in live.items():
        assert derived[key] == pytest.approx(total, rel=0.01), key
    assert live.get("agg.compute", 0.0) > 0.0
    assert live.get("agg.reduce", 0.0) > 0.0
    assert live.get("ml.driver", 0.0) > 0.0


def test_decomposition_survives_log_round_trip(tmp_path):
    sc, recorder = run_lr(aggregation="split")
    path = tmp_path / "events.jsonl"
    dump_events(recorder.events, path)
    derived = analyze_events(load_events(path)).phases
    for key, total in sc.stopwatch.as_dict().items():
        assert derived[key] == pytest.approx(total, rel=0.01), key


def test_tracing_does_not_change_virtual_time():
    """(c): attaching listeners + the NIC monitor is behavior-neutral."""
    traced, _ = run_lr(aggregation="split", trace=True, nic=True)
    bare, _ = run_lr(aggregation="split", trace=False)
    assert traced.now == bare.now
    assert traced.stopwatch.as_dict() == bare.stopwatch.as_dict()


def test_tracing_neutral_for_tree_imm_too():
    traced, _ = run_lr(aggregation="tree_imm", trace=True)
    bare, _ = run_lr(aggregation="tree_imm", trace=False)
    assert traced.now == bare.now


def test_event_log_is_deterministic_across_runs(tmp_path):
    """Two identically seeded runs write byte-identical event logs."""
    logs = []
    for i in range(2):
        _sc, recorder = run_lr(aggregation="split", nic=True)
        path = tmp_path / f"run{i}.jsonl"
        dump_events(recorder.events, path)
        logs.append(path.read_text())
    assert logs[0] == logs[1]


def test_stage_decomposition_from_events_matches_stage_log():
    """The event route and the StageInfo route agree stage for stage."""
    from repro.bench.history import analyze_stage_log

    sc, recorder = run_lr(aggregation="split")
    from_events = analyze_events(recorder.events).stage_totals
    from_log = analyze_stage_log(sc.dag.stage_log)
    assert from_events.get("agg_compute", 0.0) == pytest.approx(
        from_log.agg_compute)
    assert from_events.get("agg_reduce", 0.0) == pytest.approx(
        from_log.agg_reduce)


def test_cli_reports_decomposition(tmp_path, capsys):
    _sc, recorder = run_lr(aggregation="split", nic=True)
    events_path = tmp_path / "events.jsonl"
    dump_events(recorder.events, events_path)
    chrome_path = tmp_path / "trace.json"

    assert obs_main([str(events_path), "--chrome", str(chrome_path),
                     "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "Phase decomposition" in out
    assert "agg.compute" in out
    assert "agg.reduce" in out
    assert "Stage decomposition" in out
    assert "aggregation share" in out
    assert "histogram messages.size_bytes" in out
    # the chrome trace was written and is loadable JSON
    trace = json.loads(chrome_path.read_text())
    assert trace["traceEvents"]


def test_cli_errors_cleanly_on_missing_file(tmp_path, capsys):
    assert obs_main([str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err
