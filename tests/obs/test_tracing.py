"""Span allocation and causal parentage (DESIGN.md §12 span model)."""

import numpy as np

from repro import AggregationSpec
from repro.cluster import ClusterConfig
from repro.faults import AtTime, ExecutorCrash, FaultController, FaultPlan
from repro.obs import NO_SPAN, RecordingListener, Tracer
from repro.rdd import SparkerContext
from repro.serde import SizedPayload

from .helpers import run_lr


def by_kind(events, kind):
    return [e for e in events if e.kind == kind]


def test_tracer_inactive_allocates_nothing():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    tracer = sc.event_bus.tracer
    assert tracer.new_span() == NO_SPAN
    assert tracer.new_span() == NO_SPAN
    sc.event_bus.subscribe(lambda e: None)
    first = tracer.new_span()
    second = tracer.new_span()
    assert first > 0 and second == first + 1


def test_tracer_parent_stack():
    bus = type("B", (), {"active": True})()
    tracer = Tracer(bus)
    assert tracer.current_parent == NO_SPAN
    tracer.push_parent(7)
    tracer.push_parent(9)
    assert tracer.current_parent == 9
    assert tracer.pop_parent() == 9
    assert tracer.current_parent == 7
    assert tracer.pop_parent() == 7
    assert tracer.pop_parent() == NO_SPAN


def test_untraced_events_serialize_without_span_fields():
    _sc, rec = run_lr("split", trace=True, num_iterations=1)
    traced = rec.events[0].to_record()
    assert "span_id" in traced
    untraced = type(rec.events[0])(**{
        k: v for k, v in rec.events[0].__dict__.items()
        if k not in ("span_id", "parent_span_id")})
    record = untraced.to_record()
    assert "span_id" not in record and "parent_span_id" not in record


def test_job_stage_task_parentage():
    _sc, rec = run_lr("split", trace=True, num_iterations=2)
    events = rec.events
    job_spans = {e.job_id: e.span_id for e in by_kind(events, "job_start")}
    stage_spans = {}
    for e in by_kind(events, "stage_submitted"):
        assert e.span_id > 0
        assert e.parent_span_id == job_spans[e.job_id]
        stage_spans[(e.stage_id, e.attempt)] = e.span_id
    for e in by_kind(events, "stage_completed"):
        assert e.span_id == stage_spans[(e.stage_id, e.attempt)]
    task_spans = set()
    for e in by_kind(events, "task_start") + by_kind(events, "task_end"):
        assert e.parent_span_id == stage_spans[(e.stage_id, e.stage_attempt)]
        task_spans.add(e.span_id)
    for e in by_kind(events, "job_end"):
        assert e.span_id == job_spans[e.job_id]
    # IMM merges happen inside a task: their parents are task spans.
    merges = by_kind(events, "imm_merge")
    assert merges
    assert all(m.parent_span_id in task_spans for m in merges)


def test_collective_span_parents_hops_and_messages():
    _sc, rec = run_lr("split", trace=True, num_iterations=1)
    events = rec.events
    chosen = by_kind(events, "collective_chosen")
    assert chosen
    collective_spans = {e.collective_id: e.span_id for e in chosen}
    assert all(span > 0 for span in collective_spans.values())
    for e in by_kind(events, "collective_completed"):
        assert e.span_id == collective_spans[e.collective_id]
    hops = by_kind(events, "ring_hop")
    assert hops
    assert all(h.parent_span_id in collective_spans.values() for h in hops)
    sends = by_kind(events, "message_sent")
    assert sends
    assert all(s.parent_span_id in collective_spans.values() for s in sends)


def test_fault_span_parents_recovery_actions():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    rec = RecordingListener()
    sc.event_bus.subscribe(rec)
    eid = sc.cluster.executors[5].executor_id
    FaultController(sc, FaultPlan(faults=(ExecutorCrash(
        eid, AtTime(0.05)),))).arm()
    data = [SizedPayload(np.full(16, float(i))) for i in range(24)]
    rdd = sc.parallelize(data, 8)
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(16)),
                        lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat,
                        spec=AggregationSpec(parallelism=4))
    faults = by_kind(rec.events, "fault_injected")
    actions = by_kind(rec.events, "recovery_action")
    assert faults and actions
    assert all(f.span_id > 0 for f in faults)
    recovered = [a for a in actions if a.action == "recovered"]
    assert recovered
    epoch = recovered[0].span_id
    assert epoch > 0
    # every mid-epoch action parents to the recovery-epoch span
    for a in actions:
        if a.action != "recovered":
            assert a.parent_span_id == epoch


def test_span_ids_deterministic_across_runs():
    _sc, rec1 = run_lr("split", trace=True, seed=31, num_iterations=2)
    _sc, rec2 = run_lr("split", trace=True, seed=31, num_iterations=2)
    ids1 = [(e.kind, e.span_id, e.parent_span_id) for e in rec1.events]
    ids2 = [(e.kind, e.span_id, e.parent_span_id) for e in rec2.events]
    assert ids1 == ids2
