"""Tests for the EventBus and its listeners."""

import pytest

from repro.obs import EventBus, PhaseSpan, RecordingListener


def _event(t=1.0):
    return PhaseSpan(time=t, key="x", seconds=0.5)


def test_inactive_bus_drops_events():
    bus = EventBus()
    assert not bus.active
    bus.emit(_event())
    assert bus.emitted == 0


def test_subscribe_activates_and_delivers_in_order():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: seen.append(("a", e)))
    bus.subscribe(lambda e: seen.append(("b", e)))
    assert bus.active
    assert len(bus) == 2
    event = _event()
    bus.emit(event)
    assert seen == [("a", event), ("b", event)]
    assert bus.emitted == 1


def test_on_event_object_listener():
    bus = EventBus()
    rec = RecordingListener()
    bus.subscribe(rec)
    bus.emit(_event(1.0))
    bus.emit(PhaseSpan(time=2.0, key="y", seconds=1.0))
    assert len(rec) == 2
    assert [e.key for e in rec.of_kind("phase")] == ["x", "y"]
    rec.clear()
    assert len(rec) == 0


def test_unsubscribe_deactivates():
    bus = EventBus()
    rec = bus.subscribe(RecordingListener())
    bus.unsubscribe(rec)
    assert not bus.active
    bus.emit(_event())
    assert rec.events == []


def test_unsubscribe_unknown_listener_raises():
    bus = EventBus()
    with pytest.raises(ValueError):
        bus.unsubscribe(RecordingListener())


def test_non_listener_rejected():
    bus = EventBus()
    with pytest.raises(TypeError):
        bus.subscribe(object())


def test_emission_is_synchronous_and_reentrant_safe():
    """A listener emitting follow-up events must not lose deliveries."""
    bus = EventBus()
    seen = []

    def echo(event):
        seen.append(event.key)
        if event.key == "outer":
            bus.emit(PhaseSpan(time=event.time, key="inner", seconds=0.0))

    bus.subscribe(echo)
    bus.emit(PhaseSpan(time=1.0, key="outer", seconds=0.0))
    assert seen == ["outer", "inner"]
