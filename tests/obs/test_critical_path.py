"""Critical-path attribution: the exact-makespan-partition invariant,
collective blame, recovery epochs, and degenerate logs."""

import dataclasses

import numpy as np
import pytest

from repro import AggregationSpec
from repro.cluster import ClusterConfig
from repro.faults import AtTime, ExecutorCrash, FaultController, FaultPlan
from repro.obs import RecordingListener, attribute_critical_path
from repro.obs.__main__ import render_critical_path
from repro.rdd import SparkerContext
from repro.serde import SizedPayload

from .helpers import run_lr

NODE_COUNTS = (2, 4, 8)


def run_collective(algorithm, nodes, parallelism=4):
    """One traced split_aggregate through the named collective."""
    sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
    rec = RecordingListener()
    sc.event_bus.subscribe(rec)
    data = [SizedPayload(np.full(32, float(i))) for i in range(24)]
    rdd = sc.parallelize(data, 2 * nodes).cache()
    rdd.count()
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(32)),
                        lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat,
                        spec=AggregationSpec(collective=algorithm,
                                             parallelism=parallelism))
    return rec.events


def assert_exact_partition(report):
    assert report.jobs, "no finished jobs attributed"
    for job in report.jobs:
        total = sum(job.totals().values())
        assert total == pytest.approx(job.makespan, abs=1e-9)
        # segments are contiguous and cover [began, ended] with no gaps
        assert job.segments[0].began == job.began
        assert job.segments[-1].ended == job.ended
        for prev, nxt in zip(job.segments, job.segments[1:]):
            assert nxt.began == prev.ended


@pytest.mark.parametrize("nodes", NODE_COUNTS)
@pytest.mark.parametrize("aggregation", ["tree", "split"])
def test_lr_attribution_sums_to_makespan(aggregation, nodes):
    points_sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
    rec = RecordingListener()
    points_sc.event_bus.subscribe(rec)
    from repro.data import sparse_classification
    from repro.ml import LogisticRegressionWithSGD
    points, _ = sparse_classification(120, 20, 5, seed=31)
    rdd = points_sc.parallelize(points, 2 * nodes).cache()
    rdd.count()
    LogisticRegressionWithSGD.train(
        rdd, 20, num_iterations=2, step_size=1.5,
        aggregation=aggregation, size_scale=1000.0)
    assert_exact_partition(attribute_critical_path(rec.events))


@pytest.mark.parametrize("nodes", NODE_COUNTS)
@pytest.mark.parametrize("algorithm", ["hd", "hierarchical"])
def test_collective_attribution_sums_to_makespan(algorithm, nodes):
    events = run_collective(algorithm, nodes)
    report = attribute_critical_path(events)
    assert_exact_partition(report)
    assert report.collectives
    coll = report.collectives[-1]
    assert coll.algorithm == algorithm
    assert coll.hop_count > 0
    assert coll.slowest_hop is not None
    assert coll.slowest_hop.seconds <= coll.seconds


def test_slowest_hop_belongs_to_its_collective():
    events = run_collective("ring", 2)
    report = attribute_critical_path(events)
    spans = {e.span_id for e in events if e.kind == "collective_chosen"}
    for coll in report.collectives:
        hop = coll.slowest_hop
        matching = [e for e in events if e.kind == "ring_hop"
                    and e.channel == hop.channel and e.hop == hop.hop
                    and e.executor_id == hop.executor_id]
        assert matching
        assert all(e.parent_span_id in spans for e in matching)


def test_detached_log_without_spans_still_attributes():
    events = run_collective("ring", 2)
    stripped = [dataclasses.replace(e, span_id=-1, parent_span_id=-1)
                for e in events]
    traced = attribute_critical_path(events)
    detached = attribute_critical_path(stripped)
    assert_exact_partition(detached)
    assert len(detached.jobs) == len(traced.jobs)
    assert len(detached.collectives) == len(traced.collectives)
    for a, b in zip(detached.jobs, traced.jobs):
        assert a.totals() == pytest.approx(b.totals())


def test_recovery_attribution():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    rec = RecordingListener()
    sc.event_bus.subscribe(rec)
    eid = sc.cluster.executors[5].executor_id
    FaultController(sc, FaultPlan(faults=(ExecutorCrash(
        eid, AtTime(0.05)),))).arm()
    data = [SizedPayload(np.full(16, float(i))) for i in range(24)]
    rdd = sc.parallelize(data, 8)
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(16)),
                        lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat,
                        spec=AggregationSpec(parallelism=4))
    report = attribute_critical_path(rec.events)
    assert_exact_partition(report)
    assert report.recovery_epochs
    epoch = report.recovery_epochs[0]
    assert epoch.recovered
    assert epoch.actions >= 2
    assert epoch.seconds > 0
    assert any(job.recovery for job in report.jobs)
    assert report.totals().get("recovery", 0.0) > 0


def test_empty_log_produces_empty_report():
    report = attribute_critical_path([])
    assert report.jobs == []
    assert report.collectives == []
    assert report.recovery_epochs == []
    assert "no finished jobs" in render_critical_path(report)


def test_unfinished_job_reported_not_raised():
    events = run_collective("ring", 2)
    cut = [e for e in events if e.kind != "job_end"]
    report = attribute_critical_path(cut)
    assert report.jobs == []
    assert report.unfinished
    rendered = render_critical_path(report)
    assert "unfinished job" in rendered


def test_cli_renders_attribution_table():
    _sc, rec = run_lr("split", trace=True, num_iterations=1)
    report = attribute_critical_path(rec.events)
    rendered = render_critical_path(report)
    assert "Critical path (per-job makespan attribution)" in rendered
    assert "Collective attribution" in rendered
    for label in ("compute", "serde", "wire", "queueing"):
        assert label in rendered


def test_report_totals_cover_every_job():
    _sc, rec = run_lr("split", trace=True, num_iterations=2)
    report = attribute_critical_path(rec.events)
    assert sum(report.totals().values()) == pytest.approx(
        sum(job.makespan for job in report.jobs), abs=1e-9)


def test_pipelined_collective_attribution():
    """The overlapped path: chunk streams bind to the collective and the
    hop busy-union reports the wire/merge time hidden by overlap."""
    events = run_collective("pipelined_ring", 2)
    report = attribute_critical_path(events)
    assert_exact_partition(report)
    assert report.collectives
    coll = report.collectives[-1]
    assert coll.algorithm == "pipelined_ring"
    assert coll.chunk_streams > 0
    assert coll.hop_count > 0
    # multiple channels stream concurrently: some hop time is hidden
    assert coll.overlapped_hop_seconds > 0
    assert coll.slowest_hop is not None


def test_phased_ring_reports_no_chunk_streams():
    events = run_collective("ring", 2)
    report = attribute_critical_path(events)
    assert all(c.chunk_streams == 0 for c in report.collectives)
