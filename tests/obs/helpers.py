"""Shared seeded workloads for observability tests."""

from repro.cluster import ClusterConfig
from repro.data import sparse_classification
from repro.ml import LogisticRegressionWithSGD
from repro.obs import NicMonitor, RecordingListener
from repro.rdd import SparkerContext


def run_lr(aggregation="split", trace=True, nic=False, seed=31,
           num_iterations=3):
    """One seeded LR training run on the BIC cluster.

    Returns ``(sc, recorder)``; ``recorder`` is None when ``trace`` is
    False (no listener attached at all — the bus stays inactive).
    """
    points, _ = sparse_classification(200, 30, 6, seed=seed)
    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    recorder = None
    monitor = None
    if trace:
        recorder = RecordingListener()
        sc.event_bus.subscribe(recorder)
    if nic:
        monitor = NicMonitor(sc.cluster, sc.event_bus, interval=0.01)
    rdd = sc.parallelize(points, 24).cache()
    rdd.count()
    LogisticRegressionWithSGD.train(
        rdd, 30, num_iterations=num_iterations, step_size=1.5,
        aggregation=aggregation, size_scale=1000.0)
    if monitor is not None:
        monitor.stop()
    return sc, recorder
