"""Tests for event-log analysis: decomposition, stragglers, saturation."""

import pytest

from repro.obs import (
    NicSample,
    PhaseSpan,
    TaskEnd,
    analyze_events,
    classify_stage,
    phase_decomposition,
)
from repro.obs.analysis import _median


def test_classify_stage_buckets():
    assert classify_stage("result", "partialAggregate") == "agg_compute"
    assert classify_stage("result", "treeAgg:level0") == "agg_compute"
    assert classify_stage("reduced_result", "whatever") == "agg_compute"
    assert classify_stage("result", "treeAgg:level1") == "agg_reduce"
    assert classify_stage("result", "treeAggValues") == "agg_reduce"
    assert classify_stage("shuffle_map", "SpawnRDD") == "agg_reduce"
    assert classify_stage("result", "map@7") == "other"


def test_classification_shared_with_bench_history():
    """bench.history and obs.analysis must be the same rule."""
    from repro.bench.history import _classify
    from repro.rdd.scheduler import StageInfo

    stage = StageInfo(stage_id=0, kind="result", rdd_name="treeAgg:level2",
                      num_tasks=4, attempt=0, submitted_at=0.0)
    assert _classify(stage) == classify_stage("result", "treeAgg:level2")


def test_phase_decomposition_sums_by_key():
    events = [PhaseSpan(time=1.0, key="a", seconds=0.5),
              PhaseSpan(time=2.0, key="a", seconds=0.25),
              PhaseSpan(time=2.0, key="b", seconds=1.0)]
    assert phase_decomposition(events) == {"a": 0.75, "b": 1.0}


def test_median():
    assert _median([]) == 0.0
    assert _median([3.0]) == 3.0
    assert _median([1.0, 3.0]) == 2.0
    assert _median([1.0, 2.0, 10.0]) == 2.0


def _task(partition, began, ended, stage=1, executor=0, status="ok"):
    return TaskEnd(time=ended, stage_id=stage, stage_attempt=0,
                   partition=partition, attempt=0, executor_id=executor,
                   host="n", began=began, status=status)


def test_straggler_detection():
    events = [_task(0, 0.0, 1.0), _task(1, 0.0, 1.0), _task(2, 0.0, 1.1),
              _task(3, 0.0, 5.0, executor=3)]
    analysis = analyze_events(events)
    assert len(analysis.stragglers) == 1
    straggler = analysis.stragglers[0]
    assert straggler.partition == 3
    assert straggler.executor_id == 3
    assert straggler.stage_median == pytest.approx(1.05)
    assert straggler.slowdown == pytest.approx(5.0 / 1.05)


def test_straggler_needs_peers_and_factor():
    # A lone task is never a straggler; 1.5x the median is under 2x.
    events = [_task(0, 0.0, 9.0, stage=7),
              _task(0, 0.0, 1.0, stage=8), _task(1, 0.0, 1.5, stage=8)]
    assert analyze_events(events).stragglers == []


def test_failed_tasks_excluded_from_skew():
    events = [_task(0, 0.0, 1.0), _task(1, 0.0, 1.0),
              _task(2, 0.0, 50.0, status="killed")]
    analysis = analyze_events(events)
    assert analysis.task_failures == 1
    assert analysis.stragglers == []


def _sample(t, util, node=-1, driver=True, direction="out"):
    return NicSample(time=t, node_id=node, hostname="driver-host",
                     is_driver=driver, in_rate=0.0, out_rate=0.0,
                     in_utilization=util if direction == "in" else 0.0,
                     out_utilization=util if direction == "out" else 0.0)


def test_saturation_windows():
    events = [_sample(0.0, 0.2), _sample(0.1, 0.95), _sample(0.2, 0.99),
              _sample(0.3, 0.5), _sample(0.4, 0.91), _sample(0.5, 0.92)]
    analysis = analyze_events(events)
    assert len(analysis.saturation) == 2
    first, second = analysis.saturation
    assert (first.start, first.end) == (0.1, 0.2)
    assert first.direction == "out"
    assert first.peak_utilization == pytest.approx(0.99)
    assert (second.start, second.end) == (0.4, 0.5)


def test_saturation_ignores_worker_nodes_by_default():
    events = [_sample(0.0, 0.99, node=1, driver=False)]
    assert analyze_events(events).saturation == []
    scanned = analyze_events(events, driver_only_saturation=False)
    assert len(scanned.saturation) == 1


def test_empty_stream():
    analysis = analyze_events([])
    assert analysis.total_time == 0.0
    assert analysis.stage_count == 0
    assert analysis.aggregation_share == 0.0


def test_sparse_savings_accounting():
    from repro.obs import SegmentRepresentation, analyze_events
    from repro.obs.events import ImmMerge, RingHop

    events = [
        RingHop(time=1.0, rank=0, executor_id=1, channel="0", hop=0,
                send_bytes=160.0, recv_bytes=160.0, began=0.9,
                merge_time=0.01, send_repr="sparse", recv_repr="sparse",
                send_dense_bytes=800.0),
        RingHop(time=1.1, rank=1, executor_id=2, channel="0", hop=1,
                send_bytes=800.0, recv_bytes=160.0, began=1.0,
                merge_time=0.01, send_repr="dense", recv_repr="sparse",
                send_dense_bytes=800.0),
        SegmentRepresentation(time=1.05, site="ring", executor_id=2,
                              rank=1, channel="0", hop=1,
                              from_repr="sparse", to_repr="dense",
                              nnz=55, length=100, density=0.55,
                              wire_bytes=880.0, dense_bytes=800.0),
        ImmMerge(time=1.2, executor_id=1, job_id=1, stage_id=2,
                 merge_index=0, nbytes=160.0, lock_wait=0.0,
                 merge_time=0.02, representation="sparse", density=0.1),
        ImmMerge(time=1.3, executor_id=1, job_id=1, stage_id=2,
                 merge_index=1, nbytes=800.0, lock_wait=0.0,
                 merge_time=0.02),
    ]
    sparse = analyze_events(events).sparse
    assert sparse.observed
    assert sparse.sparse_hops == 1
    assert sparse.dense_hops == 1
    assert sparse.wire_send_bytes == 960.0
    assert sparse.dense_send_bytes == 1600.0
    assert sparse.bytes_saved == 640.0
    assert sparse.savings_ratio == pytest.approx(0.4)
    assert len(sparse.switches) == 1
    assert sparse.sparse_imm_merges == 1


def test_sparse_savings_silent_when_dense_only():
    from repro.obs import analyze_events
    from repro.obs.events import RingHop

    events = [
        RingHop(time=1.0, rank=0, executor_id=1, channel="0", hop=0,
                send_bytes=800.0, recv_bytes=800.0, began=0.9,
                merge_time=0.01),
    ]
    sparse = analyze_events(events).sparse
    assert not sparse.observed
    assert sparse.bytes_saved == 0.0
    assert sparse.savings_ratio == 0.0


def test_fault_report_latency_and_recovery_cost():
    from repro.obs import FaultInjected, RecoveryAction

    events = [
        FaultInjected(time=1.0, fault="executor_crash",
                      target="executor 3", trigger="at_time",
                      executor_id=3),
        RecoveryAction(time=1.2, action="ring_abort", job_id=7, attempt=1),
        RecoveryAction(time=1.5, action="recovered", job_id=7,
                       seconds=0.3),
        FaultInjected(time=2.0, fault="straggler", target="executor 1",
                      trigger="window", executor_id=1),
    ]
    report = analyze_events(events).faults
    assert report.observed
    assert len(report.injected) == 2
    assert len(report.actions) == 2
    # Only detectable faults (crash/drop) get a latency pairing; the
    # straggler is injected but never "answered".
    assert len(report.detection_latency) == 1
    fault, latency = report.detection_latency[0]
    assert fault.fault == "executor_crash"
    assert latency == pytest.approx(0.2)
    assert report.recovery_by_job == {7: pytest.approx(0.3)}


def test_fault_report_empty_when_unfaulted():
    report = analyze_events([]).faults
    assert not report.observed
    assert report.detection_latency == []
    assert report.recovery_by_job == {}


def test_render_analysis_includes_fault_section():
    from repro.obs import FaultInjected, RecoveryAction
    from repro.obs.__main__ import render_analysis

    events = [
        FaultInjected(time=0.5, fault="executor_crash",
                      target="executor 2", trigger="ring_hop",
                      executor_id=2, detail="channel 0 hop 1"),
        RecoveryAction(time=0.6, action="ring_rebuild", job_id=3,
                       attempt=1),
        RecoveryAction(time=0.9, action="recovered", job_id=3,
                       seconds=0.4),
    ]
    text = render_analysis(analyze_events(events))
    assert "Injected faults" in text
    assert "executor_crash" in text
    assert "Recovery actions" in text
    assert "recovery virtual-time cost" in text
    assert "job 3" in text


def test_chrome_trace_marks_faults():
    from repro.obs import FaultInjected, RecoveryAction
    from repro.obs.chrome_trace import chrome_trace

    events = [
        FaultInjected(time=0.5, fault="message_drop", target="rank 0 -> 1",
                      trigger="link", src=0, dst=1, channel="ring/0"),
        RecoveryAction(time=0.7, action="tree_fallback", site="tree",
                       job_id=2),
    ]
    trace = chrome_trace(events)["traceEvents"]
    instants = [e for e in trace if e.get("ph") == "i"]
    assert {e["name"] for e in instants} == \
        {"fault:message_drop", "recovery:tree_fallback"}
    drop = next(e for e in instants if e["name"] == "fault:message_drop")
    assert drop["ts"] == pytest.approx(0.5e6)
