"""Tests for the JSON-lines event log (writer, loader, schema)."""

import json

import pytest

from repro.obs import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    EventBus,
    EventLogWriter,
    PhaseSpan,
    TaskMetrics,
    dump_events,
    load_events,
)
from tests.obs.test_events import SAMPLES


def test_dump_load_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    assert dump_events(SAMPLES, path) == len(SAMPLES)
    loaded = load_events(path)
    assert loaded == list(SAMPLES)
    # metrics came back as a TaskMetrics, not a dict
    task = next(e for e in loaded if e.kind == "task_end")
    assert isinstance(task.metrics, TaskMetrics)


def test_header_written_first(tmp_path):
    path = tmp_path / "events.jsonl"
    dump_events(SAMPLES[:1], path)
    first = json.loads(path.read_text().splitlines()[0])
    assert first == {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION}


def test_headerless_log_accepted(tmp_path):
    path = tmp_path / "spark-style.jsonl"
    path.write_text(
        json.dumps(PhaseSpan(time=1.0, key="x", seconds=0.5).to_record())
        + "\n")
    assert load_events(path) == [PhaseSpan(time=1.0, key="x", seconds=0.5)]


def test_newer_schema_rejected(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps(
        {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION + 1}) + "\n")
    with pytest.raises(ValueError, match="newer"):
        load_events(path)


def test_unknown_schema_rejected(tmp_path):
    path = tmp_path / "other.jsonl"
    path.write_text(json.dumps({"schema": "not.sparker", "version": 1}) + "\n")
    with pytest.raises(ValueError, match="unknown schema"):
        load_events(path)


def test_unknown_event_kinds_skipped(tmp_path):
    path = tmp_path / "mixed.jsonl"
    dump_events(SAMPLES[:2], path)
    with path.open("a") as handle:
        handle.write(json.dumps({"event": "from_the_future", "time": 9.0})
                     + "\n")
    assert load_events(path) == list(SAMPLES[:2])


def test_malformed_record_raises_with_line_number(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"event": "phase", "time": 1.0}) + "\n")
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        load_events(path)


def test_writer_streams_and_detaches(tmp_path):
    path = tmp_path / "live.jsonl"
    bus = EventBus()
    with EventLogWriter(path).attached_to(bus) as writer:
        bus.emit(PhaseSpan(time=1.0, key="a", seconds=0.5))
        bus.emit(PhaseSpan(time=2.0, key="b", seconds=0.25))
        assert writer.written == 2
    # Detached on exit: further emissions are dropped, file is closed.
    assert not bus.active
    bus.emit(PhaseSpan(time=3.0, key="c", seconds=0.1))
    loaded = load_events(path)
    assert [e.key for e in loaded] == ["a", "b"]


def test_writer_rejects_use_after_close(tmp_path):
    writer = EventLogWriter(tmp_path / "x.jsonl")
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(RuntimeError):
        writer.on_event(PhaseSpan(time=1.0, key="a", seconds=0.5))


# ----------------------------------------------------- degenerate logs
def test_empty_file_loads_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert load_events(path) == []


def test_header_only_log_loads_empty(tmp_path):
    path = tmp_path / "header.jsonl"
    dump_events([], path)
    assert load_events(path) == []


def test_truncated_tail_line_skipped(tmp_path):
    path = tmp_path / "torn.jsonl"
    dump_events(SAMPLES[:3], path)
    text = path.read_text()
    # tear the last record mid-line, as a crashing writer would
    path.write_text(text[:len(text) - len(text.splitlines()[-1]) // 2 - 1])
    assert load_events(path) == list(SAMPLES[:2])


def test_blank_and_non_dict_lines_skipped(tmp_path):
    path = tmp_path / "noise.jsonl"
    dump_events(SAMPLES[:1], path)
    with path.open("a") as handle:
        handle.write("\n\n[1, 2, 3]\n\"just a string\"\n")
    assert load_events(path) == list(SAMPLES[:1])


# ---------------------------------------------------- buffered writing
def test_writer_buffers_until_flush(tmp_path):
    path = tmp_path / "buffered.jsonl"
    writer = EventLogWriter(path, buffer_events=100)
    writer.on_event(PhaseSpan(time=1.0, key="a", seconds=0.5))
    writer.on_event(PhaseSpan(time=2.0, key="b", seconds=0.25))
    assert writer.written == 2
    writer._handle.flush()
    assert load_events(path) == []       # still only the header on disk
    writer.flush()
    writer._handle.flush()
    assert [e.key for e in load_events(path)] == ["a", "b"]
    writer.close()


def test_writer_auto_flushes_at_capacity(tmp_path):
    path = tmp_path / "capacity.jsonl"
    writer = EventLogWriter(path, buffer_events=3)
    for i in range(7):
        writer.on_event(PhaseSpan(time=float(i), key=f"k{i}", seconds=0.1))
    writer._handle.flush()
    assert len(load_events(path)) == 6   # two full batches, one buffered
    writer.close()
    assert len(load_events(path)) == 7


def test_sync_writer_writes_every_event(tmp_path):
    path = tmp_path / "sync.jsonl"
    writer = EventLogWriter(path, buffer_events=1)
    writer.on_event(PhaseSpan(time=1.0, key="a", seconds=0.5))
    writer._handle.flush()
    assert len(load_events(path)) == 1
    writer.close()


def test_writer_rejects_nonpositive_buffer(tmp_path):
    with pytest.raises(ValueError, match="buffer_events"):
        EventLogWriter(tmp_path / "x.jsonl", buffer_events=0)
