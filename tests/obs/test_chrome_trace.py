"""Tests for the Chrome trace_event / Perfetto exporter."""

import json

from repro.obs import (
    NicSample,
    PhaseSpan,
    TaskEnd,
    TaskMetrics,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.chrome_trace import (
    DRIVER_PID,
    EXECUTOR_PID_BASE,
    NIC_PID,
    _pack_lanes,
)
from tests.obs.helpers import run_lr
from tests.obs.test_events import SAMPLES


def test_pack_lanes_minimal_and_deterministic():
    spans = [(0.0, 1.0, "a"), (0.5, 1.5, "b"), (1.0, 2.0, "c"),
             (1.6, 2.0, "d")]
    packed = dict((item, lane) for lane, item in _pack_lanes(spans))
    # "a" and "b" overlap -> two lanes; "c" reuses a's lane, "d" reuses b's.
    assert packed == {"a": 0, "b": 1, "c": 0, "d": 1}
    assert _pack_lanes(spans) == _pack_lanes(list(reversed(spans)))


def test_trace_structure_from_samples():
    trace = chrome_trace(SAMPLES)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    pids = {e["pid"] for e in events}
    assert {DRIVER_PID, NIC_PID, EXECUTOR_PID_BASE + 5} <= pids
    spans = [e for e in events if e["ph"] == "X"]
    assert all(e["dur"] >= 0 for e in spans)
    # one job span, one phase span, one task span at least
    cats = {e["cat"] for e in spans}
    assert {"job", "phase", "task", "ring", "imm"} <= cats
    counters = [e for e in events if e["ph"] == "C"]
    assert counters and counters[0]["args"].keys() == {"in", "out"}


def test_core_lanes_bounded_by_executor_cores(tmp_path):
    sc, recorder = run_lr(trace=True, nic=True)
    trace = chrome_trace(recorder.events)
    events = trace["traceEvents"]

    cores = sc.cluster.config.executor_cores
    task_spans = [e for e in events if e["ph"] == "X" and e["cat"] == "task"]
    assert task_spans
    by_executor = {}
    for e in task_spans:
        by_executor.setdefault(e["pid"], set()).add(e["tid"])
    for pid, tids in by_executor.items():
        # exactly the lanes 0..k-1 for some k <= executor_cores
        assert tids == set(range(len(tids)))
        assert len(tids) <= cores

    # driver and NIC processes are present with named lanes
    names = {(e["pid"], e.get("tid"), e["args"]["name"])
             for e in events if e.get("ph") == "M"
             and e["name"] in ("process_name", "thread_name")}
    assert (DRIVER_PID, None, "driver") in names
    assert (NIC_PID, None, "NIC") in names
    assert any(pid == NIC_PID and name == "driver-host (driver)"
               for pid, _tid, name in names)

    # no two task spans on one lane overlap (the lanes are real cores)
    for pid, tids in by_executor.items():
        for tid in tids:
            lane = sorted((e["ts"], e["ts"] + e["dur"]) for e in task_spans
                          if e["pid"] == pid and e["tid"] == tid)
            for (_s1, e1), (s2, _e2) in zip(lane, lane[1:]):
                assert s2 >= e1 - 1e-6


def test_write_chrome_trace_is_valid_json(tmp_path):
    target = tmp_path / "trace.json"
    count = write_chrome_trace(SAMPLES, target)
    loaded = json.loads(target.read_text())
    assert len(loaded["traceEvents"]) == count
    assert loaded["otherData"]["time_unit"] == "virtual"


def test_empty_stream_still_valid():
    trace = chrome_trace([])
    assert isinstance(trace["traceEvents"], list)


def test_phase_lanes_on_driver():
    spans = [PhaseSpan(time=1.0, key="agg.compute", seconds=1.0),
             PhaseSpan(time=1.5, key="ml.driver", seconds=0.2)]
    events = chrome_trace(spans)["traceEvents"]
    phases = [e for e in events if e.get("cat") == "phase"]
    assert {e["pid"] for e in phases} == {DRIVER_PID}
    assert [e["name"] for e in phases] == ["agg.compute", "ml.driver"]


def test_nic_counter_track_per_node():
    samples = [NicSample(time=t, node_id=n, hostname=f"node{n}",
                         is_driver=False, in_rate=0.0, out_rate=0.0,
                         in_utilization=0.5, out_utilization=0.5)
               for t in (0.0, 0.1) for n in (0, 1)]
    events = chrome_trace(samples)["traceEvents"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(counters) == 4
    assert {e["tid"] for e in counters} == {0, 1}


def test_task_span_args_carry_metrics():
    task = TaskEnd(time=2.0, stage_id=1, stage_attempt=0, partition=0,
                   attempt=0, executor_id=0, host="n0", began=1.0,
                   status="ok",
                   metrics=TaskMetrics(compute_time=0.9, fetch_wait=0.05,
                                       result_bytes=64.0))
    events = chrome_trace([task])["traceEvents"]
    span = next(e for e in events if e.get("cat") == "task")
    assert span["args"]["compute"] == 0.9
    assert span["args"]["result_bytes"] == 64.0
    assert span["name"] == "s1.p0"


def test_flow_arrows_chain_critical_path():
    _sc, rec = run_lr("split", trace=True, num_iterations=1)
    trace = chrome_trace(rec.events)
    flows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "t", "f")]
    assert flows, "traced run must emit critical-path flow arrows"
    assert all(e["cat"] == "critical_path" for e in flows)
    by_id = {}
    for e in flows:
        by_id.setdefault(e["id"], []).append(e)
    for flow_id, chain in by_id.items():
        phases = [e["ph"] for e in chain]
        assert phases.count("s") == 1, flow_id
        assert phases.count("f") == 1, flow_id
        finish = next(e for e in chain if e["ph"] == "f")
        assert finish.get("bp") == "e"
        # arrows advance monotonically along virtual time
        stamps = [e["ts"] for e in chain]
        assert stamps == sorted(stamps)


def test_recovery_lane_on_fault_run():
    import numpy as np

    from repro import AggregationSpec
    from repro.cluster import ClusterConfig
    from repro.faults import (
        AtTime,
        ExecutorCrash,
        FaultController,
        FaultPlan,
    )
    from repro.obs import RecordingListener
    from repro.obs.chrome_trace import RECOVERY_TID
    from repro.rdd import SparkerContext
    from repro.serde import SizedPayload

    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    rec = RecordingListener()
    sc.event_bus.subscribe(rec)
    eid = sc.cluster.executors[5].executor_id
    FaultController(sc, FaultPlan(faults=(ExecutorCrash(
        eid, AtTime(0.05)),))).arm()
    data = [SizedPayload(np.full(16, float(i))) for i in range(24)]
    rdd = sc.parallelize(data, 8)
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(16)),
                        lambda a, x: a.merge_inplace(x),
                        lambda u, i, n: u.split(i, n),
                        lambda a, b: a.merge(b),
                        SizedPayload.concat,
                        spec=AggregationSpec(parallelism=4))
    trace = chrome_trace(rec.events)
    lanes = [e for e in trace["traceEvents"]
             if e.get("pid") == DRIVER_PID and e.get("tid") == RECOVERY_TID
             and e["ph"] == "X"]
    assert lanes, "recovery epochs must appear on the driver RECOVERY lane"
    assert all(e["dur"] > 0 for e in lanes)
