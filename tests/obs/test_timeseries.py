"""Windowed time-series store: instruments, label-subset queries,
exact quantiles, and the bus-fed listener."""

import pytest

from repro.obs import (
    TimeSeriesListener,
    TimeSeriesStore,
)

from .helpers import run_lr


# ------------------------------------------------------------- instruments
def test_counter_windows_and_total():
    store = TimeSeriesStore(window=0.01)
    c = store.counter("bytes", node="n0")
    c.inc(0.001, 10.0)
    c.inc(0.009, 5.0)
    c.inc(0.011, 2.0)
    assert c.buckets == {0: 15.0, 1: 2.0}
    assert c.total == 17.0
    with pytest.raises(ValueError):
        c.inc(0.02, -1.0)


def test_counter_is_get_or_create_per_labelset():
    store = TimeSeriesStore()
    assert store.counter("x", a=1) is store.counter("x", a=1)
    assert store.counter("x", a=1) is not store.counter("x", a=2)


def test_gauge_last_write_wins_within_window():
    store = TimeSeriesStore(window=0.01)
    g = store.gauge("util", node="n0")
    g.set(0.002, 0.3)
    g.set(0.008, 0.9)   # later stamp in the same window wins
    g.set(0.015, 0.5)
    assert g.buckets[0] == 0.9
    assert g.last == 0.5


def test_histogram_exact_quantiles():
    store = TimeSeriesStore(window=1.0)
    h = store.histogram("dur")
    for i in range(100):
        h.observe(0.5, float(i))
    assert store.quantile("dur", 0.5) == 50.0
    assert store.quantile("dur", 0.95) == 95.0
    assert store.quantile("dur", 0.99) == 99.0
    assert store.quantile("dur", 0.0) == 0.0
    assert store.quantile("dur", 1.0) == 99.0
    with pytest.raises(ValueError):
        store.quantile("dur", 1.5)


def test_histogram_time_range_query():
    store = TimeSeriesStore(window=0.01)
    h = store.histogram("dur")
    h.observe(0.005, 1.0)
    h.observe(0.015, 2.0)
    h.observe(0.025, 3.0)
    assert sorted(h.samples()) == [1.0, 2.0, 3.0]
    assert sorted(h.samples(t0=0.01)) == [2.0, 3.0]
    assert sorted(h.samples(t0=0.01, t1=0.019)) == [2.0]


def test_label_subset_matching():
    store = TimeSeriesStore()
    store.counter("bytes", channel="0", executor=1).inc(0.0, 5.0)
    store.counter("bytes", channel="0", executor=2).inc(0.0, 7.0)
    store.counter("bytes", channel="1", executor=1).inc(0.0, 11.0)
    assert store.total("bytes") == 23.0
    assert store.total("bytes", channel="0") == 12.0
    assert store.total("bytes", executor=1) == 16.0
    assert store.total("bytes", channel="1", executor=1) == 11.0
    assert store.total("bytes", channel="9") == 0.0


def test_rate_merges_series_per_window():
    store = TimeSeriesStore(window=0.5)
    store.counter("n", k="a").inc(0.1, 2.0)
    store.counter("n", k="b").inc(0.2, 4.0)
    store.counter("n", k="a").inc(0.7, 1.0)
    assert store.rate("n") == [(0.0, 12.0), (0.5, 2.0)]


def test_store_rejects_bad_window():
    with pytest.raises(ValueError):
        TimeSeriesStore(window=0.0)


# ---------------------------------------------------------------- listener
def test_listener_replay_from_recorded_run():
    _sc, rec = run_lr("split", trace=True, nic=True, num_iterations=2)
    ts = TimeSeriesListener(window=0.01).replay(rec.events)
    store = ts.store

    n_tasks = sum(1 for e in rec.events if e.kind == "task_end")
    assert store.total("tasks.finished") == n_tasks
    # task series carry a job label resolved through stage_submitted
    jobs = {e.job_id for e in rec.events if e.kind == "job_start"}
    per_job = sum(store.total("tasks.finished", job=j) for j in jobs)
    assert per_job == n_tasks

    sent = sum(e.nbytes for e in rec.events if e.kind == "message_sent")
    assert store.total("messages.bytes") == pytest.approx(sent)

    hops = [e for e in rec.events if e.kind == "ring_hop"]
    assert store.total("ring.bytes") == pytest.approx(
        sum(h.send_bytes for h in hops))

    durations = sorted(e.duration for e in rec.events
                       if e.kind == "task_end")
    assert store.quantile("tasks.duration_seconds", 0.5) in durations
    assert store.quantile("tasks.duration_seconds", 1.0) == durations[-1]

    # NIC gauges exist for the driver node in both directions
    assert store.gauges("nic.utilization", node="driver", direction="in")
    assert store.gauges("nic.utilization", node="driver", direction="out")

    summary = store.summary()
    assert "tasks.duration_seconds" in summary
    assert "p95" in summary


def test_listener_live_matches_replay():
    _sc, rec = run_lr("split", trace=True, num_iterations=1)
    live = TimeSeriesListener(window=0.01)
    for event in rec.events:
        live.on_event(event)
    replayed = TimeSeriesListener(window=0.01).replay(rec.events)
    assert live.store.names() == replayed.store.names()
    for _kind, name in live.store.names():
        assert live.store.total(name) == replayed.store.total(name)


def test_listener_on_empty_log():
    ts = TimeSeriesListener().replay([])
    assert ts.store.names() == []
    assert ts.store.summary() == ""
