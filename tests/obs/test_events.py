"""Serialization round-trips for every event type."""

import pytest

from repro.obs import (
    EVENT_TYPES,
    BlockEvent,
    ChunkStream,
    CollectiveChosen,
    CollectiveCompleted,
    CollectiveCostEstimate,
    CollectiveDowngraded,
    ExecutorHealth,
    FaultInjected,
    ImmMerge,
    JobEnd,
    JobStart,
    MessageDelivered,
    MessageSent,
    NicSample,
    PhaseSpan,
    PoolSample,
    RecoveryAction,
    ResidualLost,
    ResidualNorm,
    RingHop,
    ServiceJobFinished,
    ServiceJobSubmitted,
    SpeculativeAttempt,
    SegmentRepresentation,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
    TaskMetrics,
    TaskStart,
    channel_str,
    event_from_record,
)

SAMPLES = [
    JobStart(time=0.1, job_id=1, job_kind="result", rdd_name="r",
             num_partitions=8),
    JobEnd(time=0.2, job_id=1, job_kind="result", succeeded=True),
    StageSubmitted(time=0.1, stage_id=3, attempt=0, stage_kind="result",
                   rdd_name="treeAgg:level0", num_tasks=8, job_id=1),
    StageCompleted(time=0.4, stage_id=3, attempt=0, stage_kind="result",
                   rdd_name="treeAgg:level0", num_tasks=8, job_id=1,
                   began=0.1),
    TaskStart(time=0.15, stage_id=3, stage_attempt=0, partition=2,
              attempt=0, executor_id=5, host="node1"),
    TaskEnd(time=0.35, stage_id=3, stage_attempt=0, partition=2, attempt=0,
            executor_id=5, host="node1", began=0.15, status="ok",
            metrics=TaskMetrics(compute_time=0.2, result_bytes=128.0,
                                locality="NODE_LOCAL")),
    BlockEvent(time=0.2, executor_id=5, op="put", rdd_id=7, partition=2,
               nbytes=1024.0),
    MessageSent(time=0.3, transport="SC", src=0, dst=1, channel="ring/0",
                hop=2, nbytes=4096.0),
    MessageDelivered(time=0.31, transport="SC", src=0, dst=1,
                     channel="ring/0", hop=2, nbytes=4096.0,
                     queue_wait=0.004, flight_time=0.006),
    RingHop(time=0.5, rank=1, executor_id=5, channel="0", hop=3,
            send_bytes=2048.0, recv_bytes=2048.0, began=0.45,
            merge_time=0.01),
    ImmMerge(time=0.6, executor_id=5, job_id=1, stage_id=3, merge_index=2,
             nbytes=512.0, lock_wait=0.001, merge_time=0.002,
             representation="sparse", density=0.01),
    SegmentRepresentation(time=0.65, site="ring", executor_id=5, rank=1,
                          channel="0", hop=3, from_repr="sparse",
                          to_repr="dense", nnz=700, length=1000,
                          density=0.7, wire_bytes=11200.0,
                          dense_bytes=8000.0),
    PhaseSpan(time=0.7, key="agg.compute", seconds=0.25),
    NicSample(time=0.8, node_id=0, hostname="node0", is_driver=True,
              in_rate=1e8, out_rate=2e8, in_utilization=0.08,
              out_utilization=0.16),
    FaultInjected(time=0.85, fault="executor_crash", target="executor 3",
                  trigger="ring_hop", executor_id=3,
                  detail="channel 0 hop 2"),
    RecoveryAction(time=0.9, action="ring_rebuild", site="ring", job_id=1,
                   executor_id=3, attempt=1, ranks=3, seconds=0.05,
                   detail="survivors re-ranked"),
    CollectiveCostEstimate(time=0.91, collective_id=1, algorithm="hd",
                           parallelism=2, predicted=0.012, chosen=True),
    CollectiveChosen(time=0.92, collective_id=1, algorithm="hd",
                     parallelism=2, source="auto", ranks=6, hosts=2,
                     value_bytes=8e6, segment_bytes=8e6 / 12,
                     predicted=0.012),
    CollectiveCompleted(time=0.95, collective_id=1, algorithm="hd",
                        parallelism=2, began=0.92, seconds=0.03,
                        predicted=0.012),
    ChunkStream(time=0.96, rank=1, executor_id=5, channel="0", num_chunks=4,
                chunk_bytes=4194304.0, value_bytes=1.6e7, began=0.9),
    ResidualNorm(time=0.97, executor_id=5, job_id=1, k=100,
                 payload_size=10000, sent_norm=3.5, residual_norm=0.4,
                 error_feedback=True),
    CollectiveDowngraded(time=0.98, requested="pipelined_ring",
                         actual="ring", reason="streamed_abort", job_id=1,
                         detail="executor 3 lost mid-stream"),
    ResidualLost(time=0.99, executor_id=3, num_residuals=2,
                 residual_norm=0.7, reason="fault injection"),
    SpeculativeAttempt(time=1.0, action="launched", stage_id=3, partition=2,
                       executor_id=5, backup_executor_id=1, attempt=100,
                       threshold=0.4, elapsed=0.9),
    ExecutorHealth(time=1.1, executor_id=3, status="quarantined", score=2.5,
                   strikes=3, until=6.1),
    ServiceJobSubmitted(time=1.2, service_job_id=4, tenant="alice",
                        pool="prod", workload="LR-C", queued=True),
    ServiceJobFinished(time=1.3, service_job_id=4, tenant="alice",
                       pool="prod", workload="LR-C", status="succeeded",
                       submitted=1.2, latency=0.1),
    PoolSample(time=1.4, pool="prod", weight=3.0, running=5,
               task_seconds=12.5, queued_tickets=2),
]


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_record_round_trip(event):
    record = event.to_record()
    assert record["event"] == event.kind
    assert event_from_record(record) == event


def test_every_kind_has_a_sample():
    assert {e.kind for e in SAMPLES} == set(EVENT_TYPES)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown event kind"):
        event_from_record({"event": "warp_drive", "time": 1.0})


def test_task_end_duration_and_phase_began():
    task = SAMPLES[5]
    assert task.duration == pytest.approx(0.2)
    phase = next(e for e in SAMPLES if e.kind == "phase")
    assert phase.began == pytest.approx(0.45)


def test_events_are_immutable():
    with pytest.raises(AttributeError):
        SAMPLES[0].job_id = 9


def test_channel_str_normalizes():
    assert channel_str("ring") == "ring"
    assert channel_str(3) == "3"
    assert channel_str(("ring", 2)) == "ring/2"
    assert channel_str((("a", 1), 2)) == "a/1/2"


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_fast_constructor_equivalent(event):
    """TraceEvent.fast() must be indistinguishable from the dataclass
    constructor: same equality, hash, and serialized record."""
    rebuilt = type(event).fast(**event.__dict__)
    assert rebuilt == event
    assert hash(rebuilt) == hash(event)
    assert rebuilt.to_record() == event.to_record()


def test_fast_applies_defaults_and_factories():
    fast = TaskEnd.fast(time=0.35, stage_id=3, stage_attempt=0,
                        partition=2, attempt=0, executor_id=5,
                        host="node1", began=0.15, status="ok")
    assert fast.span_id == -1 and fast.parent_span_id == -1
    assert isinstance(fast.metrics, TaskMetrics)
    # the default_factory must produce a fresh TaskMetrics per call
    other = TaskEnd.fast(time=0.4, stage_id=3, stage_attempt=0,
                         partition=3, attempt=0, executor_id=5,
                         host="node1", began=0.2, status="ok")
    assert fast.metrics is not other.metrics


def test_fast_events_stay_frozen():
    fast = PhaseSpan.fast(time=0.7, key="agg.compute", seconds=0.25)
    with pytest.raises(Exception):
        fast.time = 1.0
