"""Tests for the metrics registry, bus listener, and NIC monitor."""

import pytest

from repro.obs import (
    Gauge,
    Histogram,
    MetricCounter,
    MetricsListener,
    MetricsRegistry,
    NicMonitor,
)
from tests.obs.helpers import run_lr
from tests.obs.test_events import SAMPLES


def test_counter_monotonic():
    c = MetricCounter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_last_write_wins():
    g = Gauge("x")
    g.set(1.0, at=0.5)
    g.set(2.0, at=0.7)
    assert g.value == 2.0
    assert g.updated_at == 0.7


def test_histogram_quantiles_exact():
    h = Histogram("x")
    for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
        h.observe(v)
    assert h.count == 5
    assert h.mean == 3.0
    assert h.min == 1.0
    assert h.max == 5.0
    assert h.quantile(0.5) == 3.0
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 5.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_empty_histogram():
    h = Histogram("x")
    assert h.mean == 0.0
    assert h.quantile(0.5) == 0.0


def test_registry_instruments_are_singletons():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert set(reg.counters) == {"a"}
    assert set(reg.gauges) == {"b"}
    assert set(reg.histograms) == {"c"}


def test_listener_feeds_registry_from_samples():
    listener = MetricsListener()
    for event in SAMPLES:
        listener.on_event(event)
    reg = listener.registry
    assert reg.counter("events.total").value == len(SAMPLES)
    assert reg.counter("tasks.ok").value == 1
    assert reg.histogram("tasks.duration_seconds").count == 1
    assert reg.counter("messages.sent").value == 1
    assert reg.histogram("messages.size_bytes").max == 4096.0
    assert reg.counter("ring.hops").value == 1
    assert reg.counter("imm.merges").value == 1
    assert reg.counter("blocks.put").value == 1
    assert reg.gauge("nic.driver.out_utilization").value == 0.16
    summary = reg.summary()
    assert "counter   tasks.ok = 1" in summary
    assert "histogram messages.size_bytes" in summary


def test_nic_monitor_samples_every_node_and_driver():
    sc, recorder = run_lr(trace=True, nic=True, num_iterations=1)
    samples = recorder.of_kind("nic_sample")
    assert samples
    # 2 worker nodes plus the driver's own host (node_id -1).
    assert {s.node_id for s in samples} == {-1, 0, 1}
    assert {s.hostname for s in samples if s.is_driver} == {"driver-host"}
    for s in samples:
        assert 0.0 <= s.in_utilization <= 1.0 + 1e-9
        assert 0.0 <= s.out_utilization <= 1.0 + 1e-9


def test_nic_monitor_catches_heavy_transfers():
    """With long-lived flows the sampler sees a busy (here: saturated)
    driver NIC — the paper's Figure 4 bottleneck, observed live."""
    import numpy as np

    from repro.cluster import MB
    from repro.obs import RecordingListener
    from repro.rdd import SparkerContext
    from repro.serde import SizedPayload
    from repro.cluster import ClusterConfig

    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    recorder = RecordingListener()
    sc.event_bus.subscribe(recorder)
    monitor = NicMonitor(sc.cluster, sc.event_bus, interval=0.005)
    n = sc.cluster.total_cores
    data = [SizedPayload(np.ones(32), sim_bytes=32 * MB) for _ in range(n)]
    rdd = sc.parallelize(data, n).cache()
    rdd.count()
    zero = lambda: SizedPayload(np.zeros(32), sim_bytes=32 * MB)  # noqa: E731
    rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                       lambda a, b: a.merge(b))
    monitor.stop()
    assert monitor.samples > 0
    samples = recorder.of_kind("nic_sample")
    assert any(s.in_rate > 0 or s.out_rate > 0 for s in samples)
    # the final gather funnels every branch into the driver's ingress
    driver_in = max(s.in_utilization for s in samples if s.is_driver)
    assert driver_in == pytest.approx(1.0, abs=1e-6)


def test_nic_monitor_interval_validation():
    sc, _ = run_lr(trace=False, num_iterations=1)
    with pytest.raises(ValueError):
        NicMonitor(sc.cluster, sc.event_bus, interval=0.0)
