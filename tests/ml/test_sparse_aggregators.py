"""Density-adaptive aggregator tests: bit-identity with the dense path.

The adaptive representation (sparse accumulation, threshold densification,
representation-adaptive segment merges) must be *observationally bitwise
equal* to the classic dense ``FlatAggregator`` — same payload bits, same
stats, same split/reduce/concat algebra — while reporting smaller wire
sizes below the break-even density.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.aggregators import (
    AggregatorSegment,
    FlatAggregator,
    SparseAccumulator,
    concat_op,
    reduce_op,
    split_op,
)
from repro.serde import DEFAULT_SPARSE_POLICY, SparsePolicy, sim_sizeof

POLICY = DEFAULT_SPARSE_POLICY


def _scatter(rng, agg, size, n, scale=1.0):
    """Fold n random sparse contributions into agg's payload."""
    for _ in range(n):
        k = int(rng.integers(1, 8))
        idx = rng.choice(size, size=k, replace=False).astype(np.int64)
        vals = rng.standard_normal(k) * scale
        target = agg.payload
        if isinstance(target, np.ndarray):
            np.add.at(target, idx, vals)
        else:
            target.scatter_add(idx, vals)
        agg.add_stats(float(vals.sum()), 1.0)


# ------------------------------------------------------ SparseAccumulator
def test_accumulator_matches_dense_reference():
    rng = np.random.default_rng(0)
    acc = SparseAccumulator(200, POLICY)
    reference = np.zeros(200)
    for _ in range(50):
        idx = rng.choice(200, size=5, replace=False).astype(np.int64)
        vals = rng.standard_normal(5)
        acc.scatter_add(idx, vals)
        np.add.at(reference, idx, vals)
    out = np.zeros(200)
    acc.write_into(out)
    np.testing.assert_array_equal(out, reference)


def test_accumulator_densifies_at_threshold():
    acc = SparseAccumulator(100, SparsePolicy(density_threshold=0.3))
    acc.scatter_add(np.arange(29), np.ones(29))
    acc.coalesce()
    assert not acc.is_dense
    acc.scatter_add(np.array([40]), np.array([1.0]))
    acc.coalesce()
    assert acc.is_dense
    assert acc.nnz == 100  # dense reports full length
    assert acc.density == 1.0


def test_accumulator_indices_values_requires_sparse():
    acc = SparseAccumulator(10, POLICY)
    acc.densify()
    with pytest.raises(RuntimeError):
        acc.indices_values()


def test_accumulator_merge_sparse_and_dense():
    a = SparseAccumulator(50, POLICY)
    b = SparseAccumulator(50, POLICY)
    a.scatter_add(np.array([1, 2]), np.array([1.0, 2.0]))
    b.scatter_add(np.array([2, 3]), np.array([3.0, 4.0]))
    a.merge_accumulator(b)
    out = np.zeros(50)
    a.write_into(out)
    assert (out[1], out[2], out[3]) == (1.0, 5.0, 4.0)
    c = SparseAccumulator(50, POLICY)
    c.densify()
    c.scatter_add(np.array([0]), np.array([7.0]))
    a.merge_accumulator(c)  # dense other forces self dense
    assert a.is_dense
    assert a.buf[0] == 7.0 and a.buf[2] == 5.0


# ----------------------------------------------------- AggregatorSegment
def test_sparse_segment_wire_size_switch():
    seg = AggregatorSegment.sparse(
        100, np.array([3, 50]), np.array([1.0, 2.0]), 800.0,
        policy=POLICY)
    assert seg.is_sparse
    assert seg.__sim_size__() == 32.0  # 2 nnz * 16 B
    assert seg.__sim_dense_size__() == 800.0
    assert sim_sizeof(seg) == 32.0


def test_sparse_segment_densifies_at_creation_over_threshold():
    idx = np.arange(60)
    seg = AggregatorSegment.sparse(100, idx, np.ones(60), 800.0,
                                   policy=POLICY)
    assert not seg.is_sparse
    assert seg.__sim_size__() == 800.0


def test_segment_merge_cases_match_dense():
    rng = np.random.default_rng(1)
    length = 80
    dense_a = np.zeros(length)
    dense_b = np.zeros(length)
    ia = np.sort(rng.choice(length, size=6, replace=False))
    ib = np.sort(rng.choice(length, size=6, replace=False))
    dense_a[ia] = rng.standard_normal(6)
    dense_b[ib] = rng.standard_normal(6)
    expected = dense_a + dense_b

    def sa():
        return AggregatorSegment.sparse(length, ia, dense_a[ia], 640.0,
                                        policy=POLICY)

    def sb():
        return AggregatorSegment.sparse(length, ib, dense_b[ib], 640.0,
                                        policy=POLICY)

    def da():
        return AggregatorSegment(dense_a.copy(), 640.0, policy=POLICY,
                                 owned=True)

    def db():
        return AggregatorSegment(dense_b.copy(), 640.0, policy=POLICY)

    # fresh segments per case: owned destinations merge in place
    for left, right in ((sa, sb), (sa, db), (da, sb), (da, db)):
        merged = left().merge(right())
        np.testing.assert_array_equal(merged.to_array(), expected)
        assert merged.owned


def test_unowned_dense_merge_allocates():
    base = np.ones(10)
    seg = AggregatorSegment(base, 80.0, policy=POLICY, owned=False)
    other = AggregatorSegment(np.ones(10), 80.0, policy=POLICY)
    merged = seg.merge(other)
    assert merged is not seg
    np.testing.assert_array_equal(base, 1.0)  # view untouched


def test_owned_dense_merge_in_place():
    seg = AggregatorSegment(np.ones(10), 80.0, policy=POLICY, owned=True)
    other = AggregatorSegment(np.full(10, 2.0), 80.0)
    merged = seg.merge(other)
    assert merged is seg
    np.testing.assert_array_equal(seg.buf, 3.0)


def test_sparse_sparse_merge_can_switch_to_dense():
    length = 100
    ia = np.arange(0, 30, dtype=np.int64)
    ib = np.arange(25, 55, dtype=np.int64)
    sa = AggregatorSegment.sparse(length, ia, np.ones(30), 800.0,
                                  policy=POLICY)
    sb = AggregatorSegment.sparse(length, ib, np.ones(30), 800.0,
                                  policy=POLICY)
    merged = sa.merge(sb)
    # union nnz = 55 of 100 >= 0.5 threshold -> the merge densifies
    assert merged.representation == "dense"
    assert merged.owned
    expected = np.zeros(length)
    expected[ia] += 1.0
    expected[ib] += 1.0
    np.testing.assert_array_equal(merged.to_array(), expected)


# ------------------------------------------- FlatAggregator adaptive mode
@pytest.mark.parametrize("density", [0.001, 0.01, 0.1, 0.5, 1.0])
@pytest.mark.parametrize("n_segments", [1, 3, 7])
def test_adaptive_bit_identical_across_densities(density, n_segments):
    size = 1000
    rng_d = np.random.default_rng(42)
    rng_a = np.random.default_rng(42)
    dense = FlatAggregator(size, 2.0)
    adaptive = FlatAggregator(size, 2.0, policy=POLICY)
    support = max(1, int(density * size))
    for agg, rng in ((dense, rng_d), (adaptive, rng_a)):
        for _ in range(40):
            idx = rng.choice(support, size=min(4, support),
                             replace=False).astype(np.int64)
            vals = rng.standard_normal(idx.size)
            target = agg.payload
            if isinstance(target, np.ndarray):
                np.add.at(target, idx, vals)
            else:
                target.scatter_add(idx, vals)
            agg.add_stats(float(vals.sum()), 1.0)

    # segment-level algebra: split -> pairwise reduce -> concat
    d_segs = [split_op(dense, i, n_segments) for i in range(n_segments)]
    a_segs = [split_op(adaptive, i, n_segments)
              for i in range(n_segments)]
    d_out = concat_op([reduce_op(s, split_op(dense, s_i, n_segments))
                       for s_i, s in enumerate(d_segs)])
    a_out = concat_op([reduce_op(s, split_op(adaptive, s_i, n_segments))
                       for s_i, s in enumerate(a_segs)])
    np.testing.assert_array_equal(d_out.buf, a_out.buf)
    assert d_out.loss_sum == a_out.loss_sum
    assert d_out.weight_sum == a_out.weight_sum


def test_adaptive_whole_aggregator_merge_matches_dense():
    rng_seed = 7
    size = 300
    variants = []
    for policy in (None, POLICY):
        rng = np.random.default_rng(rng_seed)
        a = FlatAggregator(size, policy=policy)
        b = FlatAggregator(size, policy=policy)
        _scatter(rng, a, size, 25)
        _scatter(rng, b, size, 25)
        a.merge(b)
        a.to_dense()
        variants.append(a)
    dense, adaptive = variants
    np.testing.assert_array_equal(dense.buf, adaptive.buf)


def test_adaptive_mixed_merge_matches_dense():
    size = 300
    rng = np.random.default_rng(3)
    sparse_side = FlatAggregator(size, policy=POLICY)
    dense_side = FlatAggregator(size, policy=POLICY)
    _scatter(rng, sparse_side, size, 10)
    _scatter(rng, dense_side, size, 10)
    dense_side.to_dense()

    rng = np.random.default_rng(3)
    ref_a = FlatAggregator(size)
    ref_b = FlatAggregator(size)
    _scatter(rng, ref_a, size, 10)
    _scatter(rng, ref_b, size, 10)

    # sparse.merge(dense) and dense.merge(sparse) both match reference
    left = sparse_side.copy().merge(dense_side.copy())
    right = dense_side.copy().merge(sparse_side.copy())
    expected = ref_a.merge(ref_b).to_dense().buf
    np.testing.assert_array_equal(left.to_dense().buf, expected)
    np.testing.assert_array_equal(right.to_dense().buf, expected)


def test_adaptive_sim_size_below_dense():
    agg = FlatAggregator(1000, 4.0, policy=POLICY)
    agg.payload.scatter_add(np.array([5, 10]), np.array([1.0, 1.0]))
    agg.add_stats(1.0, 1.0)
    assert agg.representation == "sparse"
    assert sim_sizeof(agg) < agg.__sim_dense_size__()
    assert agg.__sim_dense_size__() == (1000 + 2) * 8.0 * 4.0
    agg.to_dense()
    assert sim_sizeof(agg) == agg.__sim_dense_size__()


def test_adaptive_split_carries_stats_sparsely():
    agg = FlatAggregator(10, policy=POLICY)
    agg.payload.scatter_add(np.array([0]), np.array([5.0]))
    agg.add_stats(2.5, 2.0)
    n = 3
    segs = [agg.split(i, n) for i in range(n)]
    rebuilt = concat_op(segs)
    assert rebuilt.buf[0] == 5.0
    assert rebuilt.loss_sum == 2.5
    assert rebuilt.weight_sum == 2.0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 6),
       st.floats(0.05, 0.95))
def test_property_adaptive_equals_dense(seed, n_segments, threshold):
    size = 120
    policy = SparsePolicy(density_threshold=threshold)
    rng_d = np.random.default_rng(seed)
    rng_a = np.random.default_rng(seed)
    dense = FlatAggregator(size)
    adaptive = FlatAggregator(size, policy=policy)
    _scatter(rng_d, dense, size, 15)
    _scatter(rng_a, adaptive, size, 15)
    d_segs = [dense.split(i, n_segments) for i in range(n_segments)]
    a_segs = [adaptive.split(i, n_segments) for i in range(n_segments)]
    d_out = concat_op(d_segs)
    a_out = concat_op(a_segs)
    np.testing.assert_array_equal(d_out.buf, a_out.buf)


# ------------------------------------------------- sizeof memoization
def test_sparse_sizeof_is_cached_and_invalidated_on_mutation():
    agg = FlatAggregator(1000, policy=SparsePolicy(density_threshold=0.9))
    agg.payload.scatter_add(np.arange(4, dtype=np.int64), np.ones(4))
    first = sim_sizeof(agg)
    # Re-reading without mutation serves the memo (same version, same size).
    assert sim_sizeof(agg) == first
    assert agg._wire_cache is not None
    version_before = agg.payload.version
    agg.payload.scatter_add(np.arange(10, 20, dtype=np.int64), np.ones(10))
    assert agg.payload.version > version_before
    second = sim_sizeof(agg)
    assert second > first  # more nnz -> bigger sparse wire size


def test_sparse_sizeof_cache_survives_copy_semantics():
    agg = FlatAggregator(500, policy=SparsePolicy(density_threshold=0.9))
    agg.payload.scatter_add(np.arange(8, dtype=np.int64), np.ones(8))
    size = sim_sizeof(agg)
    clone = agg.copy()
    assert sim_sizeof(clone) == size
    # Mutating the clone must not return the parent's memoized size.
    clone.payload.scatter_add(np.arange(100, 140, dtype=np.int64),
                              np.ones(40))
    assert sim_sizeof(clone) > size
    assert sim_sizeof(agg) == size


def test_dense_sizeof_constant_is_cached():
    from repro.serde import sim_dense_sizeof

    agg = FlatAggregator(100, size_scale=3.0)
    expected = (100 + 2) * 8.0 * 3.0
    assert sim_dense_sizeof(agg) == pytest.approx(expected)
    assert sim_dense_sizeof(agg) == pytest.approx(expected)  # cached path


def test_segment_wire_cache_invalidated_by_merge():
    rng = np.random.default_rng(3)
    agg = FlatAggregator(400, policy=SparsePolicy(density_threshold=0.9))
    _scatter(rng, agg, 400, 6)
    seg = split_op(agg, 0, 4)
    if seg.buf is not None:
        pytest.skip("segment densified; wire cache applies to sparse form")
    before = sim_sizeof(seg)
    assert sim_sizeof(seg) == before
    other = split_op(agg, 0, 4)
    merged = seg.merge(other)
    assert sim_sizeof(merged) >= 0.0  # recomputed, not the stale memo
