"""End-to-end model training tests: LR, SVM, backends, convergence."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.data import sparse_classification
from repro.ml import (
    GradientDescent,
    LogisticGradient,
    LogisticRegressionWithSGD,
    SVMWithSGD,
    SimpleUpdater,
)
from repro.rdd import SparkerContext


@pytest.fixture(scope="module")
def training_setup():
    """One shared dataset; fresh contexts per test are cheap, data isn't."""
    points, true_w = sparse_classification(500, 60, 10, seed=13)
    return points, true_w


def make_rdd(points, nodes=2):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=nodes))
    rdd = sc.parallelize(points, 8).cache()
    rdd.count()
    return sc, rdd


def test_lr_learns_something(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = LogisticRegressionWithSGD.train(rdd, 60, num_iterations=25,
                                            step_size=2.0)
    assert model.accuracy(points) > 0.8
    assert model.losses[-1] < model.losses[0]


def test_lr_loss_monotone_overall(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = LogisticRegressionWithSGD.train(rdd, 60, num_iterations=15,
                                            step_size=1.0)
    # Full-batch GD with decaying steps: start vs end must improve a lot.
    assert model.losses[-1] < 0.9 * model.losses[0]


def test_svm_learns_something(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = SVMWithSGD.train(rdd, 60, num_iterations=25, step_size=1.0,
                             reg_param=0.01)
    assert model.accuracy(points) > 0.8


def test_backends_produce_identical_weights(training_setup):
    points, _ = training_setup
    weights = {}
    for backend in ("tree", "tree_imm", "split"):
        _sc, rdd = make_rdd(points)
        model = LogisticRegressionWithSGD.train(
            rdd, 60, num_iterations=5, step_size=1.0, aggregation=backend)
        weights[backend] = model.weights
    np.testing.assert_allclose(weights["tree"], weights["tree_imm"])
    np.testing.assert_allclose(weights["tree"], weights["split"])


def test_split_backend_is_faster_for_large_models(training_setup):
    points, _ = training_setup

    def run(backend):
        _sc, rdd = make_rdd(points, nodes=2)
        sc = rdd.sc
        t0 = sc.now
        LogisticRegressionWithSGD.train(
            rdd, 60, num_iterations=3, aggregation=backend,
            size_scale=100_000.0)  # pose as a 48MB aggregator
        return sc.now - t0

    assert run("split") < run("tree")


def test_lr_probability_predictions(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = LogisticRegressionWithSGD.train(rdd, 60, num_iterations=20,
                                            step_size=2.0)
    probs = [model.predict_probability(p.features) for p in points[:50]]
    assert all(0.0 <= p <= 1.0 for p in probs)
    # Probabilities should align with hard predictions.
    for p, prob in zip(points[:50], probs):
        assert model.predict(p.features) == (1.0 if prob > 0.5 else 0.0)


def test_mini_batch_fraction_trains(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = LogisticRegressionWithSGD.train(
        rdd, 60, num_iterations=12, step_size=1.0, mini_batch_fraction=0.5)
    assert model.accuracy(points) > 0.7


def test_convergence_tolerance_stops_early(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = LogisticRegressionWithSGD.train(
        rdd, 60, num_iterations=50, step_size=0.001,
        convergence_tol=0.5)  # loose tolerance: stops almost immediately
    assert len(model.losses) < 50


def test_initial_weights_respected(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    w0 = np.full(60, 0.25)
    model = LogisticRegressionWithSGD.train(
        rdd, 60, num_iterations=1, step_size=0.0, initial_weights=w0)
    np.testing.assert_allclose(model.weights, w0)


def test_validation_errors(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    with pytest.raises(ValueError):
        LogisticRegressionWithSGD.train(rdd, 0)
    with pytest.raises(ValueError):
        LogisticRegressionWithSGD.train(rdd, 60,
                                        initial_weights=np.zeros(10))
    with pytest.raises(ValueError):
        GradientDescent(LogisticGradient(), SimpleUpdater(),
                        aggregation="bogus")
    with pytest.raises(ValueError):
        GradientDescent(LogisticGradient(), SimpleUpdater(),
                        num_iterations=0)
    with pytest.raises(ValueError):
        GradientDescent(LogisticGradient(), SimpleUpdater(),
                        mini_batch_fraction=0.0)


def test_accuracy_empty_rejected(training_setup):
    points, _ = training_setup
    _sc, rdd = make_rdd(points)
    model = LogisticRegressionWithSGD.train(rdd, 60, num_iterations=1)
    with pytest.raises(ValueError):
        model.accuracy([])


def test_training_is_deterministic(training_setup):
    points, _ = training_setup

    def run():
        _sc, rdd = make_rdd(points)
        model = LogisticRegressionWithSGD.train(rdd, 60, num_iterations=4)
        return model.weights, rdd.sc.now

    (w1, t1), (w2, t2) = run(), run()
    np.testing.assert_array_equal(w1, w2)
    assert t1 == t2


def test_stopwatch_decomposition_recorded(training_setup):
    points, _ = training_setup
    sc, rdd = make_rdd(points)
    LogisticRegressionWithSGD.train(rdd, 60, num_iterations=3)
    assert sc.stopwatch.total("agg.compute") > 0
    assert sc.stopwatch.total("agg.reduce") > 0
    assert sc.stopwatch.total("ml.driver") > 0
    assert sc.stopwatch.total("ml.broadcast") > 0
