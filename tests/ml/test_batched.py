"""Per-partition CSR batching: same bits where promised, faster host path.

The batched kernel must produce gradient sums bit-identical to the
per-element fold (entries land in the same order), losses within float
tolerance (NumPy pairwise sums), and charge *exactly* the virtual time the
per-element loop would have charged.
"""

import numpy as np
import pytest

from repro.ml.aggregators import FlatAggregator
from repro.ml.batched import (
    CSRMatrix,
    BatchedSeqOp,
    batched_seq_op,
    clear_csr_cache,
    csr_cache_stats,
    partition_csr,
    supports_batching,
)
from repro.ml.gradient import (
    HingeGradient,
    LeastSquaresGradient,
    LogisticGradient,
)
from repro.ml.linalg import LabeledPoint, SparseVector
from repro.rdd.costing import ELEMENT_OVERHEAD
from repro.serde import DEFAULT_SPARSE_POLICY


class _Ctx:
    """Just enough of TaskContext for fold_partition."""

    def __init__(self):
        self.charged = 0.0

    def charge(self, seconds):
        assert seconds >= 0
        self.charged += seconds


def _points(n, dim, nnz, seed=0):
    rng = np.random.default_rng(seed)
    pts = []
    for _ in range(n):
        idx = np.sort(rng.choice(dim, size=nnz, replace=False))
        vals = rng.standard_normal(nnz)
        pts.append(LabeledPoint(float(rng.integers(0, 2)),
                                SparseVector(dim, idx, vals)))
    return pts


def _reference(gradient, pts, weights, dim, policy=None):
    """The per-element fold the batched kernel must reproduce."""
    agg = FlatAggregator(dim, policy=policy)
    for p in pts:
        loss = gradient.add_to(p, weights, agg.payload)
        agg.add_stats(loss, 1.0)
    return agg


# ------------------------------------------------------------- CSR matrix
def test_csr_dots_match_per_point():
    dim = 40
    pts = _points(8, dim, 5, seed=1)
    csr = CSRMatrix.from_points(pts, dim)
    w = np.random.default_rng(2).standard_normal(dim)
    expected = np.array([p.features.dot(w) for p in pts])
    np.testing.assert_allclose(csr.dots(w), expected, rtol=1e-15)
    assert csr.nnz == 8 * 5
    np.testing.assert_array_equal(csr.labels,
                                  [p.label for p in pts])


def test_csr_rejects_dimension_mismatch():
    pts = _points(3, 10, 2)
    with pytest.raises(ValueError):
        CSRMatrix.from_points(pts, 20)
    csr = CSRMatrix.from_points(pts, 10)
    with pytest.raises(ValueError):
        csr.dots(np.zeros(11))


def test_csr_empty_partition():
    csr = CSRMatrix.from_points([], 10)
    assert csr.num_rows == 0 and csr.nnz == 0
    np.testing.assert_array_equal(csr.dots(np.ones(10)), [])


def test_scatter_grad_drops_zero_multipliers():
    dim = 10
    pts = _points(4, dim, 3, seed=3)
    csr = CSRMatrix.from_points(pts, dim)
    target = np.zeros(dim)
    csr.scatter_grad(target, np.array([1.0, 0.0, 0.0, 0.0]))
    expected = np.zeros(dim)
    pts[0].features.add_to(expected, 1.0)
    np.testing.assert_array_equal(target, expected)


# --------------------------------------------------------------- kernels
@pytest.mark.parametrize("gradient_cls",
                         [LogisticGradient, HingeGradient])
@pytest.mark.parametrize("policy", [None, DEFAULT_SPARSE_POLICY])
def test_batched_matches_per_element(gradient_cls, policy):
    dim = 200
    gradient = gradient_cls()
    pts = _points(60, dim, 6, seed=4)
    w = np.random.default_rng(5).standard_normal(dim) * 0.1

    reference = _reference(gradient, pts, w, dim).to_dense()
    batched = FlatAggregator(dim, policy=policy)
    seq_op = batched_seq_op(gradient, lambda: w, dim,
                            lambda agg, p: agg, 1e-9)
    out = seq_op.fold_partition(batched, pts, _Ctx())
    assert out is batched
    out.to_dense()

    if gradient_cls is HingeGradient:
        # hinge multipliers are exactly 0/±1: bit-identical gradient sums
        np.testing.assert_array_equal(out.buf[:dim], reference.buf[:dim])
    else:
        # logistic goes through np.exp / bincount: allclose within ulps
        np.testing.assert_allclose(out.buf[:dim], reference.buf[:dim],
                                   rtol=1e-13, atol=1e-15)
    # losses use NumPy pairwise sums: close, not bit-equal
    np.testing.assert_allclose(out.loss_sum, reference.loss_sum,
                               rtol=1e-12)
    assert out.weight_sum == reference.weight_sum


def test_batched_charges_exact_left_fold_time():
    dim = 50
    pts = _points(30, dim, 4, seed=6)
    w = np.zeros(dim)
    draws = np.random.default_rng(7).uniform(1e-6, 1e-3, len(pts))
    cost_of = {id(p): float(c) for p, c in zip(pts, draws)}

    def cost_fn(agg, p):
        return cost_of[id(p)]

    # the per-element loop's charge, one sample at a time
    per_element = _Ctx()
    for p in pts:
        per_element.charge(cost_fn(None, p) + ELEMENT_OVERHEAD)

    seq_op = batched_seq_op(LogisticGradient(), lambda: w, dim,
                            lambda agg, p: agg, cost_fn)
    batched = _Ctx()
    seq_op.fold_partition(FlatAggregator(dim), pts, batched)
    assert batched.charged == per_element.charged  # bit-equal, not approx


def test_batched_constant_cost_and_empty_partition():
    dim = 10
    seq_op = batched_seq_op(HingeGradient(), lambda: np.zeros(dim), dim,
                            lambda agg, p: agg, 2e-6)
    ctx = _Ctx()
    agg = FlatAggregator(dim)
    assert seq_op.fold_partition(agg, [], ctx) is agg
    assert ctx.charged == 0.0
    pts = _points(5, dim, 2, seed=8)
    seq_op.fold_partition(agg, pts, ctx)
    assert ctx.charged == sum([2e-6 + ELEMENT_OVERHEAD] * 5)


def test_unsupported_gradient_raises():
    assert not supports_batching(LeastSquaresGradient())
    assert supports_batching(LogisticGradient())
    with pytest.raises(TypeError, match="LeastSquaresGradient"):
        BatchedSeqOp(LeastSquaresGradient(), lambda: None, 4,
                     lambda a, p: a, 0.0)


# ----------------------------------------------------------------- cache
def test_partition_csr_cache_hits_on_same_list():
    clear_csr_cache()
    pts = _points(6, 20, 3, seed=9)
    first = partition_csr(pts, 20)
    second = partition_csr(pts, 20)
    assert second is first
    other = partition_csr(list(pts), 20)  # different list object
    assert other is not first
    stats = csr_cache_stats()
    assert stats == {"hits": 1, "misses": 2}
    clear_csr_cache()
    assert csr_cache_stats() == {"hits": 0, "misses": 0}
