"""Tests for gradients (vs numerical differentiation) and updaters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    HingeGradient,
    LabeledPoint,
    LeastSquaresGradient,
    LogisticGradient,
    SimpleUpdater,
    SparseVector,
    SquaredL2Updater,
)


def numerical_gradient(loss_fn, weights, eps=1e-6):
    grad = np.zeros_like(weights)
    for i in range(weights.size):
        up, down = weights.copy(), weights.copy()
        up[i] += eps
        down[i] -= eps
        grad[i] = (loss_fn(up) - loss_fn(down)) / (2 * eps)
    return grad


def make_point(label, dense):
    return LabeledPoint(label, SparseVector.from_dense(dense))


# ---------------------------------------------------------------- logistic
@pytest.mark.parametrize("label", [0.0, 1.0])
def test_logistic_gradient_matches_numerical(label):
    rng = np.random.default_rng(3)
    weights = rng.standard_normal(5) * 0.5
    x = rng.standard_normal(5)
    point = make_point(label, x)
    gradient = LogisticGradient()

    def loss_fn(w):
        g = np.zeros_like(w)
        return LogisticGradient().add_to(point, w, g)

    analytic = np.zeros(5)
    loss = gradient.add_to(point, weights, analytic)
    assert loss >= 0
    numeric = numerical_gradient(loss_fn, weights)
    np.testing.assert_allclose(analytic, numeric, atol=1e-5)


def test_logistic_loss_decreases_along_negative_gradient():
    rng = np.random.default_rng(5)
    weights = rng.standard_normal(4)
    point = make_point(1.0, rng.standard_normal(4))
    gradient = LogisticGradient()
    g = np.zeros(4)
    loss0 = gradient.add_to(point, weights, g)
    g2 = np.zeros(4)
    loss1 = gradient.add_to(point, weights - 0.01 * g, g2)
    assert loss1 < loss0


def test_logistic_extreme_margin_is_stable():
    point = make_point(1.0, [1000.0, 0.0])
    g = np.zeros(2)
    loss = LogisticGradient().add_to(point, np.array([100.0, 0.0]), g)
    assert np.isfinite(loss)
    assert np.all(np.isfinite(g))


# ------------------------------------------------------------------- hinge
@pytest.mark.parametrize("label", [0.0, 1.0])
def test_hinge_gradient_matches_numerical_off_kink(label):
    rng = np.random.default_rng(7)
    weights = rng.standard_normal(5)
    x = rng.standard_normal(5)
    point = make_point(label, x)
    y = 2 * label - 1
    if abs(1 - y * point.features.dot(weights)) < 1e-3:
        weights = weights * 2  # move away from the hinge kink

    def loss_fn(w):
        g = np.zeros_like(w)
        return HingeGradient().add_to(point, w, g)

    analytic = np.zeros(5)
    HingeGradient().add_to(point, weights, analytic)
    numeric = numerical_gradient(loss_fn, weights)
    np.testing.assert_allclose(analytic, numeric, atol=1e-5)


def test_hinge_zero_beyond_margin():
    point = make_point(1.0, [1.0, 0.0])
    g = np.zeros(2)
    loss = HingeGradient().add_to(point, np.array([5.0, 0.0]), g)
    assert loss == 0.0
    np.testing.assert_allclose(g, 0.0)


# ----------------------------------------------------------- least squares
def test_least_squares_gradient_matches_numerical():
    rng = np.random.default_rng(9)
    weights = rng.standard_normal(4)
    point = make_point(2.5, rng.standard_normal(4))

    def loss_fn(w):
        g = np.zeros_like(w)
        return LeastSquaresGradient().add_to(point, w, g)

    analytic = np.zeros(4)
    LeastSquaresGradient().add_to(point, weights, analytic)
    numeric = numerical_gradient(loss_fn, weights)
    np.testing.assert_allclose(analytic, numeric, atol=1e-5)


def test_gradients_accumulate_in_place():
    point = make_point(1.0, [1.0, 2.0])
    g = np.array([5.0, 5.0])
    before = g.copy()
    LeastSquaresGradient().add_to(point, np.zeros(2), g)
    assert not np.allclose(g, before)  # contribution added on top


# ----------------------------------------------------------------- updaters
def test_simple_updater_step_schedule():
    w = np.array([1.0, 1.0])
    g = np.array([1.0, 0.0])
    w1, reg1 = SimpleUpdater().compute(w, g, step_size=1.0, iteration=1,
                                       reg_param=0.0)
    w4, _ = SimpleUpdater().compute(w, g, step_size=1.0, iteration=4,
                                    reg_param=0.0)
    np.testing.assert_allclose(w1, [0.0, 1.0])
    np.testing.assert_allclose(w4, [0.5, 1.0])  # 1/sqrt(4) step
    assert reg1 == 0.0


def test_l2_updater_shrinks_and_reports_reg_loss():
    w = np.array([2.0, -2.0])
    g = np.zeros(2)
    new_w, reg_loss = SquaredL2Updater().compute(w, g, step_size=1.0,
                                                 iteration=1, reg_param=0.1)
    assert np.all(np.abs(new_w) < np.abs(w))
    assert reg_loss == pytest.approx(0.05 * float(new_w @ new_w))


def test_updater_iteration_validation():
    with pytest.raises(ValueError):
        SimpleUpdater().compute(np.zeros(2), np.zeros(2), 1.0, 0, 0.0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500), label=st.sampled_from([0.0, 1.0]))
def test_logistic_gradient_property(seed, label):
    rng = np.random.default_rng(seed)
    dim = rng.integers(2, 8)
    weights = rng.standard_normal(dim)
    point = make_point(label, rng.standard_normal(dim))

    def loss_fn(w):
        g = np.zeros_like(w)
        return LogisticGradient().add_to(point, w, g)

    analytic = np.zeros(dim)
    LogisticGradient().add_to(point, weights, analytic)
    numeric = numerical_gradient(loss_fn, weights)
    np.testing.assert_allclose(analytic, numeric, atol=1e-4)
