"""Tests for the Figure 7-style aggregator classes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.aggregators import (
    AggregatorSegment,
    FlatAggregator,
    concat_op,
    reduce_op,
    split_op,
)
from repro.serde import sim_sizeof


def test_zero_initialization():
    agg = FlatAggregator(5)
    np.testing.assert_allclose(agg.buf, 0.0)
    assert agg.loss_sum == 0.0
    assert agg.weight_sum == 0.0


def test_payload_view_is_writable():
    agg = FlatAggregator(4)
    agg.payload[2] = 7.0
    assert agg.buf[2] == 7.0


def test_add_stats():
    agg = FlatAggregator(2)
    agg.add_stats(0.5, 1.0)
    agg.add_stats(1.5, 2.0)
    assert agg.loss_sum == pytest.approx(2.0)
    assert agg.weight_sum == pytest.approx(3.0)


def test_merge_accumulates_everything():
    a, b = FlatAggregator(3), FlatAggregator(3)
    a.payload[:] = [1, 2, 3]
    a.add_stats(1.0)
    b.payload[:] = [10, 20, 30]
    b.add_stats(2.0)
    out = a.merge(b)
    assert out is a
    np.testing.assert_allclose(a.payload, [11, 22, 33])
    assert a.loss_sum == pytest.approx(3.0)
    assert a.weight_sum == pytest.approx(2.0)


def test_merge_size_mismatch():
    with pytest.raises(ValueError):
        FlatAggregator(3).merge(FlatAggregator(4))


def test_sim_size_uses_scale():
    agg = FlatAggregator(100, size_scale=50.0)
    assert sim_sizeof(agg) == pytest.approx(102 * 8 * 50.0)


def test_size_scale_validation():
    with pytest.raises(ValueError):
        FlatAggregator(10, size_scale=0.0)
    with pytest.raises(ValueError):
        FlatAggregator(-1)


def test_split_concat_round_trip():
    agg = FlatAggregator(14, size_scale=10.0)
    agg.payload[:] = np.arange(14)
    agg.add_stats(3.0, 7.0)
    segments = [split_op(agg, i, 5) for i in range(5)]
    assert all(isinstance(s, AggregatorSegment) for s in segments)
    back = concat_op(segments)
    np.testing.assert_allclose(back.buf, agg.buf)
    assert back.loss_sum == pytest.approx(3.0)
    assert back.weight_sum == pytest.approx(7.0)
    assert sim_sizeof(back) == pytest.approx(sim_sizeof(agg))


def test_segment_sim_sizes_sum_to_whole():
    agg = FlatAggregator(30, size_scale=4.0)
    segments = [split_op(agg, i, 7) for i in range(7)]
    assert sum(s.sim_bytes for s in segments) == pytest.approx(
        sim_sizeof(agg))


def test_reduce_op_elementwise():
    a = AggregatorSegment(np.array([1.0, 2.0]), 16.0)
    b = AggregatorSegment(np.array([3.0, 4.0]), 16.0)
    out = reduce_op(a, b)
    np.testing.assert_allclose(out.buf, [4.0, 6.0])
    assert out.sim_bytes == 16.0


def test_reduce_op_shape_mismatch():
    with pytest.raises(ValueError):
        reduce_op(AggregatorSegment(np.zeros(2), 1.0),
                  AggregatorSegment(np.zeros(3), 1.0))


def test_concat_empty_rejected():
    with pytest.raises(ValueError):
        concat_op([])


def test_segment_negative_size_rejected():
    with pytest.raises(ValueError):
        AggregatorSegment(np.zeros(2), -1.0)


def test_copy_independent():
    agg = FlatAggregator(3)
    agg.payload[:] = 1.0
    clone = agg.copy()
    clone.payload[:] = 9.0
    np.testing.assert_allclose(agg.payload, 1.0)


def test_buffer_length_validation():
    with pytest.raises(ValueError):
        FlatAggregator(3, buf=np.zeros(4))  # needs 3 + 2 slots


@settings(max_examples=25, deadline=None)
@given(payload=st.integers(0, 100), segments=st.integers(1, 16),
       scale=st.floats(0.1, 1e6), seed=st.integers(0, 99))
def test_split_concat_identity_property(payload, segments, scale, seed):
    rng = np.random.default_rng(seed)
    agg = FlatAggregator(payload, size_scale=scale)
    agg.buf[:] = rng.standard_normal(payload + 2)
    back = concat_op([split_op(agg, i, segments) for i in range(segments)])
    np.testing.assert_allclose(back.buf, agg.buf)
    assert sim_sizeof(back) == pytest.approx(sim_sizeof(agg), rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 10), payload=st.integers(1, 40),
       segments=st.integers(1, 8), seed=st.integers(0, 99))
def test_segmentwise_merge_equals_whole_merge(n, payload, segments, seed):
    """The algebraic heart of split aggregation: merging segment-wise then
    concatenating equals merging whole aggregators."""
    rng = np.random.default_rng(seed)
    aggs = []
    for _ in range(n):
        agg = FlatAggregator(payload)
        agg.buf[:] = rng.standard_normal(payload + 2)
        aggs.append(agg)

    whole = aggs[0].copy()
    for other in aggs[1:]:
        whole.merge(other.copy())

    merged_segments = []
    for i in range(segments):
        seg = split_op(aggs[0], i, segments)
        for other in aggs[1:]:
            seg = reduce_op(seg, split_op(other, i, segments))
        merged_segments.append(seg)
    via_segments = concat_op(merged_segments)
    np.testing.assert_allclose(via_segments.buf, whole.buf, rtol=1e-12)
