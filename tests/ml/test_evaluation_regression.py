"""Tests for evaluation metrics and linear regression."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.data import lda_corpus, sparse_classification
from repro.ml import (
    LDA,
    BinaryClassificationMetrics,
    LabeledPoint,
    LinearRegressionWithSGD,
    LogisticRegressionWithSGD,
    SparseVector,
    log_perplexity,
)
from repro.rdd import SparkerContext


# ----------------------------------------------------------------- metrics
def test_perfect_classifier_auc_is_one():
    pairs = [(0.9, 1), (0.8, 1), (0.2, 0), (0.1, 0)]
    assert BinaryClassificationMetrics(pairs).area_under_roc() == \
        pytest.approx(1.0)


def test_inverted_classifier_auc_is_zero():
    pairs = [(0.9, 0), (0.8, 0), (0.2, 1), (0.1, 1)]
    assert BinaryClassificationMetrics(pairs).area_under_roc() == \
        pytest.approx(0.0)


def test_random_scores_auc_near_half():
    rng = np.random.default_rng(5)
    pairs = [(rng.random(), float(rng.integers(0, 2))) for _ in range(4000)]
    auc = BinaryClassificationMetrics(pairs).area_under_roc()
    assert 0.45 < auc < 0.55


def test_roc_curve_is_monotone_and_anchored():
    rng = np.random.default_rng(7)
    pairs = [(rng.random() + 0.5 * lbl, float(lbl))
             for lbl in rng.integers(0, 2, 200)]
    curve = BinaryClassificationMetrics(pairs).roc_curve()
    assert curve[0] == (0.0, 0.0)
    assert curve[-1] == (1.0, 1.0)
    xs = [x for x, _y in curve]
    ys = [y for _x, y in curve]
    assert xs == sorted(xs)
    assert ys == sorted(ys)


def test_confusion_and_threshold_metrics():
    pairs = [(0.9, 1), (0.6, 0), (0.4, 1), (0.1, 0)]
    metrics = BinaryClassificationMetrics(pairs)
    tp, fp, tn, fn = metrics.confusion_at(0.5)
    assert (tp, fp, tn, fn) == (1, 1, 1, 1)
    assert metrics.precision_at(0.5) == pytest.approx(0.5)
    assert metrics.recall_at(0.5) == pytest.approx(0.5)
    assert metrics.f1_at(0.5) == pytest.approx(0.5)
    assert metrics.accuracy_at(0.5) == pytest.approx(0.5)


def test_degenerate_thresholds():
    metrics = BinaryClassificationMetrics([(0.5, 1), (0.4, 0)])
    assert metrics.precision_at(1.0) == 0.0  # nothing predicted positive
    assert metrics.recall_at(-1.0) == 1.0   # everything predicted positive
    assert metrics.f1_at(1.0) == 0.0


def test_metrics_validation():
    with pytest.raises(ValueError):
        BinaryClassificationMetrics([])
    with pytest.raises(ValueError):
        BinaryClassificationMetrics([(0.5, 2.0)])
    with pytest.raises(ValueError):
        BinaryClassificationMetrics([(0.5, 1.0)]).roc_curve()  # one class


def test_from_model_scores_with_margin():
    points, _ = sparse_classification(300, 40, 8, seed=3)
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(points, 8).cache()
    rdd.count()
    model = LogisticRegressionWithSGD.train(rdd, 40, num_iterations=20,
                                            step_size=2.0)
    metrics = BinaryClassificationMetrics.from_model(model, points)
    assert metrics.area_under_roc() > 0.85  # a trained model separates


# -------------------------------------------------------------- perplexity
def test_perplexity_lower_for_trained_model():
    docs, _ = lda_corpus(200, 50, 4, 40, seed=9)
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(docs, 8).cache()
    rdd.count()
    trained = LDA(k=4, num_iterations=12, seed=1).fit(rdd, 50)
    barely = LDA(k=4, num_iterations=1, seed=1).fit(rdd, 50)
    held_out = docs[:50]
    assert log_perplexity(trained, held_out) < \
        log_perplexity(barely, held_out)


def test_perplexity_empty_corpus_rejected():
    docs, _ = lda_corpus(20, 30, 3, 10, seed=2)
    sc = SparkerContext(ClusterConfig.laptop())
    rdd = sc.parallelize(docs, 4).cache()
    rdd.count()
    model = LDA(k=3, num_iterations=1).fit(rdd, 30)
    with pytest.raises(ValueError):
        log_perplexity(model, [SparseVector(30, [], [])])


# --------------------------------------------------------------- regression
def make_regression_data(n=300, dim=20, seed=11, noise=0.05):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(dim)
    points = []
    for _ in range(n):
        idx = np.sort(rng.choice(dim, size=6, replace=False))
        vals = rng.standard_normal(6)
        x = SparseVector(dim, idx, vals)
        y = float(w[idx] @ vals) + noise * rng.standard_normal()
        points.append(LabeledPoint(y, x))
    return points, w


def test_linear_regression_fits_linear_data():
    points, true_w = make_regression_data()
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(points, 8).cache()
    rdd.count()
    model = LinearRegressionWithSGD.train(rdd, 20, num_iterations=40,
                                          step_size=0.5)
    assert model.mean_squared_error(points) < 0.5
    assert model.losses[-1] < model.losses[0]


def test_linear_regression_backends_identical():
    points, _ = make_regression_data(n=120)
    weights = {}
    for backend in ("tree", "split"):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
        rdd = sc.parallelize(points, 6).cache()
        rdd.count()
        model = LinearRegressionWithSGD.train(
            rdd, 20, num_iterations=5, step_size=0.5, aggregation=backend)
        weights[backend] = model.weights
    np.testing.assert_allclose(weights["tree"], weights["split"])


def test_regression_mse_validation():
    points, _ = make_regression_data(n=50)
    sc = SparkerContext(ClusterConfig.laptop())
    rdd = sc.parallelize(points, 4).cache()
    rdd.count()
    model = LinearRegressionWithSGD.train(rdd, 20, num_iterations=2)
    with pytest.raises(ValueError):
        model.mean_squared_error([])
