"""Tests for online variational LDA."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.data import lda_corpus
from repro.ml import LDA, OnlineLDA, log_perplexity
from repro.rdd import SparkerContext


@pytest.fixture(scope="module")
def corpus():
    return lda_corpus(n_docs=300, vocab_size=60, n_topics=4,
                      doc_length=40, seed=71)


def fit(docs, vocab, **kwargs):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(docs, 8).cache()
    rdd.count()
    defaults = dict(k=4, num_iterations=20, mini_batch_fraction=0.3,
                    seed=5)
    defaults.update(kwargs)
    return OnlineLDA(**defaults).fit(rdd, vocab), sc


def test_recovers_planted_topics(corpus):
    docs, true_topics = corpus
    model, _sc = fit(docs, 60, num_iterations=25)
    learned = model.topics / np.linalg.norm(model.topics, axis=1,
                                            keepdims=True)
    planted = true_topics / np.linalg.norm(true_topics, axis=1,
                                           keepdims=True)
    assert (learned @ planted.T).max(axis=0).min() > 0.85


def test_topics_are_distributions(corpus):
    docs, _ = corpus
    model, _sc = fit(docs, 60, num_iterations=5)
    np.testing.assert_allclose(model.topics.sum(axis=1), 1.0, rtol=1e-9)
    assert np.all(model.topics >= 0)


def test_more_iterations_improve_perplexity(corpus):
    docs, _ = corpus
    long_model, _ = fit(docs, 60, num_iterations=30)
    short_model, _ = fit(docs, 60, num_iterations=2)
    held_out = docs[:60]
    assert log_perplexity(long_model, held_out) < \
        log_perplexity(short_model, held_out)


def test_online_approaches_em_quality(corpus):
    """Online VB with enough mini-batches gets close to full-batch EM."""
    docs, _ = corpus
    online, _ = fit(docs, 60, num_iterations=30)
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(docs, 8).cache()
    rdd.count()
    em = LDA(k=4, num_iterations=12, seed=5).fit(rdd, 60)
    held_out = docs[:60]
    online_ppl = log_perplexity(online, held_out)
    em_ppl = log_perplexity(em, held_out)
    assert online_ppl < em_ppl * 1.15  # within 15%


def test_full_batch_mode(corpus):
    docs, _ = corpus
    model, _sc = fit(docs, 60, mini_batch_fraction=1.0, num_iterations=5)
    assert np.all(np.isfinite(model.topics))


def test_backends_identical(corpus):
    docs, _ = corpus
    tree_model, _ = fit(docs, 60, num_iterations=4, aggregation="tree")
    split_model, _ = fit(docs, 60, num_iterations=4, aggregation="split")
    np.testing.assert_allclose(tree_model.topics, split_model.topics)


def test_validation():
    with pytest.raises(ValueError):
        OnlineLDA(k=1)
    with pytest.raises(ValueError):
        OnlineLDA(mini_batch_fraction=0.0)
    with pytest.raises(ValueError):
        OnlineLDA(kappa=0.3)  # below convergence bound
    with pytest.raises(ValueError):
        OnlineLDA(aggregation="bogus")
    sc = SparkerContext(ClusterConfig.laptop())
    with pytest.raises(ValueError):
        OnlineLDA().fit(sc.parallelize([], 2), 10)


def test_mini_batch_cheaper_per_iteration_than_full(corpus):
    docs, _ = corpus
    _model, sc_mini = fit(docs, 60, num_iterations=4,
                          mini_batch_fraction=0.2)
    _model2, sc_full = fit(docs, 60, num_iterations=4,
                           mini_batch_fraction=1.0)
    # Mini-batches do less E-step work per iteration.
    assert sc_mini.stopwatch.total("agg.compute") < \
        sc_full.stopwatch.total("agg.compute")
