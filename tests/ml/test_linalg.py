"""Tests for sparse vectors and labeled points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LabeledPoint, SparseVector
from repro.serde import sim_sizeof


def test_construction_and_nnz():
    v = SparseVector(10, [1, 5, 9], [1.0, 2.0, 3.0])
    assert v.size == 10
    assert v.nnz == 3


def test_dot_with_dense():
    v = SparseVector(5, [0, 3], [2.0, 4.0])
    w = np.arange(5, dtype=float)
    assert v.dot(w) == pytest.approx(0 * 2 + 3 * 4)


def test_dot_dimension_mismatch():
    v = SparseVector(5, [0], [1.0])
    with pytest.raises(ValueError):
        v.dot(np.zeros(4))


def test_add_to_axpy():
    v = SparseVector(4, [1, 3], [1.0, 2.0])
    dense = np.zeros(4)
    v.add_to(dense, scale=3.0)
    np.testing.assert_allclose(dense, [0, 3, 0, 6])


def test_add_to_dimension_mismatch():
    with pytest.raises(ValueError):
        SparseVector(4, [0], [1.0]).add_to(np.zeros(3))


def test_to_dense_round_trip():
    v = SparseVector(6, [0, 2, 5], [1.0, -2.0, 3.0])
    back = SparseVector.from_dense(v.to_dense())
    assert back == v


def test_from_dense_drops_zeros():
    v = SparseVector.from_dense([0.0, 1.0, 0.0, 2.0])
    assert v.nnz == 2
    assert list(v.indices) == [1, 3]


def test_norm_sq():
    v = SparseVector(4, [0, 1], [3.0, 4.0])
    assert v.norm_sq() == pytest.approx(25.0)


def test_indices_must_be_increasing():
    with pytest.raises(ValueError):
        SparseVector(5, [3, 1], [1.0, 2.0])
    with pytest.raises(ValueError):
        SparseVector(5, [1, 1], [1.0, 2.0])


def test_indices_out_of_range():
    with pytest.raises(ValueError):
        SparseVector(5, [5], [1.0])
    with pytest.raises(ValueError):
        SparseVector(5, [-1], [1.0])


def test_misaligned_arrays():
    with pytest.raises(ValueError):
        SparseVector(5, [1, 2], [1.0])


def test_sim_size_scales_with_nnz():
    small = SparseVector(1000, [1], [1.0])
    big = SparseVector(1000, list(range(100)), [1.0] * 100)
    # Sparse representation: size depends on nnz, not dimensionality.
    assert sim_sizeof(big) > sim_sizeof(small)
    assert sim_sizeof(small) < 100


def test_labeled_point():
    p = LabeledPoint(1, SparseVector(3, [0], [1.0]))
    assert p.label == 1.0
    assert sim_sizeof(p) == pytest.approx(8 + sim_sizeof(p.features))


def test_empty_sparse_vector():
    v = SparseVector(10, [], [])
    assert v.nnz == 0
    assert v.dot(np.ones(10)) == 0.0


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 50), st.integers(0, 1000))
def test_dot_matches_dense_reference(size, seed):
    rng = np.random.default_rng(seed)
    dense_v = rng.standard_normal(size) * (rng.random(size) < 0.4)
    v = SparseVector.from_dense(dense_v)
    w = rng.standard_normal(size)
    assert v.dot(w) == pytest.approx(float(dense_v @ w), abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 50), st.integers(0, 1000))
def test_add_to_matches_dense_reference(size, seed):
    rng = np.random.default_rng(seed)
    dense_v = rng.standard_normal(size) * (rng.random(size) < 0.4)
    v = SparseVector.from_dense(dense_v)
    target = rng.standard_normal(size)
    expected = target + 2.5 * dense_v
    v.add_to(target, 2.5)
    np.testing.assert_allclose(target, expected)
