"""Tests for L-BFGS optimization and the StandardScaler."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.data import sparse_classification
from repro.ml import (
    LBFGS,
    LabeledPoint,
    LogisticGradient,
    SparseVector,
    StandardScaler,
)
from repro.rdd import SparkerContext


@pytest.fixture(scope="module")
def dataset():
    return sparse_classification(400, 50, 10, seed=51)


def make_rdd(points, nodes=2, parts=8):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=nodes))
    rdd = sc.parallelize(points, parts).cache()
    rdd.count()
    return sc, rdd


# -------------------------------------------------------------------- LBFGS
def test_lbfgs_reduces_loss(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    optimizer = LBFGS(LogisticGradient(), max_iterations=10)
    weights, losses = optimizer.optimize(rdd, np.zeros(50))
    assert losses[-1] < 0.5 * losses[0]


def test_lbfgs_beats_sgd_per_iteration(dataset):
    """L-BFGS converges in far fewer passes than first-order GD."""
    from repro.ml import GradientDescent, SimpleUpdater

    points, _ = dataset
    _sc, rdd = make_rdd(points)
    _w, lbfgs_losses = LBFGS(LogisticGradient(), max_iterations=8) \
        .optimize(rdd, np.zeros(50))

    _sc2, rdd2 = make_rdd(points)
    _w2, gd_losses = GradientDescent(
        LogisticGradient(), SimpleUpdater(), step_size=1.0,
        num_iterations=8).optimize(rdd2, np.zeros(50))
    assert lbfgs_losses[-1] < gd_losses[-1]


def test_lbfgs_backends_agree(dataset):
    points, _ = dataset
    weights = {}
    for backend in ("tree", "split"):
        _sc, rdd = make_rdd(points)
        w, _losses = LBFGS(LogisticGradient(), max_iterations=4,
                           aggregation=backend).optimize(rdd, np.zeros(50))
        weights[backend] = w
    np.testing.assert_allclose(weights["tree"], weights["split"])


def test_lbfgs_regularization_bounds_weights(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    w_plain, _ = LBFGS(LogisticGradient(), max_iterations=6) \
        .optimize(rdd, np.zeros(50))
    _sc2, rdd2 = make_rdd(points)
    w_reg, _ = LBFGS(LogisticGradient(), max_iterations=6,
                     reg_param=1.0).optimize(rdd2, np.zeros(50))
    assert np.linalg.norm(w_reg) < np.linalg.norm(w_plain)


def test_lbfgs_convergence_tolerance_stops_early(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    _w, losses = LBFGS(LogisticGradient(), max_iterations=50,
                       convergence_tol=1e-2).optimize(rdd, np.zeros(50))
    assert len(losses) < 50


def test_lbfgs_charges_driver_time(dataset):
    points, _ = dataset
    sc, rdd = make_rdd(points)
    LBFGS(LogisticGradient(), max_iterations=3).optimize(rdd, np.zeros(50))
    assert sc.stopwatch.total("ml.driver") > 0
    assert sc.stopwatch.total("agg.compute") > 0


def test_lbfgs_validation():
    with pytest.raises(ValueError):
        LBFGS(LogisticGradient(), history=0)
    with pytest.raises(ValueError):
        LBFGS(LogisticGradient(), max_iterations=0)
    with pytest.raises(ValueError):
        LBFGS(LogisticGradient(), aggregation="bogus")


# ----------------------------------------------------------- StandardScaler
def test_scaler_matches_numpy_statistics(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    model = StandardScaler().fit(rdd, 50)

    dense = np.stack([p.features.to_dense() for p in points])
    np.testing.assert_allclose(model.mean, dense.mean(axis=0), atol=1e-9)
    np.testing.assert_allclose(model.variance, dense.var(axis=0, ddof=1),
                               atol=1e-9)
    assert model.count == len(points)


def test_scaler_backends_agree(dataset):
    points, _ = dataset
    stats = {}
    for backend in ("tree", "tree_imm", "split"):
        _sc, rdd = make_rdd(points)
        stats[backend] = StandardScaler(aggregation=backend).fit(rdd, 50)
    np.testing.assert_allclose(stats["tree"].mean, stats["split"].mean)
    np.testing.assert_allclose(stats["tree"].variance,
                               stats["tree_imm"].variance)


def test_scaler_transform_unit_variance(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    model = StandardScaler().fit(rdd, 50)
    scaled = [model.transform_point(p) for p in points]
    dense = np.stack([p.features.to_dense() for p in scaled])
    variances = dense.var(axis=0, ddof=1)
    active = model.variance > 0
    np.testing.assert_allclose(variances[active], 1.0, rtol=1e-9)


def test_scaler_transform_preserves_sparsity(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    model = StandardScaler().fit(rdd, 50)
    out = model.transform(points[0].features)
    assert list(out.indices) == list(points[0].features.indices)


def test_scaler_zero_variance_feature_passes_through():
    # Feature 1 is constant across the two points -> zero variance.
    points = [
        LabeledPoint(0, SparseVector(3, [0, 1], [1.0, 5.0])),
        LabeledPoint(1, SparseVector(3, [0, 1], [3.0, 5.0])),
    ]
    sc = SparkerContext(ClusterConfig.laptop())
    rdd = sc.parallelize(points, 2)
    model = StandardScaler().fit(rdd, 3)
    assert model.variance[1] == pytest.approx(0.0)
    out = model.transform(points[0].features)
    assert out.values[1] == pytest.approx(5.0)  # unscaled


def test_scaler_transform_rdd(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    model = StandardScaler().fit(rdd, 50)
    scaled = model.transform_rdd(rdd).collect()
    assert len(scaled) == len(points)
    assert all(isinstance(p, LabeledPoint) for p in scaled[:5])


def test_scaler_improves_conditioning_for_training():
    """Badly scaled features train poorly; scaling fixes it."""
    rng = np.random.default_rng(61)
    w_true = rng.standard_normal(20)
    points = []
    scales = 10.0 ** rng.uniform(-2, 2, 20)  # wildly mixed feature scales
    for _ in range(300):
        idx = np.sort(rng.choice(20, 6, replace=False))
        vals = rng.standard_normal(6) * scales[idx]
        margin = float(w_true[idx] @ (vals / scales[idx]))
        points.append(LabeledPoint(1.0 if margin > 0 else 0.0,
                                   SparseVector(20, idx, vals)))

    from repro.ml import LogisticRegressionWithSGD

    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    raw_rdd = sc.parallelize(points, 8).cache()
    raw_rdd.count()
    raw_model = LogisticRegressionWithSGD.train(raw_rdd, 20,
                                                num_iterations=15)

    scaler = StandardScaler().fit(raw_rdd, 20)
    scaled_points = [scaler.transform_point(p) for p in points]
    sc2 = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    scaled_rdd = sc2.parallelize(scaled_points, 8).cache()
    scaled_rdd.count()
    scaled_model = LogisticRegressionWithSGD.train(scaled_rdd, 20,
                                                   num_iterations=15)
    assert scaled_model.accuracy(scaled_points) >= \
        raw_model.accuracy(points)


def test_scaler_validation(dataset):
    points, _ = dataset
    _sc, rdd = make_rdd(points)
    with pytest.raises(ValueError):
        StandardScaler(aggregation="bogus")
    with pytest.raises(ValueError):
        StandardScaler().fit(rdd, 0)
