"""Tests for EM LDA: learning quality and backend equivalence."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.data import lda_corpus
from repro.ml import LDA
from repro.rdd import SparkerContext


@pytest.fixture(scope="module")
def corpus():
    docs, topics = lda_corpus(n_docs=300, vocab_size=60, n_topics=4,
                              doc_length=50, seed=21)
    return docs, topics


def fit(docs, vocab, **kwargs):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(docs, 8).cache()
    rdd.count()
    defaults = dict(k=4, num_iterations=8, seed=2)
    defaults.update(kwargs)
    return LDA(**defaults).fit(rdd, vocab), sc


def test_log_likelihood_increases(corpus):
    docs, _ = corpus
    model, _sc = fit(docs, 60, num_iterations=10)
    ll = model.log_likelihoods
    assert ll[-1] > ll[0]
    # Mostly monotone (EM guarantees non-decreasing in exact arithmetic).
    increases = sum(1 for a, b in zip(ll, ll[1:]) if b >= a - 1e-6)
    assert increases >= len(ll) - 2


def test_topics_are_distributions(corpus):
    docs, _ = corpus
    model, _sc = fit(docs, 60)
    np.testing.assert_allclose(model.topics.sum(axis=1), 1.0, rtol=1e-9)
    assert np.all(model.topics >= 0)


def test_planted_topics_recovered(corpus):
    docs, true_topics = corpus
    model, _sc = fit(docs, 60, num_iterations=15)
    learned = model.topics / np.linalg.norm(model.topics, axis=1,
                                            keepdims=True)
    planted = true_topics / np.linalg.norm(true_topics, axis=1,
                                           keepdims=True)
    similarity = learned @ planted.T
    # Each planted topic is matched by some learned topic.
    assert similarity.max(axis=0).min() > 0.8


def test_backends_identical(corpus):
    docs, _ = corpus
    tree_model, _ = fit(docs, 60, num_iterations=3, aggregation="tree")
    imm_model, _ = fit(docs, 60, num_iterations=3, aggregation="tree_imm")
    split_model, _ = fit(docs, 60, num_iterations=3, aggregation="split")
    np.testing.assert_allclose(tree_model.topics, imm_model.topics)
    np.testing.assert_allclose(tree_model.topics, split_model.topics)
    np.testing.assert_allclose(tree_model.log_likelihoods,
                               split_model.log_likelihoods)


def test_describe_topics(corpus):
    docs, _ = corpus
    model, _sc = fit(docs, 60)
    tops = model.describe_topics(max_terms=5)
    assert len(tops) == 4
    for terms in tops:
        assert len(terms) == 5
        assert all(0 <= t < 60 for t in terms)
        # Terms ordered by decreasing weight.
        weights = [model.topics[tops.index(terms), t] for t in terms]
        assert weights == sorted(weights, reverse=True)


def test_infer_returns_mixture(corpus):
    docs, _ = corpus
    model, _sc = fit(docs, 60, num_iterations=10)
    theta = model.infer(docs[0])
    assert theta.shape == (4,)
    assert theta.sum() == pytest.approx(1.0)
    assert np.all(theta >= 0)


def test_empty_documents_are_skipped(corpus):
    from repro.ml import SparseVector

    docs, _ = corpus
    padded = list(docs[:50]) + [SparseVector(60, [], [])] * 5
    model, _sc = fit(padded, 60, num_iterations=3)
    assert np.all(np.isfinite(model.topics))


def test_validation():
    with pytest.raises(ValueError):
        LDA(k=1)
    with pytest.raises(ValueError):
        LDA(num_iterations=0)
    with pytest.raises(ValueError):
        LDA(aggregation="bogus")
    sc = SparkerContext(ClusterConfig.laptop())
    rdd = sc.parallelize([], 2)
    with pytest.raises(ValueError):
        LDA().fit(rdd, 0)


def test_lda_records_driver_time(corpus):
    docs, _ = corpus
    _model, sc = fit(docs, 60, num_iterations=2)
    assert sc.stopwatch.total("ml.driver") > 0
    assert sc.stopwatch.total("ml.broadcast") > 0
