"""Tests for condition events and process interrupts."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError, all_of, any_of


def test_all_of_waits_for_every_event():
    env = Environment()
    a = env.timeout(1.0, value="a")
    b = env.timeout(3.0, value="b")

    def waiter():
        results = yield all_of(env, [a, b])
        return (env.now, results[a], results[b])

    proc = env.process(waiter())
    assert env.run(until=proc) == (3.0, "a", "b")


def test_any_of_fires_on_first():
    env = Environment()
    a = env.timeout(1.0, value="fast")
    b = env.timeout(3.0, value="slow")

    def waiter():
        results = yield any_of(env, [a, b])
        return (env.now, dict(results))

    proc = env.process(waiter())
    when, results = env.run(until=proc)
    assert when == 1.0
    assert results == {a: "fast"}


def test_all_of_empty_fires_immediately():
    env = Environment()

    def waiter():
        results = yield all_of(env, [])
        return results

    proc = env.process(waiter())
    assert env.run(until=proc) == {}
    assert env.now == 0.0


def test_all_of_propagates_child_failure():
    env = Environment()
    good = env.timeout(1.0)
    bad = env.event()

    def failer():
        yield env.timeout(0.5)
        bad.fail(RuntimeError("child failed"))

    env.process(failer())

    def waiter():
        yield all_of(env, [good, bad])

    proc = env.process(waiter())
    with pytest.raises(RuntimeError, match="child failed"):
        env.run(until=proc)


def test_all_of_many_processes():
    env = Environment()

    def worker(n):
        yield env.timeout(float(n))
        return n * n

    procs = [env.process(worker(n)) for n in range(5)]

    def joiner():
        results = yield all_of(env, procs)
        return [results[p] for p in procs]

    join = env.process(joiner())
    assert env.run(until=join) == [0, 1, 4, 9, 16]
    assert env.now == 4.0


def test_interrupt_wakes_sleeping_process():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
            return "overslept"
        except Interrupt as intr:
            return ("interrupted", env.now, intr.cause)

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(2.0)
        proc.interrupt("fault")

    env.process(killer())
    assert env.run(until=proc) == ("interrupted", 2.0, "fault")


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper():
        yield env.timeout(100.0)

    proc = env.process(sleeper())
    proc.interrupt("die")
    with pytest.raises(Interrupt):
        env.run(until=proc)


def test_interrupted_process_can_continue():
    env = Environment()

    def resilient():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    proc = env.process(resilient())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt()

    env.process(killer())
    assert env.run(until=proc) == 6.0


def test_stale_target_does_not_resume_interrupted_process():
    env = Environment()
    hits = []

    def sleeper():
        try:
            yield env.timeout(3.0)
            hits.append("timer")
        except Interrupt:
            hits.append("interrupt")
            yield env.timeout(10.0)
        return tuple(hits)

    proc = env.process(sleeper())
    proc.interrupt()
    env.run(until=proc)
    # The original 3s timer must NOT have resumed the process a second time.
    assert hits == ["interrupt"]


def test_is_alive_lifecycle():
    env = Environment()

    def body():
        yield env.timeout(1.0)

    proc = env.process(body())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive
    assert proc.ok


def test_critical_process_failure_crashes_simulation():
    env = Environment()

    def daemon():
        yield env.timeout(1.0)
        raise RuntimeError("infrastructure bug")

    env.process(daemon(), critical=True)
    with pytest.raises(RuntimeError, match="infrastructure bug"):
        env.run()


def test_non_critical_failure_is_contained():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        raise RuntimeError("task failed")

    proc = env.process(worker())
    env.run()  # does not raise; failure is held in the process event
    assert not proc.ok
    assert isinstance(proc.exception, RuntimeError)
