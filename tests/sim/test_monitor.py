"""Tests for the Stopwatch and Counter instrumentation."""

import pytest

from repro.sim import Counter, Environment, Stopwatch


def test_stopwatch_add():
    env = Environment()
    sw = Stopwatch(env)
    sw.add("x", 1.5)
    sw.add("x", 0.5)
    assert sw.total("x") == 2.0
    assert sw.total("missing") == 0.0


def test_stopwatch_rejects_negative():
    sw = Stopwatch(Environment())
    with pytest.raises(ValueError):
        sw.add("x", -1.0)


def test_stopwatch_brackets_follow_virtual_time():
    env = Environment()
    sw = Stopwatch(env)

    def body():
        sw.start("span")
        yield env.timeout(2.5)
        assert sw.stop("span") == 2.5

    env.run(until=env.process(body()))
    assert sw.total("span") == 2.5


def test_stopwatch_bracket_misuse():
    sw = Stopwatch(Environment())
    with pytest.raises(RuntimeError):
        sw.stop("never-started")
    sw.start("x")
    with pytest.raises(RuntimeError):
        sw.start("x")


def test_stopwatch_iteration_sorted():
    sw = Stopwatch(Environment())
    sw.add("b", 1.0)
    sw.add("a", 2.0)
    assert [k for k, _v in sw] == ["a", "b"]


def test_stopwatch_clear():
    sw = Stopwatch(Environment())
    sw.add("x", 1.0)
    sw.clear()
    assert sw.as_dict() == {}


def test_stopwatch_span_scope():
    env = Environment()
    sw = Stopwatch(env)

    def body():
        with sw.span("scoped"):
            yield env.timeout(1.25)

    env.run(until=env.process(body()))
    assert sw.total("scoped") == 1.25


def test_stopwatch_span_records_on_exception():
    """Unlike start/stop, span closes the bracket when the body raises."""
    env = Environment()
    sw = Stopwatch(env)

    def body():
        try:
            with sw.span("doomed"):
                yield env.timeout(0.75)
                raise RuntimeError("boom")
        except RuntimeError:
            yield env.timeout(0.0)

    env.run(until=env.process(body()))
    assert sw.total("doomed") == 0.75


def test_on_record_fires_for_every_recording_style():
    env = Environment()
    seen = []
    sw = Stopwatch(env, on_record=lambda k, s, now: seen.append((k, s, now)))
    sw.add("a", 1.0)

    def body():
        sw.start("b")
        yield env.timeout(2.0)
        sw.stop("b")
        with sw.span("c"):
            yield env.timeout(3.0)

    env.run(until=env.process(body()))
    assert seen == [("a", 1.0, 0.0), ("b", 2.0, 2.0), ("c", 3.0, 5.0)]


def test_counter():
    c = Counter()
    c.add("messages")
    c.add("messages", 2)
    c.add("bytes", 100.5)
    assert c.total("messages") == 3
    assert c.total("bytes") == 100.5
    assert c.total("none") == 0.0
    c.clear()
    assert c.as_dict() == {}
