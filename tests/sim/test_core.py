"""Unit tests for the simulation environment and event loop."""

import pytest

from repro.sim import EmptySchedule, Environment, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_run_until_time_stops_exactly():
    env = Environment()
    env.timeout(1.0)
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_past_raises():
    env = Environment()
    env.timeout(3.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_process_returns_value():
    env = Environment()

    def body():
        yield env.timeout(1.0)
        return 42

    proc = env.process(body())
    result = env.run(until=proc)
    assert result == 42
    assert env.now == 1.0


def test_process_exception_propagates_through_run():
    env = Environment()

    def body():
        yield env.timeout(1.0)
        raise ValueError("boom")

    proc = env.process(body())
    with pytest.raises(ValueError, match="boom"):
        env.run(until=proc)


def test_yield_on_process_joins():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return "done"

    def parent():
        value = yield env.process(child())
        return (env.now, value)

    proc = env.process(parent())
    assert env.run(until=proc) == (3.0, "done")


def test_yield_non_event_fails_process():
    env = Environment()

    def body():
        yield 17  # not an event

    proc = env.process(body())
    with pytest.raises(SimulationError, match="non-event"):
        env.run(until=proc)


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def make(tag):
        def body():
            yield env.timeout(1.0)
            order.append(tag)
        return body

    for tag in range(10):
        env.process(make(tag)())
    env.run()
    assert order == list(range(10))


def test_event_succeed_value():
    env = Environment()
    trigger = env.event()

    def waiter():
        value = yield trigger
        return value

    proc = env.process(waiter())

    def firer():
        yield env.timeout(2.0)
        trigger.succeed("payload")

    env.process(firer())
    assert env.run(until=proc) == "payload"
    assert env.now == 2.0


def test_event_fail_raises_in_waiter():
    env = Environment()
    trigger = env.event()

    def waiter():
        try:
            yield trigger
        except RuntimeError as exc:
            return f"caught:{exc}"

    proc = env.process(waiter())
    trigger.fail(RuntimeError("bad"))
    assert env.run(until=proc) == "caught:bad"


def test_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_waiting_on_already_processed_event():
    env = Environment()
    ev = env.timeout(1.0, value="early")
    env.run()

    def late_waiter():
        value = yield ev
        return value

    proc = env.process(late_waiter())
    assert env.run(until=proc) == "early"


def test_run_until_event_from_dry_schedule_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(EmptySchedule):
        env.run(until=never)


def test_value_of_pending_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_active_process_visible_during_step():
    env = Environment()
    seen = []

    def body():
        seen.append(env.active_process)
        yield env.timeout(0.0)
        seen.append(env.active_process)

    proc = env.process(body())
    env.run()
    assert seen == [proc, proc]
    assert env.active_process is None


def test_nested_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(tag, delay):
        yield env.timeout(delay)
        log.append((env.now, tag))
        yield env.timeout(delay)
        log.append((env.now, tag))

    env.process(worker("a", 1.0))
    env.process(worker("b", 1.5))
    env.run()
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b")]


def test_timeout_value_passthrough():
    env = Environment()

    def body():
        got = yield env.timeout(1.0, value="v")
        return got

    proc = env.process(body())
    assert env.run(until=proc) == "v"


def test_process_body_must_be_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_run_until_processed_event_returns_immediately():
    env = Environment()
    early = env.timeout(1.0, value="done")
    env.timeout(10.0)  # later work that must NOT be drained
    env.run(until=early)
    assert env.now == 1.0
    # A second run() on the already-processed event is a pure read: it
    # returns the value without popping anything off the queue.
    assert env.run(until=early) == "done"
    assert env.now == 1.0
    assert env.peek() == 10.0


def test_run_until_detaches_mark_callback_on_dry_schedule():
    env = Environment()
    never = env.event()
    with pytest.raises(EmptySchedule):
        env.run(until=never)
    # The aborted run() must not leave its completion hook behind: a
    # retry would otherwise fire stale closures.
    assert never.callbacks == []


def test_events_scheduled_counts_monotonically():
    env = Environment()
    base = env.events_scheduled
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.events_scheduled == base + 2
    env.run()
    assert env.events_scheduled == base + 2
