"""BucketCalendar vs the heapq reference: identical total order.

The calendar replaced the kernel's ``(time, priority, seq)`` binary heap;
every simulation's bit-identity now rests on it reproducing the heap's
pop order exactly — time ascending, priority ascending within a time,
FIFO within a (time, priority) band — including while pushes and pops
interleave. These tests drive both structures through randomized seeded
schedules and assert the orders match element-for-element.
"""

import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import BucketCalendar


class HeapReference:
    """The old kernel queue: a heap of ``(time, priority, seq, item)``."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def push(self, when, priority, item):
        self._seq += 1
        heapq.heappush(self._heap, (when, priority, self._seq, item))

    def pop(self):
        when, _prio, _seq, item = heapq.heappop(self._heap)
        return when, item

    def peek(self):
        return self._heap[0][0]

    def __len__(self):
        return len(self._heap)


def drive(ops):
    """Run ``ops`` against both queues, returning both pop streams.

    ``ops`` is a list of either ``(when, priority, item)`` pushes or
    ``None`` for a pop (ignored while empty). Both queues are fully
    drained at the end.
    """
    cal, ref = BucketCalendar(), HeapReference()
    got, expected = [], []
    for op in ops:
        if op is None:
            if len(ref):
                expected.append(ref.pop())
                got.append(cal.pop())
        else:
            when, priority, item = op
            cal.push(when, priority, item)
            ref.push(when, priority, item)
        assert len(cal) == len(ref)
    while len(ref):
        expected.append(ref.pop())
        got.append(cal.pop())
    return got, expected


@st.composite
def schedules(draw):
    """Interleaved push/pop streams with heavily clustered timestamps."""
    # A small time universe forces same-instant collisions (the whole
    # point of the bucket representation) ...
    times = draw(st.lists(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8))
    n = draw(st.integers(min_value=1, max_value=200))
    ops = []
    for i in range(n):
        if draw(st.booleans()) and i > 0:
            ops.append(None)  # pop
        when = draw(st.sampled_from(times))
        priority = draw(st.sampled_from([0, 1, 2]))
        ops.append((when, priority, i))
    return ops


@settings(max_examples=200, deadline=None)
@given(schedules())
def test_matches_heap_reference(ops):
    got, expected = drive(ops)
    assert got == expected


@pytest.mark.parametrize("seed", range(8))
def test_randomized_seeded_schedules(seed):
    """Large seeded schedules exercising every bucket escalation path."""
    rng = random.Random(seed)
    times = [rng.uniform(0.0, 50.0) for _ in range(40)]
    ops = []
    for i in range(5000):
        if rng.random() < 0.45:
            ops.append(None)
        ops.append((rng.choice(times),
                    rng.choice([0, 1, 1, 1, 1, 1, 1, 2]),  # NORMAL-heavy
                    i))
    got, expected = drive(ops)
    assert got == expected


def test_fifo_within_priority_band():
    cal = BucketCalendar()
    for i in range(5):
        cal.push(1.0, 1, i)
    assert [cal.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_priority_bands_within_one_instant():
    cal = BucketCalendar()
    cal.push(2.0, 2, "lazy-a")
    cal.push(2.0, 1, "normal-a")
    cal.push(2.0, 0, "urgent")
    cal.push(2.0, 1, "normal-b")
    cal.push(2.0, 2, "lazy-b")
    order = [cal.pop()[1] for _ in range(5)]
    assert order == ["urgent", "normal-a", "normal-b", "lazy-a", "lazy-b"]


def test_push_while_draining_same_instant():
    # Zero-delay schedules land in the bucket currently being drained.
    cal = BucketCalendar()
    cal.push(1.0, 1, "a")
    cal.push(1.0, 1, "b")
    assert cal.pop() == (1.0, "a")
    cal.push(1.0, 1, "c")
    assert cal.pop() == (1.0, "b")
    assert cal.pop() == (1.0, "c")
    # ... and a re-push after the bucket drained re-registers the time.
    cal.push(1.0, 1, "d")
    assert cal.pop() == (1.0, "d")
    assert not cal


def test_peek_and_len():
    cal = BucketCalendar()
    assert not cal and len(cal) == 0
    cal.push(3.0, 1, "x")
    cal.push(1.0, 1, "y")
    assert cal.peek() == 1.0
    assert len(cal) == 2
    assert cal.pop() == (1.0, "y")
    assert cal.peek() == 3.0
