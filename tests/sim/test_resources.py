"""Tests for Resource, CapacityPool and Store."""

import pytest

from repro.sim import CapacityPool, Environment, Resource, Store


# ---------------------------------------------------------------- Resource
def test_resource_limits_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    finish_times = []

    def worker(_n):
        yield res.acquire()
        try:
            yield env.timeout(1.0)
        finally:
            res.release()
        finish_times.append(env.now)

    for n in range(4):
        env.process(worker(n))
    env.run()
    # 4 unit-time jobs on 2 slots: two waves.
    assert finish_times == [1.0, 1.0, 2.0, 2.0]


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(tag):
        yield res.acquire()
        order.append(tag)
        yield env.timeout(1.0)
        res.release()

    for tag in "abcd":
        env.process(worker(tag))
    env.run()
    assert order == list("abcd")


def test_resource_use_helper():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker():
        yield from res.use(2.0)
        return env.now

    p1 = env.process(worker())
    p2 = env.process(worker())
    env.run()
    assert p1.value == 2.0
    assert p2.value == 4.0


def test_resource_release_without_acquire_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=3, name="slots")
    env.run(until=res.acquire())
    assert res.in_use == 1
    assert res.available == 2
    res.release()
    assert res.in_use == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


# ------------------------------------------------------------ CapacityPool
def test_pool_shares_up_to_capacity():
    env = Environment()
    pool = CapacityPool(env, capacity=10.0)
    done = []

    def flow(rate, duration, tag):
        yield from pool.transfer(rate, duration)
        done.append((env.now, tag))

    # Two flows of 5 tokens fit concurrently; a third queues.
    env.process(flow(5.0, 1.0, "a"))
    env.process(flow(5.0, 1.0, "b"))
    env.process(flow(5.0, 1.0, "c"))
    env.run()
    assert done == [(1.0, "a"), (1.0, "b"), (2.0, "c")]


def test_pool_clamps_oversized_request():
    env = Environment()
    pool = CapacityPool(env, capacity=4.0)

    def flow():
        granted = yield pool.acquire(100.0)
        assert granted == 4.0
        pool.release(granted)
        return granted

    proc = env.process(flow())
    assert env.run(until=proc) == 4.0
    assert pool.level == 4.0


def test_pool_fifo_no_starvation():
    env = Environment()
    pool = CapacityPool(env, capacity=10.0)
    order = []

    def hog():
        granted = yield pool.acquire(10.0)
        yield env.timeout(1.0)
        pool.release(granted)
        order.append("hog")

    def big_then_small():
        # Big request queues first; the small one must NOT jump the queue.
        def big():
            granted = yield pool.acquire(8.0)
            order.append("big")
            pool.release(granted)

        def small():
            granted = yield pool.acquire(1.0)
            order.append("small")
            pool.release(granted)

        env.process(big())
        yield env.timeout(0.0)
        env.process(small())

    env.process(hog())
    env.process(big_then_small())
    env.run()
    assert order == ["hog", "big", "small"]


def test_pool_over_release_detected():
    env = Environment()
    pool = CapacityPool(env, capacity=2.0)
    with pytest.raises(RuntimeError):
        pool.release(1.0)


def test_pool_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CapacityPool(env, capacity=0.0)
    pool = CapacityPool(env, capacity=1.0)
    with pytest.raises(ValueError):
        pool.acquire(-1.0)


def test_pool_float_rounding_tolerated():
    env = Environment()
    pool = CapacityPool(env, capacity=1.0)

    def flow():
        for _ in range(100):
            granted = yield pool.acquire(0.1)
            pool.release(granted)
        granted = yield pool.acquire(1.0)  # must still fit after churn
        pool.release(granted)
        return True

    proc = env.process(flow())
    assert env.run(until=proc) is True


# ------------------------------------------------------------------- Store
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    got = []

    def getter():
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(getter())
    env.run()
    assert got == [1, 2]


def test_store_blocking_get():
    env = Environment()
    store = Store(env)

    def getter():
        item = yield store.get()
        return (env.now, item)

    proc = env.process(getter())

    def putter():
        yield env.timeout(2.0)
        store.put("late")

    env.process(putter())
    assert env.run(until=proc) == (2.0, "late")


def test_store_multiple_blocked_getters_fifo():
    env = Environment()
    store = Store(env)
    results = []

    def getter(tag):
        item = yield store.get()
        results.append((tag, item))

    env.process(getter("g1"))
    env.process(getter("g2"))

    def putter():
        yield env.timeout(1.0)
        store.put("x")
        store.put("y")

    env.process(putter())
    env.run()
    assert results == [("g1", "x"), ("g2", "y")]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put(7)
    assert store.try_get() == 7
    assert len(store) == 0


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.items == ("a", "b")
