"""Fault-tolerant pipelined ring: the chaos matrix and the downgrade path.

Contract (ISSUE PR 9 tentpole): with a recovery policy armed, the
overlapped ``collective="pipelined_ring"`` path must survive every fault
class the plan vocabulary can express — crash before the ring, crash
mid-ring, link faults surfacing as recv timeouts, stragglers — and still
produce a result *bitwise identical* to the fault-free phased ring. A
lost stream downgrades to the phased detect/recompute/rebuild loop,
announced once on the warning stream and every time on the event bus.
"""

import warnings

import numpy as np
import pytest

from .conftest import expected_sum, run_split_agg
from repro.core import sai
from repro.faults import (
    AtRingHop,
    AtStageBoundary,
    ExecutorCrash,
    FaultPlan,
    MessageDrop,
    RecoveryPolicy,
    Straggler,
)
from repro.obs import ChunkStream, CollectiveDowngraded, RecoveryAction

RECOVERY = RecoveryPolicy(recv_timeout=0.25, max_ring_attempts=3)

PLAN_CLASSES = ["crash_before_ring", "crash_mid_ring", "message_drop",
                "straggler"]


def plan_for(kind: str, num_nodes: int) -> FaultPlan:
    victim = min(1, num_nodes - 1)
    if kind == "crash_before_ring":
        return FaultPlan(faults=(ExecutorCrash(
            executor_id=victim,
            trigger=AtStageBoundary("reduced_result", "completed")),))
    if kind == "crash_mid_ring":
        return FaultPlan(faults=(ExecutorCrash(
            executor_id=victim, trigger=AtRingHop(1)),))
    if kind == "message_drop":
        return FaultPlan(faults=(MessageDrop(count=2, skip=3),))
    if kind == "straggler":
        return FaultPlan(faults=(Straggler(executor_id=victim,
                                           factor=4.0),))
    raise ValueError(kind)


# ------------------------------------------------------------ chaos matrix
@pytest.mark.parametrize("parallelism", [1, 2, 4])
@pytest.mark.parametrize("num_nodes", [2, 3, 5, 8])
@pytest.mark.parametrize("kind", PLAN_CLASSES)
def test_pipelined_bitwise_under_chaos(kind, num_nodes, parallelism):
    """Every plan class, at every topology size and ring parallelism,
    must recover to the exact fault-free sum."""
    run = run_split_agg(plan=plan_for(kind, num_nodes), recovery=RECOVERY,
                        num_nodes=num_nodes, parallelism=parallelism,
                        collective="pipelined_ring")
    np.testing.assert_array_equal(run.result, expected_sum())


@pytest.mark.parametrize("kind", ["crash_before_ring", "crash_mid_ring"])
def test_crash_downgrades_then_recovers(kind):
    """A crash aborts the stream: the recovery record must show the
    streamed abort followed by the phased loop's recompute/rebuild."""
    run = run_split_agg(plan=plan_for(kind, 4), recovery=RECOVERY,
                        collective="pipelined_ring")
    np.testing.assert_array_equal(run.result, expected_sum())
    assert run.action_names[0] == "streamed_abort"
    assert "recovered" in run.action_names
    assert len(run.injected) == 1


def test_link_fault_salvages_via_ledger():
    """Dropped messages time out the recv: the stream aborts, but the
    rebuild runs over the *same* holders and epoch, so the chunk ledger
    replays acknowledged columns instead of recomputing anything."""
    run = run_split_agg(plan=plan_for("message_drop", 4), recovery=RECOVERY,
                        collective="pipelined_ring")
    np.testing.assert_array_equal(run.result, expected_sum())
    assert "streamed_abort" in run.action_names
    # no executor died: nothing to recompute through lineage
    assert "partial_recompute" not in run.action_names


# ------------------------------------------------------- zero-perturbation
def test_armed_unfaulted_matches_clean_pipelined():
    """A recovery policy with no injected faults must not change the
    streamed path's result *or* its virtual timing."""
    clean = run_split_agg(collective="pipelined_ring")
    armed = run_split_agg(plan=FaultPlan(), recovery=RECOVERY,
                          collective="pipelined_ring")
    np.testing.assert_array_equal(armed.result, clean.result)
    assert armed.now == clean.now
    assert armed.action_names == []


def test_faulted_pipelined_matches_seed_phased_ring():
    """The recovered pipelined result is bitwise the seed ring's result,
    not merely numerically close."""
    seed = run_split_agg()
    run = run_split_agg(plan=plan_for("crash_mid_ring", 4),
                        recovery=RECOVERY, collective="pipelined_ring")
    assert run.result.tobytes() == seed.result.tobytes()


# -------------------------------------------------------------- small chunks
@pytest.mark.parametrize("kind", ["crash_mid_ring", "message_drop"])
def test_chunked_stream_recovers(kind):
    """Multi-column chunking (several sub-rings per channel) must fence
    and replay per column, still bitwise."""
    run = run_split_agg(plan=plan_for(kind, 4), recovery=RECOVERY,
                        collective="pipelined_ring", chunk_bytes=64.0)
    np.testing.assert_array_equal(run.result, expected_sum())


# ------------------------------------------------------------- observability
def _events_for(kind):
    from repro.cluster import ClusterConfig
    from repro.rdd import SparkerContext

    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    events = []
    sc.event_bus.subscribe(events.append)
    run = run_split_agg(plan=plan_for(kind, 4), recovery=RECOVERY, sc=sc,
                        collective="pipelined_ring")
    return run, events


def test_downgrade_emits_event_and_action():
    run, events = _events_for("crash_mid_ring")
    np.testing.assert_array_equal(run.result, expected_sum())
    downgrades = [e for e in events if isinstance(e, CollectiveDowngraded)]
    assert len(downgrades) == 1
    (event,) = downgrades
    assert event.requested == "pipelined_ring"
    assert event.actual == "ring"
    assert event.reason == "streamed_abort"
    assert "died mid-stream" in event.detail
    aborts = [e for e in events if isinstance(e, RecoveryAction)
              and e.action == "streamed_abort"]
    assert len(aborts) == 1 and aborts[0].site == "pipelined"
    # the stream really started before it was torn down
    assert any(isinstance(e, ChunkStream) for e in events)


def test_downgrade_warns_once_per_reason():
    sai._downgrade_warned.clear()
    with pytest.warns(RuntimeWarning, match="downgraded to the phased"):
        run_split_agg(plan=plan_for("crash_mid_ring", 4), recovery=RECOVERY,
                      collective="pipelined_ring")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run = run_split_agg(plan=plan_for("crash_mid_ring", 4),
                            recovery=RECOVERY,
                            collective="pipelined_ring")
    np.testing.assert_array_equal(run.result, expected_sum())


# -------------------------------------------------------------- determinism
def test_chaos_run_is_reproducible():
    """Same plan, same seed: identical result, timing, and recovery log."""
    runs = [run_split_agg(plan=plan_for("crash_mid_ring", 5),
                          recovery=RECOVERY, num_nodes=5,
                          collective="pipelined_ring")
            for _ in range(2)]
    assert runs[0].result.tobytes() == runs[1].result.tobytes()
    assert runs[0].now == runs[1].now
    assert runs[0].action_names == runs[1].action_names
