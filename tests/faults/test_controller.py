"""FaultController mechanics: arming, triggers, windows, link faults."""

import pytest

from repro.comm import CommFabric, sc_transport
from repro.comm.fabric import RecvTimeout
from repro.faults import (
    AtRingHop,
    AtStageBoundary,
    AtTime,
    DriverNicDegradation,
    ExecutorCrash,
    FaultController,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    Straggler,
)

from .conftest import make_context, run_split_agg


def test_arm_attaches_and_disarm_detaches():
    sc = make_context()
    controller = FaultController(sc, FaultPlan())
    assert sc.faults is None
    controller.arm()
    assert sc.faults is controller
    controller.disarm()
    assert sc.faults is None


def test_double_arm_rejected():
    sc = make_context()
    controller = FaultController(sc, FaultPlan()).arm()
    with pytest.raises(RuntimeError):
        controller.arm()
    with pytest.raises(RuntimeError):
        FaultController(sc, FaultPlan()).arm()


def test_timed_crash_kills_at_the_planned_instant():
    sc = make_context()
    eid = sc.executors[0].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(eid, AtTime(0.25)),))
    controller = FaultController(sc, plan).arm()
    sc.env.run(until=0.3)
    assert not sc.executor_by_id(eid).alive
    assert len(controller.injected) == 1
    fault = controller.injected[0]
    assert fault.fault == "executor_crash"
    assert fault.trigger == "at_time"
    assert fault.executor_id == eid
    assert fault.time == pytest.approx(0.25)


def test_stage_boundary_crash_fires_on_matching_edge():
    sc = make_context()
    eid = sc.executors[-1].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(
        eid, AtStageBoundary(stage_kind="result", edge="completed")),))
    FaultController(sc, plan).arm()
    assert sc.parallelize(range(20), 4).count() == 20
    assert not sc.executor_by_id(eid).alive


def test_ring_hop_crash_records_hop_detail(baseline):
    sc = make_context()
    eid = sc.executors[2].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(eid, AtRingHop(1)),))
    run = run_split_agg(plan=plan)
    assert run.injected[0].trigger == "ring_hop"
    assert "hop 1" in run.injected[0].detail
    # sc above is a probe for ids only; the run uses its own context.
    assert run.result is not None


def test_straggler_window_scales_and_restores():
    sc = make_context()
    executor = sc.executors[0]
    plan = FaultPlan(faults=(Straggler(
        executor.executor_id, factor=8.0, start=0.1, duration=0.2),))
    controller = FaultController(sc, plan).arm()
    sc.env.run(until=0.2)
    assert executor.compute_scale == 8.0
    sc.env.run(until=0.4)
    assert executor.compute_scale == 1.0
    kinds = [f.fault for f in controller.injected]
    assert kinds == ["straggler", "straggler_end"]


def test_straggler_slows_the_workload_down():
    fast = run_split_agg()
    eids = [e.executor_id for e in make_context().executors]
    plans = FaultPlan(faults=tuple(
        Straggler(eid, factor=50.0, start=0.0) for eid in eids))
    slow = run_split_agg(plan=plans)
    assert slow.now > fast.now


def test_nic_window_degrades_and_restores_capacity():
    sc = make_context()
    driver = sc.cluster.driver_node
    base_in = driver.nic_in.capacity
    base_out = driver.nic_out.capacity
    plan = FaultPlan(faults=(DriverNicDegradation(
        factor=0.5, start=0.05, duration=0.1),))
    controller = FaultController(sc, plan).arm()
    sc.env.run(until=0.1)
    assert driver.nic_in.capacity == pytest.approx(base_in * 0.5)
    assert driver.nic_out.capacity == pytest.approx(base_out * 0.5)
    sc.env.run(until=0.2)
    assert driver.nic_in.capacity == pytest.approx(base_in)
    assert driver.nic_out.capacity == pytest.approx(base_out)
    kinds = [f.fault for f in controller.injected]
    assert kinds == ["nic_degradation", "nic_restored"]


def test_message_fault_skip_then_count():
    sc = make_context()
    plan = FaultPlan(faults=(MessageDrop(skip=2, count=1),))
    controller = FaultController(sc, plan).arm()
    fates = [controller.message_fault(0, 1, "ring/0", hop, 100.0)
             for hop in range(4)]
    assert fates == [None, None, ("drop", 0.0), None]
    assert len(controller.injected) == 1
    assert controller.injected[0].fault == "message_drop"


def test_message_fault_filters_src_dst_channel():
    sc = make_context()
    plan = FaultPlan(faults=(MessageDelay(
        delay=0.05, src=1, dst=2, channel="ring/0", count=5),))
    controller = FaultController(sc, plan).arm()
    assert controller.message_fault(0, 2, "ring/0", 0, 10.0) is None
    assert controller.message_fault(1, 3, "ring/0", 0, 10.0) is None
    assert controller.message_fault(1, 2, "ring/1", 0, 10.0) is None
    assert controller.message_fault(1, 2, "ring/0", 0, 10.0) == \
        ("delay", 0.05)


def _fabric_pair(plan):
    sc = make_context(num_nodes=2)
    controller = FaultController(sc, plan).arm()
    fabric = CommFabric(sc.cluster.network,
                        sc_transport(sc.cluster.config), faults=controller)
    fabric.register(0, sc.cluster.nodes[0])
    fabric.register(1, sc.cluster.nodes[1])
    return sc, controller, fabric


def test_fabric_drop_starves_receiver_into_timeout():
    sc, controller, fabric = _fabric_pair(
        FaultPlan(faults=(MessageDrop(count=1),)))

    def sender():
        yield from fabric.send(0, 1, "doomed", tag="t")

    def receiver():
        with pytest.raises(RecvTimeout):
            yield from fabric.recv(1, tag="t", timeout=0.05)
        return "timed out"

    sc.env.process(sender())
    proc = sc.env.process(receiver())
    assert sc.env.run(until=proc) == "timed out"
    assert fabric.dropped == 1
    assert fabric.delivered == 0
    assert controller.injected[0].fault == "message_drop"


def test_fabric_delay_postpones_delivery():
    plan = FaultPlan(faults=(MessageDelay(delay=0.2, count=1),))
    sc, controller, fabric = _fabric_pair(plan)

    def sender():
        yield from fabric.send(0, 1, "late", tag="t")

    def receiver():
        msg = yield from fabric.recv(1, tag="t")
        return msg, sc.env.now

    sc.env.process(sender())
    proc = sc.env.process(receiver())
    msg, arrived = sc.env.run(until=proc)
    assert msg == "late"
    assert arrived >= 0.2
    assert controller.injected[0].fault == "message_delay"
