"""Shared-memory lifecycle under chaos: no leaked segments, ever.

The host pool ships NumPy memo payloads through named
``multiprocessing.shared_memory`` segments. The lifecycle contract
(DESIGN.md §13): the driver unlinks each segment the moment it attaches,
orphans of workers that died before their frame landed are reaped by
deterministic name, and an atexit sweep releases whatever mappings the
simulation still pinned. These tests assert the observable half of that
contract — ``/dev/shm`` holds no ``sparker_hp_*`` entries after pooled
runs, including runs whose simulated executors crash mid-stage.
"""

import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.faults import AtTime, ExecutorCrash, FaultController, FaultPlan
from repro.rdd import SparkerContext
from repro.rdd.hostpool import (HostPool, _live_segments, _reap_orphan,
                                _segment_name, _shared_memory,
                                _sweep_segments)

pytestmark = pytest.mark.skipif(
    _shared_memory is None or not hasattr(os, "fork"),
    reason="shared memory or fork unavailable")


def leaked_segments():
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir(shm_dir) if f.startswith("sparker_hp_")]


def run_job(host_pool, plan=None):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2),
                        host_pool=host_pool)
    if plan is not None:
        FaultController(sc, plan).arm()
    data = np.arange(256, dtype=np.float64)
    result = (sc.parallelize(data, 8)
              .map(lambda x: np.full(1024, x))  # >4KiB: rides shared memory
              .reduce(lambda a, b: a + b))
    stage = sc.dag.stage_log[0]
    window = (stage.submitted_at, stage.finished_at)
    sc.stop()
    return result, window


def test_forked_pool_leaves_no_segments():
    expected, _ = run_job(None)
    result, _ = run_job(HostPool(2, mode="fork"))
    assert result.tobytes() == expected.tobytes()
    assert leaked_segments() == []


def test_crashed_executor_chaos_leaves_no_segments():
    expected, (began, ended) = run_job(None)
    plan = FaultPlan(faults=(ExecutorCrash(
        0, AtTime(began + 0.5 * (ended - began))),))
    result, _ = run_job(HostPool(2, mode="fork"), plan)
    assert result.tobytes() == expected.tobytes()
    assert leaked_segments() == []
    # Whatever mappings the run pinned, the sweep releases (or parks
    # only entries whose arrays the simulation still references).
    _sweep_segments()
    assert leaked_segments() == []


def test_reap_orphan_of_dead_worker():
    # A worker that dies between creating its segment and flushing the
    # frame leaves a named orphan; the driver reaps it by its
    # deterministic name.
    pid, index = os.getpid(), 987654
    seg = _shared_memory.SharedMemory(
        name=_segment_name(pid, index), create=True, size=4096)
    seg.close()
    assert _segment_name(pid, index) in leaked_segments()
    _reap_orphan(pid, index)
    assert _segment_name(pid, index) not in leaked_segments()
    # Reaping a name that never existed is a no-op.
    _reap_orphan(pid, index)


def test_sweep_releases_consumed_mappings():
    import gc

    run_job(HostPool(2, mode="fork"))
    # Once the job's arrays are garbage (the context is stopped and the
    # result dropped; collect() clears scheduler reference cycles), the
    # sweep must release every mapping this job parked.
    gc.collect()
    _sweep_segments()
    assert len(_live_segments) == 0
    assert leaked_segments() == []
