"""Executor health: scoring, quarantine windows, probation, backoff."""

import pytest

from repro.faults import ExecutorHealthRegistry, HealthPolicy
from repro.obs import ExecutorHealth

from .conftest import make_context


def advance(sc, seconds):
    sc.env.run(until=sc.env.timeout(seconds))


@pytest.fixture
def sc():
    return make_context(num_nodes=2)


# ----------------------------------------------------------------- scoring
def test_fresh_registry_is_all_healthy(sc):
    health = sc.health
    for executor in sc.executors:
        eid = executor.executor_id
        assert health.score(eid) == 0.0
        assert health.strikes(eid) == 0
        assert not health.is_quarantined(eid)
        assert health.is_available(eid)
        assert health.compute_penalty(eid) == 1.0


def test_failures_accumulate_weighted_score(sc):
    policy = HealthPolicy(failure_weight=1.0, straggle_weight=0.5,
                          quarantine_threshold=10.0)
    health = ExecutorHealthRegistry(sc, policy)
    health.record_failure(0)
    health.record_straggle(0)
    assert health.score(0) == 1.5
    assert health.strikes(0) == 2


def test_success_decays_score(sc):
    health = ExecutorHealthRegistry(sc, HealthPolicy(
        quarantine_threshold=10.0, success_decay=0.5))
    health.record_failure(0)
    health.record_success(0)
    assert health.score(0) == 0.5


# -------------------------------------------------------------- quarantine
def test_threshold_quarantines_and_window_expires(sc):
    health = sc.health  # defaults: threshold 2.0, base window 5.0
    health.record_failure(0)
    assert not health.is_quarantined(0)
    health.record_failure(0)
    assert health.is_quarantined(0)
    assert not health.is_available(0)
    advance(sc, 5.0)
    assert not health.is_quarantined(0)
    assert health.on_probation(0)
    assert health.is_available(0)


def test_requarantine_window_grows_exponentially(sc):
    health = sc.health
    health.record_failure(0)
    health.record_failure(0)  # 1st quarantine: 5s
    advance(sc, 5.0)
    assert health.on_probation(0)
    health.record_failure(0)  # probation strike: 2nd quarantine, 10s
    assert health.is_quarantined(0)
    advance(sc, 9.0)
    assert health.is_quarantined(0)
    advance(sc, 1.0)
    assert not health.is_quarantined(0)


def test_quarantine_window_caps_at_max(sc):
    health = ExecutorHealthRegistry(sc, HealthPolicy(
        base_quarantine=5.0, backoff_factor=10.0, max_quarantine=12.0))
    for round_ in range(2):
        health.record_failure(0)
        health.record_failure(0)
        until = health._quarantined_until[0]
        window = until - sc.env.now
        assert window == (5.0 if round_ == 0 else 12.0)
        advance(sc, window)
        assert not health.is_quarantined(0)


def test_probation_success_clears_record(sc):
    health = sc.health
    health.record_failure(0)
    health.record_failure(0)
    advance(sc, 5.0)
    assert health.on_probation(0)
    health.record_success(0)
    assert not health.on_probation(0)
    assert health.score(0) == 0.0
    assert health.strikes(0) == 0


# ----------------------------------------------------------------- backoff
def test_retry_delay_disabled_by_default(sc):
    assert sc.health.retry_delay(3) == 0.0


def test_retry_delay_grows_exponentially(sc):
    health = ExecutorHealthRegistry(sc, HealthPolicy(
        retry_backoff=0.5, backoff_factor=2.0))
    assert health.retry_delay(0) == 0.0
    assert health.retry_delay(1) == 0.5
    assert health.retry_delay(2) == 1.0
    assert health.retry_delay(3) == 2.0


# -------------------------------------------------------------- cost model
def test_compute_penalty_prices_degradation(sc):
    health = sc.health
    sc.executor_by_id(0).compute_scale = 4.0
    assert health.compute_penalty(0) == 4.0
    health.record_failure(0)
    assert health.compute_penalty(0) == 4.0 * 2.0  # scale * (1 + score)
    assert health.compute_penalty(1) == 1.0
    assert health.compute_penalty(999) == 1.0  # unknown: neutral


def test_dead_executor_unavailable(sc):
    sc.kill_executor(0)
    assert not sc.health.is_available(0)
    assert not sc.health.is_available(999)


# ----------------------------------------------------------------- events
def test_health_events_on_the_bus(sc):
    events = []
    sc.event_bus.subscribe(events.append)
    health = sc.health
    health.record_failure(0)
    health.record_failure(0)
    advance(sc, 5.0)
    health.is_quarantined(0)  # expiry -> probation event
    health.record_success(0)
    statuses = [e.status for e in events if isinstance(e, ExecutorHealth)]
    assert statuses == ["failure", "failure", "quarantined", "probation",
                       "cleared"]
    quarantined = next(e for e in events if isinstance(e, ExecutorHealth)
                       and e.status == "quarantined")
    assert quarantined.until == 5.0
    assert quarantined.score == 2.0


# ------------------------------------------------------------- validation
def test_policy_validation():
    with pytest.raises(ValueError, match="weights"):
        HealthPolicy(failure_weight=-1.0)
    with pytest.raises(ValueError, match="quarantine_threshold"):
        HealthPolicy(quarantine_threshold=0.0)
    with pytest.raises(ValueError, match="base_quarantine"):
        HealthPolicy(base_quarantine=0.0)
    with pytest.raises(ValueError, match="backoff_factor"):
        HealthPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError, match="max_quarantine"):
        HealthPolicy(base_quarantine=10.0, max_quarantine=5.0)
    with pytest.raises(ValueError, match="success_decay"):
        HealthPolicy(success_decay=1.5)
    with pytest.raises(ValueError, match="retry_backoff"):
        HealthPolicy(retry_backoff=-0.1)


# ------------------------------------------------------------- scheduling
def test_quarantined_executor_skipped_until_no_choice(sc):
    """Placement avoids quarantined executors while healthy peers exist,
    but still uses them rather than failing the job outright."""
    health = sc.health
    health.record_failure(0)
    health.record_failure(0)
    assert health.is_quarantined(0)
    assert sc.parallelize(range(16), 4).count() == 16
    assert sc.executor_by_id(0).tasks_run == 0
    # quarantine every executor: the job must still run somewhere
    for executor in sc.executors:
        health.record_failure(executor.executor_id)
        health.record_failure(executor.executor_id)
    assert sc.parallelize(range(8), 2).count() == 8
