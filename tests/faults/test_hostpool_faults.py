"""Host-pool x fault-injection regression (memo keys vs retries).

The host pool memoizes task bodies under a key that includes the task
attempt and the executor id. A mid-stage executor crash strands the dead
executor's memos: the retried attempts land on other executors with a
bumped attempt counter, *miss* by construction, and must fall back to
inline execution — never replay a memo computed for the dead placement.
"""

import numpy as np

from repro.cluster import ClusterConfig
from repro.faults import AtTime, ExecutorCrash, FaultController, FaultPlan
from repro.rdd import SparkerContext
from repro.rdd.hostpool import HostPool


def run_job(host_pool, plan=None):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2),
                        host_pool=host_pool)
    if plan is not None:
        FaultController(sc, plan).arm()
    data = np.arange(64, dtype=np.float64)
    result = (sc.parallelize(data, 8)
              .map(lambda x: np.float64(x) * 2.0)
              .reduce(lambda a, b: a + b))
    stage = sc.dag.stage_log[0]
    window = (stage.submitted_at, stage.finished_at)
    sc.stop()
    return result, window


def test_crash_mid_stage_falls_back_to_inline():
    expected, (began, ended) = run_job(None)

    pool = HostPool(2, mode="inline")
    plan = FaultPlan(faults=(ExecutorCrash(
        0, AtTime(began + 0.5 * (ended - began))),))
    result, _window = run_job(pool, plan)
    assert np.float64(result).tobytes() == np.float64(expected).tobytes()
    # The dead executor's memos went unclaimed; the retried attempts
    # missed the memo table and ran inline.
    assert pool.stats["inline"] > 0
    assert pool.stats["claimed"] < pool.stats["precomputed"]


def test_unfaulted_pool_claims_everything():
    pool = HostPool(2, mode="inline")
    result, _ = run_job(pool)
    assert pool.stats["inline"] == 0
    assert pool.stats["claimed"] == pool.stats["precomputed"]
