"""Shared harness for the fault-injection suite.

``run_split_agg`` runs one split aggregation of a fixed integer-valued
workload (exact float addition, so recovery must reproduce the fault-free
result *bitwise*) under an optional plan, and reports everything the
tests assert on: the result array, the final virtual time, and the
controller's injected/recovery records.
"""

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import AggregationSpec
from repro.faults import FaultController, FaultPlan, RecoveryPolicy
from repro.rdd import SparkerContext
from repro.serde import SizedPayload

PAYLOAD_ARGS = dict(
    seq_op=lambda a, x: a.merge_inplace(x),
    split_op=lambda u, i, n: u.split(i, n),
    reduce_op=lambda a, b: a.merge(b),
    concat_op=SizedPayload.concat,
)

N_ITEMS = 24
N_PARTITIONS = 8
WIDTH = 64


def make_context(num_nodes: int = 4) -> SparkerContext:
    return SparkerContext(ClusterConfig.laptop(num_nodes=num_nodes))


def expected_sum() -> np.ndarray:
    return np.sum([np.full(WIDTH, float(i)) for i in range(N_ITEMS)],
                  axis=0)


@dataclass
class AggRun:
    """One split aggregation's observable outcome."""

    result: np.ndarray
    now: float
    injected: List = field(default_factory=list)
    actions: List = field(default_factory=list)

    @property
    def action_names(self) -> List[str]:
        return [a.action for a in self.actions]


def run_split_agg(plan: Optional[FaultPlan] = None,
                  recovery: Optional[RecoveryPolicy] = None,
                  num_nodes: int = 4, parallelism: int = 4,
                  sc: Optional[SparkerContext] = None,
                  collective: str = "ring",
                  chunk_bytes: Optional[float] = None) -> AggRun:
    """Aggregate the fixed workload, optionally under an armed plan.

    ``collective``/``chunk_bytes`` select the reduce-scatter strategy
    (``"pipelined_ring"`` exercises the resilient streamed path).
    """
    if sc is None:
        sc = make_context(num_nodes)
    controller = None
    if plan is not None:
        controller = FaultController(sc, plan, recovery).arm()
    data = [SizedPayload(np.full(WIDTH, float(i))) for i in range(N_ITEMS)]
    rdd = sc.parallelize(data, N_PARTITIONS)
    spec_kwargs = dict(collective=collective, parallelism=parallelism,
                       recovery=None if plan is not None else recovery)
    if chunk_bytes is not None:
        spec_kwargs["chunk_bytes"] = chunk_bytes
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(WIDTH)),
        spec=AggregationSpec(**spec_kwargs), **PAYLOAD_ARGS)
    return AggRun(result=result.data, now=sc.now,
                  injected=list(controller.injected) if controller else [],
                  actions=list(controller.actions) if controller else [])


@pytest.fixture(scope="module")
def baseline() -> AggRun:
    """The fault-free run every recovery test compares against bitwise."""
    return run_split_agg()
