"""FaultPlan / RecoveryPolicy validation and seeded-plan determinism."""

import pytest

from repro.faults import (
    AtRingHop,
    AtStageBoundary,
    AtTime,
    DriverNicDegradation,
    ExecutorCrash,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RecoveryPolicy,
    Straggler,
    random_plan,
)


def test_triggers_validate():
    with pytest.raises(ValueError):
        AtTime(-0.5)
    with pytest.raises(ValueError):
        AtStageBoundary(edge="midway")
    with pytest.raises(ValueError):
        AtStageBoundary(occurrence=-1)
    with pytest.raises(ValueError):
        AtRingHop(hop=-1)
    with pytest.raises(ValueError):
        AtRingHop(hop=0, occurrence=-2)


def test_link_faults_validate():
    with pytest.raises(ValueError):
        MessageDrop(count=0)
    with pytest.raises(ValueError):
        MessageDrop(skip=-1)
    with pytest.raises(ValueError):
        MessageDelay(delay=0.0)
    with pytest.raises(ValueError):
        MessageDelay(count=0)


def test_window_faults_validate():
    with pytest.raises(ValueError):
        Straggler(0, factor=0.0)
    with pytest.raises(ValueError):
        Straggler(0, start=-1.0)
    with pytest.raises(ValueError):
        Straggler(0, duration=0.0)
    with pytest.raises(ValueError):
        DriverNicDegradation(factor=-0.5)
    with pytest.raises(ValueError):
        DriverNicDegradation(duration=0.0)


def test_plan_rejects_non_faults():
    with pytest.raises(TypeError):
        FaultPlan(faults=("crash executor 3",))


def test_plan_is_immutable_and_sized():
    plan = FaultPlan(faults=[ExecutorCrash(1), MessageDrop()], seed=7)
    assert len(plan) == 2
    assert isinstance(plan.faults, tuple)
    with pytest.raises(AttributeError):
        plan.seed = 8


def test_default_crash_trigger_is_time_zero():
    assert ExecutorCrash(3).trigger == AtTime(0.0)


def test_recovery_policy_validates():
    with pytest.raises(ValueError):
        RecoveryPolicy(recv_timeout=0.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(max_ring_attempts=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(tree_depth=0)


def test_random_plan_is_deterministic():
    a = random_plan(42, [0, 1, 2, 3], horizon=0.1, n_crashes=2,
                    n_drops=2, n_delays=1)
    b = random_plan(42, [0, 1, 2, 3], horizon=0.1, n_crashes=2,
                    n_drops=2, n_delays=1)
    assert a == b
    assert len(a) == 5
    assert a.seed == 42


def test_random_plan_seed_changes_plan():
    a = random_plan(1, [0, 1, 2, 3], horizon=0.1)
    b = random_plan(2, [0, 1, 2, 3], horizon=0.1)
    assert a != b


def test_random_plan_validates():
    with pytest.raises(ValueError):
        random_plan(0, [], horizon=1.0)
    with pytest.raises(ValueError):
        random_plan(0, [0], horizon=0.0)
