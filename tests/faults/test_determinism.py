"""Replay determinism and the zero-perturbation contract.

Two runs of the same workload under the same ``FaultPlan`` (same seed)
must produce *byte-identical* JSONL event logs; a run with recovery
armed but no faults must be bit-identical — results and virtual times —
to a run with no fault machinery at all.
"""

import numpy as np

from repro.faults import (
    AtTime,
    ExecutorCrash,
    FaultController,
    FaultPlan,
    MessageDrop,
    random_plan,
)
from repro.obs import EventLogWriter, load_events
from repro.serde import SizedPayload

from .conftest import N_ITEMS, N_PARTITIONS, PAYLOAD_ARGS, WIDTH, make_context


def run_logged(path, plan=None):
    sc = make_context()
    controller = FaultController(sc, plan).arm() if plan is not None \
        else None
    writer = EventLogWriter(path)
    sc.event_bus.subscribe(writer)
    data = [SizedPayload(np.full(WIDTH, float(i))) for i in range(N_ITEMS)]
    result = sc.parallelize(data, N_PARTITIONS).split_aggregate(
        lambda: SizedPayload(np.zeros(WIDTH)), parallelism=4,
        **PAYLOAD_ARGS)
    sc.event_bus.unsubscribe(writer)
    writer.close()
    return result.data, sc.now, controller


def crash_plan():
    sc = make_context()
    eid = sc.executors[2].executor_id
    return FaultPlan(faults=(ExecutorCrash(eid, AtTime(0.05)),
                             MessageDrop(count=1, skip=3)))


def test_same_plan_replays_to_byte_identical_log(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    result_a, now_a, _ = run_logged(a, crash_plan())
    result_b, now_b, _ = run_logged(b, crash_plan())
    assert a.read_bytes() == b.read_bytes()
    assert result_a.tobytes() == result_b.tobytes()
    assert now_a == now_b


def test_faulted_log_contains_fault_and_recovery_events(tmp_path):
    path = tmp_path / "faulted.jsonl"
    run_logged(path, crash_plan())
    kinds = {e.kind for e in load_events(path)}
    assert "fault_injected" in kinds
    assert "recovery_action" in kinds


def test_random_plan_runs_replay_identically(tmp_path):
    sc = make_context()
    eids = [e.executor_id for e in sc.executors]
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    plan = random_plan(13, eids, horizon=0.06, n_crashes=1, n_drops=1)
    run_logged(a, plan)
    run_logged(b, random_plan(13, eids, horizon=0.06, n_crashes=1,
                              n_drops=1))
    assert a.read_bytes() == b.read_bytes()


def test_armed_empty_plan_is_zero_perturbation(tmp_path):
    """No faults planned: the armed run is indistinguishable, bit for bit.

    This is the contract that lets recovery machinery ship enabled: recv
    deadlines, death listeners and epoch bookkeeping must cost nothing
    observable when nothing fails.
    """
    bare, armed = tmp_path / "bare.jsonl", tmp_path / "armed.jsonl"
    result_bare, now_bare, _ = run_logged(bare, plan=None)
    result_armed, now_armed, _ = run_logged(armed, plan=FaultPlan())
    assert result_armed.tobytes() == result_bare.tobytes()
    assert now_armed == now_bare
    # Identical event records: the armed recv path may permute
    # same-instant deliveries in the log, but every record — every
    # virtual timestamp included — is the same.
    assert sorted(armed.read_bytes().splitlines()) == \
        sorted(bare.read_bytes().splitlines())
