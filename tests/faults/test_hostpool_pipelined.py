"""FaultController x host pool x fault-tolerant pipelined ring.

The host pool memoizes the reduced-result stage's provably-pure task
bodies; the fault controller crashes executors mid-stage; the pipelined
collective streams the merged aggregators. Composed, the three must
still yield the seed ring's exact bytes: stranded memos of a dead
placement fall back to inline execution, the resubmitted stage re-merges
on the survivors, and the downgraded ring replays through the ledger.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext
from repro.rdd.hostpool import HostPool

from .conftest import expected_sum, run_split_agg
from .test_pipelined_recovery import PLAN_CLASSES, RECOVERY, plan_for

POOL_SIZES = [1, 2, 8]


def pooled_context(pool_size: int) -> SparkerContext:
    return SparkerContext(ClusterConfig.laptop(num_nodes=4),
                          host_pool=HostPool(pool_size, mode="inline"))


@pytest.mark.parametrize("kind", PLAN_CLASSES)
@pytest.mark.parametrize("pool_size", POOL_SIZES)
def test_pooled_pipelined_bitwise_under_chaos(pool_size, kind):
    run = run_split_agg(plan=plan_for(kind, 4), recovery=RECOVERY,
                        sc=pooled_context(pool_size),
                        collective="pipelined_ring")
    np.testing.assert_array_equal(run.result, expected_sum())


@pytest.mark.parametrize("pool_size", POOL_SIZES)
def test_pooled_parity_with_poolless_run(pool_size):
    """Pool sizes must be invisible: same result, timing, and recovery
    log as the pool-less chaos run."""
    plan = plan_for("crash_mid_ring", 4)
    bare = run_split_agg(plan=plan, recovery=RECOVERY,
                         collective="pipelined_ring")
    pooled = run_split_agg(plan=plan_for("crash_mid_ring", 4),
                           recovery=RECOVERY,
                           sc=pooled_context(pool_size),
                           collective="pipelined_ring")
    assert pooled.result.tobytes() == bare.result.tobytes()
    assert pooled.now == bare.now
    assert pooled.action_names == bare.action_names


@pytest.mark.parametrize("pool_size", POOL_SIZES)
def test_pooled_clean_pipelined_unperturbed(pool_size):
    """No faults: the pool changes nothing observable about the stream."""
    bare = run_split_agg(collective="pipelined_ring")
    pooled = run_split_agg(sc=pooled_context(pool_size),
                           collective="pipelined_ring")
    assert pooled.result.tobytes() == bare.result.tobytes()
    assert pooled.now == bare.now
