"""Recovery across the split-aggregation path.

The acceptance bar: kill any single executor at any point of the
aggregation and the result is *bit-identical* to the fault-free run (the
workload is integer-valued, so float addition is exact and any recovery
regrouping that changes the value is a real bug, not roundoff).
"""

import pytest

from repro.faults import (
    AtRingHop,
    AtStageBoundary,
    AtTime,
    ExecutorCrash,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RecoveryPolicy,
)
from repro.rdd import ExecutorLost, JobFailed

from .conftest import make_context, run_split_agg

#: one probe context's executor count (laptop x4 = 8 executors)
N_EXECUTORS = len(make_context().executors)

#: crash instants covering stage 1 (compute), the ring, and the gather
CRASH_TIMES = (0.001, 0.02, 0.05)


@pytest.mark.parametrize("slot", range(N_EXECUTORS))
@pytest.mark.parametrize("when", CRASH_TIMES)
def test_single_crash_matrix_bit_identical(baseline, slot, when):
    sc = make_context()
    eid = sc.executors[slot].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(eid, AtTime(when)),))
    run = run_split_agg(plan=plan)
    assert run.result.tobytes() == baseline.result.tobytes()
    assert len(run.injected) == 1
    assert run.injected[0].executor_id == eid


@pytest.mark.parametrize("hop", (0, 1, 2))
def test_mid_ring_crash_recovers(baseline, hop):
    sc = make_context()
    eid = sc.executors[1].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(eid, AtRingHop(hop)),))
    run = run_split_agg(plan=plan)
    assert run.result.tobytes() == baseline.result.tobytes()
    names = run.action_names
    assert "ring_abort" in names
    assert "partial_recompute" in names
    assert names[-1] == "recovered"


def test_crash_between_partials_and_ring(baseline):
    sc = make_context()
    eid = sc.executors[2].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(eid, AtStageBoundary(
        stage_kind="reduced_result", edge="completed")),))
    run = run_split_agg(plan=plan)
    assert run.result.tobytes() == baseline.result.tobytes()
    # The loss is seen before any ring started: recompute, no abort.
    assert run.action_names[0] == "partial_recompute"
    assert "ring_abort" not in run.action_names
    assert run.action_names[-1] == "recovered"


def test_two_sequential_crashes_recover(baseline):
    sc = make_context()
    ids = [e.executor_id for e in sc.executors]
    plan = FaultPlan(faults=(
        ExecutorCrash(ids[1], AtTime(0.045)),
        ExecutorCrash(ids[5], AtTime(0.08)),
    ))
    run = run_split_agg(plan=plan)
    assert run.result.tobytes() == baseline.result.tobytes()
    recomputes = [a for a in run.actions if a.action == "partial_recompute"]
    assert len(recomputes) >= 1


def test_message_drop_detected_by_timeout(baseline):
    plan = FaultPlan(faults=(MessageDrop(count=2),))
    run = run_split_agg(
        plan=plan, recovery=RecoveryPolicy(recv_timeout=0.05))
    assert run.result.tobytes() == baseline.result.tobytes()
    names = run.action_names
    # The executor is alive, only messages were lost: rebuild, no
    # lineage recompute.
    assert "ring_abort" in names
    assert "partial_recompute" not in names
    assert names[-1] == "recovered"


def test_message_delay_is_tolerated(baseline):
    plan = FaultPlan(faults=(MessageDelay(delay=0.01, count=3),))
    run = run_split_agg(plan=plan)
    assert run.result.tobytes() == baseline.result.tobytes()
    # Delays below the recv timeout never abort anything.
    assert run.action_names == []
    assert run.now >= baseline.now


def test_ring_budget_exhausted_falls_back_to_tree(baseline):
    # Drop every ring message forever: each rebuild times out again until
    # the attempt budget is gone and the tree fallback finishes the job.
    plan = FaultPlan(faults=(MessageDrop(count=10**6),))
    run = run_split_agg(plan=plan, recovery=RecoveryPolicy(
        recv_timeout=0.02, max_ring_attempts=2))
    assert run.result.tobytes() == baseline.result.tobytes()
    names = run.action_names
    assert names.count("ring_abort") == 2
    assert "tree_fallback" in names
    assert names[-1] == "recovered"
    assert run.actions[-1].site == "tree"


def test_tree_fallback_can_be_disabled():
    plan = FaultPlan(faults=(MessageDrop(count=10**6),))
    with pytest.raises(RuntimeError, match="tree fallback is disabled"):
        run_split_agg(plan=plan, recovery=RecoveryPolicy(
            recv_timeout=0.02, max_ring_attempts=1, tree_fallback=False))


def test_total_cluster_loss_fails_the_job():
    sc = make_context()
    plan = FaultPlan(faults=tuple(
        ExecutorCrash(e.executor_id, AtTime(0.02)) for e in sc.executors))
    with pytest.raises((JobFailed, ExecutorLost)):
        run_split_agg(plan=plan)


def test_recovered_action_carries_virtual_time_cost(baseline):
    sc = make_context()
    eid = sc.executors[3].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(eid, AtTime(0.05)),))
    run = run_split_agg(plan=plan)
    recovered = run.actions[-1]
    assert recovered.action == "recovered"
    assert recovered.seconds > 0
    # Recovery costs extra virtual time over the fault-free run.
    assert run.now > baseline.now


def test_explicit_recovery_without_controller(baseline):
    """The ``recovery=`` argument alone arms the FT path (no injection)."""
    run = run_split_agg(recovery=RecoveryPolicy())
    assert run.result.tobytes() == baseline.result.tobytes()
    assert run.now == baseline.now  # armed but unfaulted: zero perturbation


# --------------------------------------------------- scheduler catch-alls
def test_poison_task_fails_fast_with_its_own_error():
    """The original task error surfaces; the stage is not resubmitted."""
    sc = make_context()

    def explode(_x):
        raise ValueError("poison task")

    with pytest.raises(ValueError, match="poison task"):
        sc.parallelize(range(8), 4).map(explode).collect()
    # The task retry budget failed the job on the first stage attempt —
    # stage-level resubmission did not mask the real failure.
    result_stages = [s for s in sc.dag.stage_log if s.kind == "result"]
    assert len(result_stages) == 1


def test_keyboard_style_interrupts_not_swallowed():
    """SimulationError from the kernel is never treated as a task failure."""
    from repro.sim import SimulationError

    sc = make_context()
    original = sc.dag._run_tasks

    def broken(*args, **kwargs):
        raise SimulationError("kernel invariant broken")
        yield  # pragma: no cover

    sc.dag._run_tasks = broken
    with pytest.raises(SimulationError):
        sc.parallelize(range(4), 2).count()
