"""The overlapped aggregation path: ``collective="pipelined_ring"``.

Contract: the orchestrated path streams each executor's finished
aggregator into the ring while other partitions still fold, yet the
final value is byte-identical to the phased ring, and tracing it
perturbs nothing.
"""

import hashlib

import numpy as np
import pytest

from repro import AggregationSpec
from repro.cluster import MB, ClusterConfig
from repro.faults import RecoveryPolicy
from repro.obs import ChunkStream, CollectiveChosen, CollectiveCompleted
from repro.rdd import SparkerContext
from repro.rdd.costing import Costed
from repro.serde import SizedPayload


def payload_split_args():
    return dict(
        seq_op=lambda a, x: a.merge_inplace(x),
        split_op=lambda u, i, n: u.split(i, n),
        reduce_op=lambda a, b: a.merge(b),
        concat_op=SizedPayload.concat,
    )


def run_agg(collective, *, nodes=3, parts=8, parallelism=2, elems=64,
            seed=0, sim_bytes=16 * MB, listener=None, seq_cost=None,
            chunk_bytes=None, cluster="bic"):
    config = (ClusterConfig.bic if cluster == "bic"
              else ClusterConfig.laptop)(num_nodes=nodes)
    sc = SparkerContext(config)
    if listener is not None:
        sc.event_bus.subscribe(listener)
    rng = np.random.default_rng(seed)
    data = [SizedPayload(rng.integers(-100, 100, elems).astype(float),
                         sim_bytes=sim_bytes)
            for _ in range(parts * 3)]
    rdd = sc.parallelize(data, parts).cache()
    rdd.count()
    args = payload_split_args()
    if seq_cost is not None:
        args["seq_op"] = Costed(args["seq_op"], seq_cost)
    kw = dict(collective=collective, parallelism=parallelism)
    if chunk_bytes is not None:
        kw["chunk_bytes"] = chunk_bytes
    began = sc.now
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(elems), sim_bytes=sim_bytes),
        spec=AggregationSpec(**kw), **args)
    return sc, result, sc.now - began


def sha(result):
    return hashlib.sha256(
        np.ascontiguousarray(result.data).tobytes()).hexdigest()


# ---------------------------------------------------------- bit-identity
@pytest.mark.parametrize("parts", [2, 3, 5, 8])
@pytest.mark.parametrize("parallelism", [1, 2, 4])
def test_bit_identical_to_classic_ring(parts, parallelism):
    _, ring, _ = run_agg("ring", parts=parts, parallelism=parallelism)
    _, pipe, _ = run_agg("pipelined_ring", parts=parts,
                         parallelism=parallelism)
    assert sha(pipe) == sha(ring), (
        f"pipelined_ring diverged at parts={parts} P={parallelism}")


def test_bit_identical_with_small_chunks():
    _, ring, _ = run_agg("ring")
    _, pipe, _ = run_agg("pipelined_ring", chunk_bytes=1 * MB)
    assert sha(pipe) == sha(ring)


# ------------------------------------------------------ zero-perturbation
def test_tracing_perturbs_nothing():
    _, untraced_result, untraced_t = run_agg("pipelined_ring")
    events = []
    _, traced_result, traced_t = run_agg("pipelined_ring",
                                         listener=events.append)
    assert traced_t == untraced_t
    assert sha(traced_result) == sha(untraced_result)
    assert any(isinstance(e, ChunkStream) for e in events)
    chosen = [e for e in events if isinstance(e, CollectiveChosen)]
    assert chosen and chosen[0].algorithm == "pipelined_ring"
    assert chosen[0].source == "spec"
    done = [e for e in events if isinstance(e, CollectiveCompleted)]
    assert done and done[0].algorithm == "pipelined_ring"
    # the completed span covers the whole overlapped window
    assert done[0].seconds > 0


# --------------------------------------------------------------- overlap
def test_overlap_beats_phased_ring_on_staggered_compute():
    """Per-element seqOp cost staggers partition finish times; streaming
    early finishers must beat waiting for the last one."""
    kw = dict(parts=6, parallelism=2, sim_bytes=64 * MB, seq_cost=0.02,
              nodes=3)
    _, ring_result, ring_t = run_agg("ring", **kw)
    _, pipe_result, pipe_t = run_agg("pipelined_ring", **kw)
    assert sha(pipe_result) == sha(ring_result)
    assert pipe_t < ring_t


# ----------------------------------------------------------- bookkeeping
def test_object_managers_cleaned_up():
    sc, _, _ = run_agg("pipelined_ring")
    for executor in sc.executors:
        assert not executor.object_manager._entries


def test_stopwatch_phases_recorded():
    sc, _, _ = run_agg("pipelined_ring")
    assert sc.stopwatch.total("agg.compute") > 0
    assert sc.stopwatch.total("agg.reduce") > 0


def test_single_partition_single_holder():
    _, ring, _ = run_agg("ring", parts=1, parallelism=1)
    _, pipe, _ = run_agg("pipelined_ring", parts=1, parallelism=1)
    assert sha(pipe) == sha(ring)


# -------------------------------------------------- on_merged hook plumbing
def test_on_merged_hook_fires_per_partition():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    data = [SizedPayload(np.ones(8)) for _ in range(6)]
    rdd = sc.parallelize(data, 6)
    calls = []
    holders = sc.run_reduced_job(
        rdd, lambda _i, chunk, _ctx: SizedPayload(
            np.sum([c.data for c in chunk], axis=0) if chunk
            else np.zeros(8)),
        lambda a, b: a.merge(b),
        on_merged=lambda eid, part, obj: calls.append((eid, part, obj)))
    assert len(calls) == 6
    assert {part for _, part, _ in calls} == set(range(6))
    by_executor = {}
    for eid, _, obj in calls:
        by_executor.setdefault(eid, set()).add(obj)
    # every executor reports exactly its one shared object
    assert dict((eid, {obj}) for eid, obj in holders) == by_executor


# ------------------------------------------------------- guard conditions
def test_compression_with_recovery_rejected():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize([SizedPayload(np.ones(8))], 1)
    with pytest.raises(ValueError, match="incompatible with a recovery"):
        rdd.split_aggregate(
            lambda: SizedPayload(np.zeros(8)),
            spec=AggregationSpec(compression="topk",
                                 recovery=RecoveryPolicy()),
            **payload_split_args())


def test_pipelined_under_fault_controller_still_correct():
    """A fault controller with a recovery policy routes through the
    fault-tolerant streamed path; with no faults in the plan the stream
    completes and the result stays exact."""
    from repro.faults import FaultController, FaultPlan

    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    FaultController(sc, FaultPlan(faults=(), seed=1),
                    RecoveryPolicy(max_ring_attempts=2)).arm()
    data = [SizedPayload(np.full(16, float(i + 1))) for i in range(6)]
    rdd = sc.parallelize(data, 6)
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(16)),
        spec=AggregationSpec(collective="pipelined_ring", parallelism=2),
        **payload_split_args())
    np.testing.assert_array_equal(result.data,
                                  np.full(16, sum(range(1, 7))))
