"""The deprecated-kwarg lint runs with the tier-1 suite.

``src/`` must be fully migrated to AggregationSpec: the legacy keywords
survive only as warn-and-forward shims at public entry points, so any
*internal* call passing one is a regression. The same walk backs the
``collectives-smoke`` CI job via ``tools/lint_deprecated_kwargs.py``.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_deprecated_kwargs import lint_file, lint_paths  # noqa: E402


def test_src_has_no_deprecated_kwarg_uses():
    messages = lint_paths([REPO / "src"])
    assert messages == []


def test_lint_catches_a_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "rdd.split_aggregate(zero, seq, split, red, cat,\n"
        "                    sparse_aggregation=True)\n",
        encoding="utf-8")
    violations = lint_file(bad)
    assert violations == [(1, "split_aggregate", "sparse_aggregation")]


def test_lint_allows_the_spec_layer(tmp_path):
    ok = tmp_path / "ok.py"
    ok.write_text(
        "spec = AggregationSpec(sparse_aggregation=True, batched=False)\n"
        "spec2 = spec.replace(host_pool=2)\n"
        "spec3 = spec_with_legacy(spec, 'site', sparse_policy=policy)\n",
        encoding="utf-8")
    assert lint_file(ok) == []
