"""Tests for SpawnRDD static scheduling (paper §4.3)."""

import pytest

from repro.cluster import ClusterConfig
from repro.core import SpawnRDD
from repro.rdd import ExecutorLost, JobFailed, SparkerContext


@pytest.fixture
def sc():
    return SparkerContext(ClusterConfig.laptop(num_nodes=2))


def test_tasks_run_exactly_on_listed_executors(sc):
    ran_on = []

    def probe(ctx):
        ran_on.append(ctx.executor.executor_id)
        return ctx.executor.executor_id

    targets = [2, 0, 3]
    rdd = SpawnRDD(sc, [(eid, probe) for eid in targets])
    results = rdd.collect()
    assert results == targets
    assert ran_on == sorted(ran_on, key=lambda e: targets.index(e)) or \
        set(ran_on) == set(targets)


def test_pinned_executor_accessor(sc):
    rdd = SpawnRDD(sc, [(1, lambda ctx: "a"), (3, lambda ctx: "b")])
    assert rdd.pinned_executor(0) == 1
    assert rdd.pinned_executor(1) == 3
    assert rdd.executor_ids() == [1, 3]


def test_empty_task_list_rejected(sc):
    with pytest.raises(ValueError):
        SpawnRDD(sc, [])


def test_dead_pinned_executor_fails_job(sc):
    sc.kill_executor(1)
    rdd = SpawnRDD(sc, [(1, lambda ctx: "x")])
    with pytest.raises((ExecutorLost, JobFailed)):
        rdd.collect()


def test_from_holders_reads_object_manager(sc):
    holders = sc.run_reduced_job(
        sc.parallelize(range(20), 4),
        lambda _i, data, _ctx: sum(data),
        lambda a, b: a + b)
    spawned = SpawnRDD.from_holders(sc, holders)
    values = spawned.collect()
    assert sum(values) == sum(range(20))


def test_from_holders_fails_after_cleanup(sc):
    holders = sc.run_reduced_job(
        sc.parallelize(range(8), 2),
        lambda _i, data, _ctx: sum(data),
        lambda a, b: a + b)
    SpawnRDD.cleanup_holders(sc, holders)
    spawned = SpawnRDD.from_holders(sc, holders)
    with pytest.raises((ExecutorLost, JobFailed)):
        spawned.collect()


def test_spawn_rdd_composes_with_transformations(sc):
    rdd = SpawnRDD(sc, [(0, lambda ctx: 10), (1, lambda ctx: 20)])
    assert rdd.map(lambda x: x + 1).collect() == [11, 21]
