"""Tests for treeAggregate / treeReduce (Spark-faithful baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.core.aggregation import fresh_zero, tree_aggregate
from repro.rdd import SparkerContext


@pytest.fixture
def sc():
    return SparkerContext(ClusterConfig.laptop(num_nodes=2))


def test_tree_aggregate_scalar_sum(sc):
    rdd = sc.parallelize(range(100), 8)
    assert rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b) == \
        4950


def test_tree_aggregate_empty_rdd_identity_zero(sc):
    rdd = sc.parallelize([], 4)
    assert rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b) == 0


def test_tree_aggregate_nonidentity_zero_folds_per_partition(sc):
    """Spark-faithful quirk: zeroValue is folded once per partition, so a
    non-identity zero multiplies (same as Apache Spark's treeAggregate)."""
    rdd = sc.parallelize([], 4)
    assert rdd.tree_aggregate(7, lambda a, x: a + x,
                              lambda a, b: a + b) == 28


def test_tree_aggregate_array_zero_not_aliased(sc):
    """A mutable zero value must be copied per task (the reason Spark
    serializes zeroValue per task)."""
    zero = np.zeros(4)
    data = [np.ones(4) for _ in range(10)]
    rdd = sc.parallelize(data, 5)
    result = rdd.tree_aggregate(
        zero,
        lambda acc, x: acc.__iadd__(x),
        lambda a, b: a + b)
    np.testing.assert_allclose(result, np.full(4, 10.0))
    np.testing.assert_allclose(zero, 0.0)  # driver's copy untouched


def test_tree_aggregate_depth_levels(sc):
    rdd = sc.parallelize(range(64), 16)
    for depth in (1, 2, 3):
        assert rdd.tree_aggregate(0, lambda a, x: a + x,
                                  lambda a, b: a + b, depth=depth) == 2016


def test_tree_aggregate_depth_validation(sc):
    rdd = sc.parallelize(range(4), 2)
    with pytest.raises(ValueError):
        rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b,
                           depth=0)


def test_tree_aggregate_uses_intermediate_stage_for_many_partitions():
    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    rdd = sc.parallelize(range(480), 48)
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    kinds = [s.kind for s in sc.dag.stage_log]
    # 48 partitions, depth 2 -> scale 7 -> exactly one tree level (one
    # shuffle), then the final result stage.
    assert kinds.count("shuffle_map") == 1
    assert kinds[-1] == "result"


def test_tree_aggregate_deeper_tree_adds_levels():
    # depth=3 with 512 partitions: scale 8 -> two tree levels.
    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    rdd = sc.parallelize(range(512), 512)
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b, depth=3)
    kinds = [s.kind for s in sc.dag.stage_log]
    assert kinds.count("shuffle_map") == 2


def test_tree_aggregate_single_partition_has_no_shuffle(sc):
    rdd = sc.parallelize(range(10), 1)
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    assert all(s.kind == "result" for s in sc.dag.stage_log)


def test_imm_variant_matches_plain(sc):
    data = [np.full(8, float(i)) for i in range(24)]
    rdd = sc.parallelize(data, 8).cache()
    rdd.count()
    zero = lambda: np.zeros(8)  # noqa: E731
    plain = rdd.tree_aggregate(zero, lambda a, x: a + x, lambda a, b: a + b)
    imm = rdd.tree_aggregate(zero, lambda a, x: a + x, lambda a, b: a + b,
                             imm=True)
    np.testing.assert_allclose(plain, imm)


def test_imm_merges_inside_executors(sc):
    data = [np.ones(4) for _ in range(16)]
    rdd = sc.parallelize(data, 16)
    rdd.tree_aggregate(lambda: np.zeros(4), lambda a, x: a + x,
                       lambda a, b: a + b, imm=True)
    kinds = [s.kind for s in sc.dag.stage_log]
    assert "reduced_result" in kinds


def test_stopwatch_records_phases(sc):
    rdd = sc.parallelize(range(100), 8)
    rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    assert sc.stopwatch.total("agg.compute") > 0
    assert sc.stopwatch.total("agg.reduce") > 0


def test_reduction_time_grows_with_cluster_for_big_aggregators():
    """The paper's core observation (§2.3): tree-aggregation reduction time
    *increases* with the cluster size for large aggregators."""
    from repro.serde import SizedPayload
    from repro.cluster import MB

    def reduce_time(nodes):
        sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
        n = sc.cluster.total_cores
        data = [SizedPayload(np.ones(64), sim_bytes=64 * MB)
                for _ in range(n)]
        rdd = sc.parallelize(data, n).cache()
        rdd.count()
        rdd.tree_aggregate(
            lambda: SizedPayload(np.zeros(64), sim_bytes=64 * MB),
            lambda a, x: a.merge_inplace(x), lambda a, b: a.merge(b))
        return sc.stopwatch.total("agg.reduce")

    assert reduce_time(4) > reduce_time(1)


# ------------------------------------------------------------- fresh_zero
def test_fresh_zero_callable_factory():
    calls = []

    def factory():
        calls.append(1)
        return [0]

    a, b = fresh_zero(factory), fresh_zero(factory)
    assert a is not b
    assert len(calls) == 2


def test_fresh_zero_ndarray_copied():
    z = np.zeros(3)
    assert fresh_zero(z) is not z


def test_fresh_zero_scalar_passthrough():
    assert fresh_zero(5) == 5
    assert fresh_zero(None) is None
    assert fresh_zero("x") == "x"


def test_fresh_zero_copyable_object():
    class Z:
        def __init__(self):
            self.copied = False

        def copy(self):
            out = Z()
            out.copied = True
            return out

    assert fresh_zero(Z()).copied


def test_fresh_zero_deepcopy_fallback():
    class Plain:
        def __init__(self):
            self.data = [1, 2]

    z = Plain()
    out = fresh_zero(z)
    assert out is not z
    assert out.data == [1, 2]
    out.data.append(3)
    assert z.data == [1, 2]


@settings(max_examples=20, deadline=None)
@given(data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=80),
       slices=st.integers(1, 16), depth=st.integers(1, 3))
def test_tree_aggregate_equals_builtin_sum(data, slices, depth):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    rdd = sc.parallelize(data, slices)
    result = rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b,
                                depth=depth)
    assert result == sum(data)
