"""Tests for automatic split-op derivation (§6 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.core import UnsplittableError, derive_split_ops
from repro.rdd import SparkerContext


class TwoArrayAgg:
    """Figure 7's shape: two arrays plus an additive scalar."""

    def __init__(self, dim):
        self.sum1 = np.zeros(dim)
        self.sum2 = np.zeros(dim)
        self.count = 0.0

    def add(self, x):
        self.sum1 += x
        self.sum2 += x * x
        self.count += 1
        return self


class MatrixAgg:
    """A 2-D state field (LDA-like)."""

    def __init__(self, k, v):
        self.counts = np.zeros((k, v))
        self.loglik = 0.0


class SlottedAgg:
    __slots__ = ("values", "total")

    def __init__(self, dim):
        self.values = np.zeros(dim)
        self.total = 0.0


def test_field_plan_structure():
    ops = derive_split_ops(TwoArrayAgg(8))
    kinds = {p.name: p.kind for p in ops.fields}
    assert kinds == {"sum1": "array", "sum2": "array", "count": "scalar"}


def test_split_merge_concat_algebra():
    rng = np.random.default_rng(0)
    a, b = TwoArrayAgg(10), TwoArrayAgg(10)
    for _ in range(5):
        a.add(rng.standard_normal(10))
        b.add(rng.standard_normal(10))
    ops = derive_split_ops(TwoArrayAgg(10))
    merged_segments = [
        ops.reduce_op(ops.split_op(a, i, 4), ops.split_op(b, i, 4))
        for i in range(4)
    ]
    rebuilt = ops.concat_op(merged_segments)
    np.testing.assert_allclose(rebuilt.sum1, a.sum1 + b.sum1)
    np.testing.assert_allclose(rebuilt.sum2, a.sum2 + b.sum2)
    assert rebuilt.count == 10.0
    assert isinstance(rebuilt, TwoArrayAgg)


def test_matrix_field_round_trip():
    rng = np.random.default_rng(1)
    agg = MatrixAgg(3, 7)
    agg.counts += rng.random((3, 7))
    agg.loglik = -42.0
    ops = derive_split_ops(MatrixAgg(3, 7))
    rebuilt = ops.concat_op([ops.split_op(agg, i, 5) for i in range(5)])
    np.testing.assert_allclose(rebuilt.counts, agg.counts)
    assert rebuilt.counts.shape == (3, 7)
    assert rebuilt.loglik == pytest.approx(-42.0)


def test_slots_objects_supported():
    agg = SlottedAgg(6)
    agg.values += 2.0
    ops = derive_split_ops(SlottedAgg(6))
    rebuilt = ops.concat_op([ops.split_op(agg, i, 2) for i in range(2)])
    np.testing.assert_allclose(rebuilt.values, 2.0)


def test_merge_op_accumulates_in_place():
    ops = derive_split_ops(TwoArrayAgg(4))
    a, b = TwoArrayAgg(4), TwoArrayAgg(4)
    a.add(np.ones(4))
    b.add(np.full(4, 2.0))
    out = ops.merge_op(a, b)
    assert out is a
    np.testing.assert_allclose(a.sum1, 3.0)
    assert a.count == 2.0


def test_rejects_non_numeric_fields():
    class Bad:
        def __init__(self):
            self.values = np.zeros(4)
            self.name = "hello"

    with pytest.raises(UnsplittableError, match="name"):
        derive_split_ops(Bad())


def test_rejects_integer_arrays():
    class Bad:
        def __init__(self):
            self.values = np.zeros(4, dtype=np.int64)

    with pytest.raises(UnsplittableError, match="float"):
        derive_split_ops(Bad())


def test_rejects_stateless_objects():
    class Empty:
        pass

    with pytest.raises(UnsplittableError):
        derive_split_ops(Empty())


def test_rejects_scalar_only_objects():
    class ScalarOnly:
        def __init__(self):
            self.count = 1.0

    with pytest.raises(UnsplittableError, match="no array state"):
        derive_split_ops(ScalarOnly())


def test_verification_catches_non_additive_merge():
    # NaN state breaks the 2x-check (NaN != 2*NaN), standing in for any
    # object whose merge algebra is not elementwise addition.
    class Weird:
        def __init__(self):
            self.values = np.full(4, np.nan)

    with pytest.raises(UnsplittableError, match="merge algebra"):
        derive_split_ops(Weird())


def test_end_to_end_with_split_aggregate():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rng = np.random.default_rng(3)
    rows = [rng.standard_normal(12) for _ in range(30)]
    rdd = sc.parallelize(rows, 6)
    ops = derive_split_ops(TwoArrayAgg(12))
    result = rdd.split_aggregate(
        lambda: TwoArrayAgg(12), lambda agg, x: agg.add(x),
        ops.split_op, ops.reduce_op, ops.concat_op,
        parallelism=2, merge_op=ops.merge_op)
    np.testing.assert_allclose(result.sum1, np.sum(rows, axis=0))
    np.testing.assert_allclose(result.sum2,
                               np.sum([r * r for r in rows], axis=0))
    assert result.count == 30.0


def test_auto_ops_match_tree_aggregate():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rng = np.random.default_rng(4)
    rows = [rng.standard_normal(8) for _ in range(20)]
    rdd = sc.parallelize(rows, 4)
    ops = derive_split_ops(TwoArrayAgg(8))
    tree = rdd.tree_aggregate(lambda: TwoArrayAgg(8),
                              lambda agg, x: agg.add(x), ops.merge_op)
    split = rdd.split_aggregate(
        lambda: TwoArrayAgg(8), lambda agg, x: agg.add(x),
        ops.split_op, ops.reduce_op, ops.concat_op,
        parallelism=3, merge_op=ops.merge_op)
    np.testing.assert_allclose(tree.sum1, split.sum1)
    np.testing.assert_allclose(tree.sum2, split.sum2)
    assert tree.count == split.count


@settings(max_examples=15, deadline=None)
@given(dim=st.integers(1, 40), segments=st.integers(1, 8),
       seed=st.integers(0, 100))
def test_auto_split_property(dim, segments, seed):
    rng = np.random.default_rng(seed)
    aggs = []
    for _ in range(3):
        agg = TwoArrayAgg(dim)
        agg.add(rng.standard_normal(dim))
        aggs.append(agg)
    ops = derive_split_ops(TwoArrayAgg(dim))
    merged = []
    for i in range(segments):
        seg = ops.split_op(aggs[0], i, segments)
        for other in aggs[1:]:
            seg = ops.reduce_op(seg, ops.split_op(other, i, segments))
        merged.append(seg)
    rebuilt = ops.concat_op(merged)
    np.testing.assert_allclose(
        rebuilt.sum1, np.sum([a.sum1 for a in aggs], axis=0))
    assert rebuilt.count == 3.0


# ------------------------------------------------- density-adaptive mode
class SparseStateAgg:
    """An aggregator whose array state is mostly zeros."""

    def __init__(self, dim, hot=3):
        self.grad = np.zeros(dim)
        self.count = 0.0
        self._hot = hot

    def add(self, seed):
        rng = np.random.default_rng(seed)
        idx = rng.choice(self._hot, size=2, replace=False)
        self.grad[idx] += rng.standard_normal(2)
        self.count += 1
        return self


def test_adaptive_split_emits_sparse_segments():
    from repro.serde import DEFAULT_SPARSE_POLICY, sim_sizeof

    agg = SparseStateAgg(400)
    agg.add(1)
    ops = derive_split_ops(SparseStateAgg(400),
                           policy=DEFAULT_SPARSE_POLICY)
    segs = [ops.split_op(agg, i, 4) for i in range(4)]
    assert any(s.is_sparse for s in segs)
    for s in segs:
        if s.is_sparse:
            assert sim_sizeof(s) < s.__sim_dense_size__()
    rebuilt = ops.concat_op(segs)
    np.testing.assert_array_equal(rebuilt.grad, agg.grad)
    assert rebuilt.count == agg.count
    assert isinstance(rebuilt, SparseStateAgg)


def test_adaptive_ops_bit_identical_to_plain_ops():
    from repro.serde import DEFAULT_SPARSE_POLICY

    rng = np.random.default_rng(43)
    plain_ops = derive_split_ops(SparseStateAgg(100), verify=False)
    adaptive_ops = derive_split_ops(SparseStateAgg(100), verify=False,
                                    policy=DEFAULT_SPARSE_POLICY)
    outs = {}
    for name, ops in (("plain", plain_ops), ("adaptive", adaptive_ops)):
        aggs = []
        for k in range(3):
            agg = SparseStateAgg(100, hot=30)
            for s in range(4):
                agg.add(10 * k + s)
            aggs.append(agg)
        merged = []
        for i in range(5):
            seg = ops.split_op(aggs[0], i, 5)
            for other in aggs[1:]:
                seg = ops.reduce_op(seg, ops.split_op(other, i, 5))
            merged.append(seg)
        outs[name] = ops.concat_op(merged)
    np.testing.assert_array_equal(outs["plain"].grad,
                                  outs["adaptive"].grad)
    assert outs["plain"].count == outs["adaptive"].count


def test_adaptive_merge_densifies_past_threshold():
    from repro.serde import DEFAULT_SPARSE_POLICY

    ops = derive_split_ops(SparseStateAgg(40), verify=False,
                           policy=DEFAULT_SPARSE_POLICY)
    a, b = SparseStateAgg(40), SparseStateAgg(40)
    # disjoint hot ranges so the union of non-zeros crosses 50% density
    a.grad[:16] = 1.0
    b.grad[16:32] = 1.0
    sa = ops.split_op(a, 0, 1)
    sb = ops.split_op(b, 0, 1)
    assert sa.is_sparse and sb.is_sparse
    merged = ops.reduce_op(sa, sb)
    assert merged.representation == "dense"
    np.testing.assert_array_equal(merged.to_array()[:41],
                                  a.grad + b.grad)


def test_adaptive_reduce_never_mutates_source_views():
    from repro.serde import DEFAULT_SPARSE_POLICY

    agg = SparseStateAgg(60)
    agg.grad[:] = 1.0  # dense blocks: split hands out views
    before = agg.grad.copy()
    ops = derive_split_ops(SparseStateAgg(60), verify=False,
                           policy=DEFAULT_SPARSE_POLICY)
    seg = ops.split_op(agg, 0, 2)
    ops.reduce_op(seg, ops.split_op(agg, 0, 2))
    np.testing.assert_array_equal(agg.grad, before)
