"""AggregationSpec: validation, env resolution, serialization, shims.

The spec is the engine's single configuration value; these tests pin the
contract the rest of the PR leans on — seed-identical defaults, the
validation rules, exact dict round-trips (including nested policy /
recovery objects), SPARKER_* env overrides resolved in one place, and
the one-warning-per-legacy-kwarg shim discipline.
"""

import warnings

import pytest

from repro.core.spec import (
    COLLECTIVES,
    DEFAULT_CHUNK_BYTES,
    AggregationSpec,
    resolve_host_pool,
    resolve_sparse_policy,
    spec_with_legacy,
    warn_deprecated_kwarg,
)
from repro.faults import RecoveryPolicy
from repro.rdd.hostpool import HostPool
from repro.serde import DEFAULT_SPARSE_POLICY
from repro.serde.cost import SparsePolicy


# ------------------------------------------------------------ construction
def test_defaults_are_seed_identical():
    spec = AggregationSpec()
    assert spec.collective == "ring"
    assert spec.parallelism == 4
    assert spec.topology_aware is True
    assert spec.sparse_aggregation is False
    assert spec.sparse_policy is None
    assert spec.batched is False
    assert spec.recovery is None
    assert spec.host_pool is None


def test_collective_is_validated():
    for name in COLLECTIVES:
        if name == "hierarchical":
            AggregationSpec(collective=name, topology_aware=True)
        else:
            AggregationSpec(collective=name)
    with pytest.raises(ValueError, match="collective must be one of"):
        AggregationSpec(collective="butterfly")


def test_parallelism_must_be_positive():
    with pytest.raises(ValueError, match="parallelism must be >= 1"):
        AggregationSpec(parallelism=0)
    with pytest.raises(ValueError, match="parallelism_candidates"):
        AggregationSpec(parallelism_candidates=())
    with pytest.raises(ValueError, match="parallelism_candidates"):
        AggregationSpec(parallelism_candidates=(2, 0))


def test_candidates_normalize_to_tuple():
    spec = AggregationSpec(parallelism_candidates=[1, 2])
    assert spec.parallelism_candidates == (1, 2)


def test_hierarchical_requires_topology_aware():
    with pytest.raises(ValueError, match="topology_aware"):
        AggregationSpec(collective="hierarchical", topology_aware=False)


def test_explicit_policy_implies_sparse_mode():
    policy = SparsePolicy(density_threshold=0.25)
    spec = AggregationSpec(sparse_policy=policy)
    assert spec.sparse_aggregation is True
    assert spec.resolved_sparse_policy is policy


def test_resolved_policy_falls_back_to_the_single_default():
    assert AggregationSpec().resolved_sparse_policy is None
    on = AggregationSpec(sparse_aggregation=True)
    assert on.resolved_sparse_policy is DEFAULT_SPARSE_POLICY
    # and the free function agrees (it IS the same resolution site)
    assert resolve_sparse_policy(True, None) is DEFAULT_SPARSE_POLICY
    assert resolve_sparse_policy(False, None) is None


def test_replace_builds_variants_without_mutation():
    spec = AggregationSpec()
    variant = spec.replace(collective="hd", parallelism=8)
    assert (variant.collective, variant.parallelism) == ("hd", 8)
    assert spec.collective == "ring"  # frozen original untouched
    with pytest.raises(Exception):
        spec.parallelism = 2  # type: ignore[misc]


# ------------------------------------------------------------- environment
def test_from_env_with_nothing_set_is_identity():
    base = AggregationSpec(collective="hd")
    assert AggregationSpec.from_env(base, environ={}) is base


def test_from_env_overrides_every_knob():
    spec = AggregationSpec.from_env(environ={
        "SPARKER_COLLECTIVE": " AUTO ",
        "SPARKER_PARALLELISM": "8",
        "SPARKER_TOPOLOGY_AWARE": "off",
        "SPARKER_SPARSE_AGG": "1",
        "SPARKER_BATCHED": "yes",
        "SPARKER_HOST_POOL": "3",
    })
    assert spec.collective == "auto"
    assert spec.parallelism == 8
    assert spec.topology_aware is False
    assert spec.sparse_aggregation is True
    assert spec.batched is True
    assert spec.host_pool == 3


def test_resolve_host_pool_env_and_values(monkeypatch):
    monkeypatch.delenv("SPARKER_HOST_POOL", raising=False)
    monkeypatch.delenv("SPARKER_HOST_POOL_MODE", raising=False)
    assert resolve_host_pool(None) is None
    assert resolve_host_pool(1) is None  # <=1 workers: no pool
    pool = resolve_host_pool(2)
    assert isinstance(pool, HostPool) and pool.size == 2
    assert resolve_host_pool(pool) is pool  # pass-through

    monkeypatch.setenv("SPARKER_HOST_POOL", "3")
    env_pool = resolve_host_pool(None)
    assert isinstance(env_pool, HostPool) and env_pool.size == 3

    # mode "inline" forces the pool path even without a size
    monkeypatch.setenv("SPARKER_HOST_POOL", "0")
    monkeypatch.setenv("SPARKER_HOST_POOL_MODE", "inline")
    inline = resolve_host_pool(None)
    assert isinstance(inline, HostPool) and inline.mode == "inline"


# ------------------------------------------------------------ serialization
def test_dict_round_trip_defaults():
    spec = AggregationSpec()
    assert AggregationSpec.from_dict(spec.to_dict()) == spec


def test_dict_round_trip_with_nested_objects():
    spec = AggregationSpec(
        collective="hierarchical",
        parallelism=2,
        parallelism_candidates=(2, 4),
        sparse_policy=SparsePolicy(density_threshold=0.125),
        recovery=RecoveryPolicy(recv_timeout=0.5, max_ring_attempts=2),
    )
    record = spec.to_dict()
    back = AggregationSpec.from_dict(record)
    assert back.collective == "hierarchical"
    assert back.parallelism_candidates == (2, 4)
    assert back.sparse_policy == spec.sparse_policy
    assert back.recovery == spec.recovery
    # and the dict itself is JSON-ready
    import json
    assert AggregationSpec.from_dict(
        json.loads(json.dumps(record))) == back


def test_host_pool_serializes_as_worker_count():
    spec = AggregationSpec(host_pool=HostPool(2))
    assert spec.to_dict()["host_pool"] == 2
    assert AggregationSpec(host_pool=None).to_dict()["host_pool"] is None


def test_from_dict_ignores_unknown_keys():
    record = AggregationSpec().to_dict()
    record["future_field"] = 42
    assert AggregationSpec.from_dict(record) == AggregationSpec()


# --------------------------------------------------------------- shims
def test_spec_with_legacy_passthrough_emits_nothing():
    spec = AggregationSpec(parallelism=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert spec_with_legacy(spec, "site") is spec
        assert spec_with_legacy(None, "site") == AggregationSpec()


def test_spec_with_legacy_warns_once_per_kwarg():
    with pytest.warns(DeprecationWarning) as caught:
        spec = spec_with_legacy(None, "Trainer.train",
                                parallelism=8, batched=True,
                                sparse_aggregation=None)
    messages = [str(w.message) for w in caught]
    assert len(messages) == 2  # None kwargs are silent
    assert any("'parallelism'" in m and "Trainer.train" in m
               for m in messages)
    assert any("'batched'" in m for m in messages)
    assert spec.parallelism == 8 and spec.batched is True


def test_legacy_values_override_the_spec():
    base = AggregationSpec(parallelism=2, batched=False)
    with pytest.warns(DeprecationWarning):
        spec = spec_with_legacy(base, "site", parallelism=16)
    assert spec.parallelism == 16
    assert spec.batched is False  # untouched fields survive


def test_warn_deprecated_kwarg_names_the_replacement():
    with pytest.warns(DeprecationWarning,
                      match=r"spec=AggregationSpec\(parallelism=\.\.\.\)"):
        warn_deprecated_kwarg("parallelism", "split_aggregate",
                              stacklevel=1)


# ------------------------------------------- pipelined ring + approx tier
def test_pipelined_ring_is_a_valid_collective():
    assert "pipelined_ring" in COLLECTIVES
    spec = AggregationSpec(collective="pipelined_ring")
    assert spec.chunk_bytes == DEFAULT_CHUNK_BYTES


def test_compression_defaults_are_off():
    spec = AggregationSpec()
    assert spec.compression == "none"
    assert spec.topk_ratio == 0.01
    assert spec.topk_k is None
    assert spec.error_feedback is False


def test_chunk_bytes_must_be_positive():
    with pytest.raises(ValueError, match="chunk_bytes"):
        AggregationSpec(chunk_bytes=0)
    with pytest.raises(ValueError, match="chunk_bytes"):
        AggregationSpec(chunk_bytes=-1.0)


def test_compression_knobs_are_validated():
    with pytest.raises(ValueError, match="compression must be one of"):
        AggregationSpec(compression="zstd")
    with pytest.raises(ValueError, match="topk_ratio"):
        AggregationSpec(compression="topk", topk_ratio=0.0)
    with pytest.raises(ValueError, match="topk_ratio"):
        AggregationSpec(compression="topk", topk_ratio=1.5)
    with pytest.raises(ValueError, match="topk_k"):
        AggregationSpec(compression="topk", topk_k=0)
    with pytest.raises(ValueError, match="error_feedback"):
        AggregationSpec(error_feedback=True)  # needs compression="topk"


def test_chunk_bytes_env_override():
    spec = AggregationSpec.from_env(environ={"SPARKER_CHUNK_BYTES": "65536"})
    assert spec.chunk_bytes == 65536.0


def test_dict_round_trip_with_approx_tier():
    spec = AggregationSpec(collective="pipelined_ring", chunk_bytes=1e6,
                           compression="topk", topk_ratio=0.1, topk_k=32,
                           error_feedback=True)
    assert AggregationSpec.from_dict(spec.to_dict()) == spec
