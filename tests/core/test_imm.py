"""Tests for in-memory merge: the mutable object manager and its
stage-restart failure semantics (paper §3.2)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core.imm import StaleMergeError
from repro.rdd import SparkerContext


@pytest.fixture
def sc():
    return SparkerContext(ClusterConfig.laptop(num_nodes=2))


def run_merge(sc, executor, object_id, attempt, value, op):
    proc = sc.env.process(
        executor.object_manager.merge(object_id, attempt, value, op))
    return sc.env.run(until=proc)


def test_first_merge_stores_value(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 10, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 10
    assert executor.object_manager.merge_count((0, 0)) == 1


def test_merges_accumulate(sc):
    executor = sc.executors[0]
    for v in (1, 2, 3):
        run_merge(sc, executor, (0, 0), 0, v, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 6
    assert executor.object_manager.merge_count((0, 0)) == 3


def test_clear_resets_object(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 5, lambda a, b: a + b)
    executor.object_manager.clear((0, 0))
    assert executor.object_manager.get((0, 0)) is None
    assert executor.object_manager.merge_count((0, 0)) == 0


def test_stale_attempt_rejected(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 1, 5, lambda a, b: a + b)  # attempt 1
    with pytest.raises(StaleMergeError):
        run_merge(sc, executor, (0, 0), 0, 7, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 5


def test_new_attempt_resets_value(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 5, lambda a, b: a + b)
    run_merge(sc, executor, (0, 0), 1, 7, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 7


def test_merge_charges_virtual_time(sc):
    executor = sc.executors[0]
    big = np.ones(1 << 16)
    run_merge(sc, executor, (0, 0), 0, big, lambda a, b: a + b)
    t0 = sc.env.now
    run_merge(sc, executor, (0, 0), 0, big.copy(), lambda a, b: a + b)
    assert sc.env.now > t0  # second merge paid merge-bandwidth time


def test_concurrent_merges_serialize_under_lock(sc):
    executor = sc.executors[0]
    order = []

    def slow_op(a, b):
        order.append("merge")
        return a + b

    procs = [
        sc.env.process(executor.object_manager.merge(
            (0, 0), 0, np.ones(1 << 14), slow_op))
        for _ in range(4)
    ]
    for proc in procs:
        sc.env.run(until=proc)
    np.testing.assert_allclose(executor.object_manager.get((0, 0)),
                               np.full(1 << 14, 4.0))
    assert len(order) == 3  # first merge just stores


# --------------------------------------------------- reduced-result stage
def test_run_reduced_job_merges_per_executor(sc):
    rdd = sc.parallelize(range(40), 8)
    holders = sc.run_reduced_job(
        rdd, lambda _i, data, _ctx: sum(data), lambda a, b: a + b)
    total = sum(sc.executor_by_id(eid).object_manager.get(oid)
                for eid, oid in holders)
    assert total == sum(range(40))
    # Fewer holders than partitions: merging happened inside executors.
    assert len(holders) <= len(sc.executors)


def test_reduced_job_task_failure_restarts_whole_stage(sc):
    """Paper §3.2: under IMM any task failure cleans the shared value and
    resubmits the stage; the final result must still be exact."""
    attempts = {"count": 0}

    def flaky(_i, data, _ctx):
        attempts["count"] += 1
        if attempts["count"] == 3:  # third task of the first wave dies
            raise RuntimeError("injected task failure")
        return sum(data)

    rdd = sc.parallelize(range(40), 8)
    holders = sc.run_reduced_job(rdd, flaky, lambda a, b: a + b)
    total = sum(sc.executor_by_id(eid).object_manager.get(oid)
                for eid, oid in holders)
    assert total == sum(range(40))
    # The whole stage reran: strictly more than 8 task executions.
    assert attempts["count"] > 8
    stage_attempts = [s for s in sc.dag.stage_log
                      if s.kind == "reduced_result"]
    assert len(stage_attempts) >= 2


def test_reduced_job_gives_up_after_max_attempts(sc):
    from repro.rdd import JobFailed

    def always_fails(_i, _data, _ctx):
        raise RuntimeError("hopeless")

    with pytest.raises(JobFailed):
        sc.run_reduced_job(sc.parallelize(range(8), 4), always_fails,
                           lambda a, b: a + b)


def test_executor_kill_clears_object_manager(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 5, lambda a, b: a + b)
    executor.kill()
    assert executor.object_manager.get((0, 0)) is None


# ---------------------------------------------------------- epoch fencing
def run_absorb(sc, executor, object_id, epoch, value, op):
    proc = sc.env.process(
        executor.object_manager.absorb(object_id, epoch, value, op))
    return sc.env.run(until=proc)


def test_fenced_object_rejects_task_merges(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 5, lambda a, b: a + b)
    executor.object_manager.fence((0, 0), 1)
    with pytest.raises(StaleMergeError):
        run_merge(sc, executor, (0, 0), 0, 7, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 5


def test_fence_is_monotonic_and_validated(sc):
    manager = sc.executors[0].object_manager
    run_merge(sc, sc.executors[0], (0, 0), 0, 1, lambda a, b: a + b)
    manager.fence((0, 0), 3)
    manager.fence((0, 0), 1)  # stale fence: no retreat
    assert manager.epoch_of((0, 0)) == 3
    with pytest.raises(ValueError):
        manager.fence((0, 0), 0)


def test_fence_unknown_object_is_noop(sc):
    manager = sc.executors[0].object_manager
    manager.fence((9, 9), 2)
    assert manager.epoch_of((9, 9)) == 0


def test_absorb_merges_at_matching_epoch(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 5, lambda a, b: a + b)
    executor.object_manager.fence((0, 0), 1)
    run_absorb(sc, executor, (0, 0), 1, 7, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 12
    assert executor.object_manager.merge_count((0, 0)) == 2


def test_absorb_at_stale_epoch_rejected(sc):
    executor = sc.executors[0]
    run_merge(sc, executor, (0, 0), 0, 5, lambda a, b: a + b)
    executor.object_manager.fence((0, 0), 2)
    with pytest.raises(StaleMergeError):
        run_absorb(sc, executor, (0, 0), 1, 7, lambda a, b: a + b)
    assert executor.object_manager.get((0, 0)) == 5


def test_absorb_into_unknown_object_rejected(sc):
    executor = sc.executors[0]
    with pytest.raises(StaleMergeError):
        run_absorb(sc, executor, (4, 4), 1, 7, lambda a, b: a + b)
