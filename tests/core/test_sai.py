"""Tests for splitAggregate — the paper's contribution (Figures 6/7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MB, ClusterConfig
from repro.ml.aggregators import (
    FlatAggregator,
    concat_op,
    reduce_op,
    split_op,
)
from repro.rdd import SparkerContext
from repro.serde import SizedPayload


@pytest.fixture
def sc():
    return SparkerContext(ClusterConfig.laptop(num_nodes=2))


def payload_split_args():
    return dict(
        seq_op=lambda a, x: a.merge_inplace(x),
        split_op=lambda u, i, n: u.split(i, n),
        reduce_op=lambda a, b: a.merge(b),
        concat_op=SizedPayload.concat,
    )


def test_split_aggregate_exact_sum(sc):
    data = [SizedPayload(np.full(32, float(i))) for i in range(20)]
    rdd = sc.parallelize(data, 8)
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(32)), parallelism=2,
        **payload_split_args())
    np.testing.assert_allclose(result.data,
                               np.sum([d.data for d in data], axis=0))


def test_split_matches_tree_aggregate(sc):
    data = [SizedPayload(np.arange(16, dtype=float) * i) for i in range(12)]
    rdd = sc.parallelize(data, 6).cache()
    rdd.count()
    zero = lambda: SizedPayload(np.zeros(16))  # noqa: E731
    tree = rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                              lambda a, b: a.merge(b))
    split = rdd.split_aggregate(zero, parallelism=3,
                                **payload_split_args())
    np.testing.assert_allclose(tree.data, split.data)


def test_split_aggregate_empty_rdd(sc):
    rdd = sc.parallelize([], 4)
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(8)), parallelism=2,
        **payload_split_args())
    np.testing.assert_allclose(result.data, np.zeros(8))


def test_split_aggregate_parallelism_validation(sc):
    rdd = sc.parallelize([SizedPayload(np.zeros(4))], 1)
    with pytest.raises(ValueError):
        rdd.split_aggregate(lambda: SizedPayload(np.zeros(4)),
                            parallelism=0, **payload_split_args())


def test_split_aggregate_uses_reduced_result_and_spawn_stages(sc):
    data = [SizedPayload(np.ones(8)) for _ in range(16)]
    rdd = sc.parallelize(data, 8)
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(8)), parallelism=2,
                        **payload_split_args())
    kinds = [s.kind for s in sc.dag.stage_log]
    names = [s.rdd_name for s in sc.dag.stage_log]
    assert "reduced_result" in kinds
    assert "SpawnRDD" in names
    # No shuffle at all: the scalable reduction replaced the tree.
    assert "shuffle_map" not in kinds


def test_split_aggregate_distinct_u_and_v_types(sc):
    """Figure 7's point: aggregator type U (FlatAggregator) differs from
    segment type V (AggregatorSegment); merge_op bridges the IMM merge."""
    from repro.ml.linalg import LabeledPoint, SparseVector

    points = [LabeledPoint(1.0, SparseVector(10, [i % 10], [1.0]))
              for i in range(30)]
    rdd = sc.parallelize(points, 6)

    def seq(agg: FlatAggregator, p: LabeledPoint) -> FlatAggregator:
        p.features.add_to(agg.payload)
        agg.add_stats(0.5, 1.0)
        return agg

    result = rdd.split_aggregate(
        lambda: FlatAggregator(10), seq, split_op, reduce_op, concat_op,
        parallelism=2, merge_op=lambda a, b: a.merge(b))
    assert isinstance(result, FlatAggregator)
    np.testing.assert_allclose(result.payload, np.full(10, 3.0))
    assert result.weight_sum == 30
    assert result.loss_sum == pytest.approx(15.0)


def test_split_aggregate_default_merge_for_u_equals_v(sc):
    """When U == V structurally, merge_op may be omitted (derived from
    splitOp + reduceOp on the whole object)."""
    data = [SizedPayload(np.full(8, 2.0)) for _ in range(10)]
    rdd = sc.parallelize(data, 5)
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(8)), parallelism=2,
        **payload_split_args())
    np.testing.assert_allclose(result.data, np.full(8, 20.0))


def test_split_aggregate_cleans_up_object_managers(sc):
    data = [SizedPayload(np.ones(8)) for _ in range(8)]
    rdd = sc.parallelize(data, 8)
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(8)), parallelism=2,
                        **payload_split_args())
    for executor in sc.executors:
        assert not executor.object_manager._entries


def test_split_scales_better_than_tree_for_large_aggregators():
    """Figure 16's headline at micro scale: split beats tree for big
    messages on a multi-node cluster, and by more as the cluster grows."""
    from repro.cluster import ClusterConfig

    def run(nodes, method):
        sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
        n = sc.cluster.total_cores
        data = [SizedPayload(np.ones(64), sim_bytes=32 * MB)
                for _ in range(n)]
        rdd = sc.parallelize(data, n).cache()
        rdd.count()
        zero = lambda: SizedPayload(np.zeros(64), sim_bytes=32 * MB)  # noqa: E731
        t0 = sc.now
        if method == "tree":
            rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                               lambda a, b: a.merge(b))
        else:
            rdd.split_aggregate(zero, parallelism=4, **payload_split_args())
        return sc.now - t0

    tree_2, split_2 = run(2, "tree"), run(2, "split")
    assert split_2 < tree_2
    tree_4, split_4 = run(4, "tree"), run(4, "split")
    assert tree_4 / split_4 > tree_2 / split_2  # advantage grows with scale


def test_stopwatch_split_phases(sc):
    data = [SizedPayload(np.ones(8)) for _ in range(8)]
    rdd = sc.parallelize(data, 8)
    rdd.split_aggregate(lambda: SizedPayload(np.zeros(8)), parallelism=2,
                        **payload_split_args())
    assert sc.stopwatch.total("agg.compute") > 0
    assert sc.stopwatch.total("agg.reduce") > 0


@settings(max_examples=10, deadline=None)
@given(n_items=st.integers(1, 30), elems=st.integers(1, 64),
       slices=st.integers(1, 8), parallelism=st.integers(1, 4),
       seed=st.integers(0, 100))
def test_split_aggregate_property_exact(n_items, elems, slices, parallelism,
                                        seed):
    """Property: splitAggregate == elementwise sum for any shape."""
    rng = np.random.default_rng(seed)
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    data = [SizedPayload(rng.integers(-50, 50, elems).astype(float))
            for _ in range(n_items)]
    rdd = sc.parallelize(data, slices)
    result = rdd.split_aggregate(
        lambda: SizedPayload(np.zeros(elems)), parallelism=parallelism,
        **payload_split_args())
    np.testing.assert_allclose(
        result.data, np.sum([d.data for d in data], axis=0))
