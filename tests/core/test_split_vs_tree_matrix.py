"""Cross-backend equivalence matrix: every aggregation path, same answer.

The single most important invariant of the reproduction: for any data and
any cluster shape, ``tree``, ``tree_imm`` and ``split`` aggregation are
*semantically identical* — they differ only in simulated time. This module
drives that invariant through a hypothesis-generated matrix of shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.ml.aggregators import FlatAggregator, concat_op, reduce_op, split_op
from repro.rdd import SparkerContext
from repro.serde import SizedPayload


@settings(max_examples=12, deadline=None)
@given(
    n_items=st.integers(1, 25),
    elems=st.integers(1, 48),
    slices=st.integers(1, 10),
    nodes=st.integers(1, 3),
    parallelism=st.integers(1, 3),
    seed=st.integers(0, 500),
)
def test_all_backends_identical_property(n_items, elems, slices, nodes,
                                         parallelism, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.integers(-9, 9, elems).astype(float)
              for _ in range(n_items)]
    expected = np.sum(arrays, axis=0)
    results = {}
    for backend in ("tree", "tree_imm", "split"):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=nodes))
        data = [SizedPayload(a.copy()) for a in arrays]
        rdd = sc.parallelize(data, slices)
        zero = lambda: SizedPayload(np.zeros(elems))  # noqa: E731
        if backend == "split":
            out = rdd.split_aggregate(
                zero, lambda acc, x: acc.merge_inplace(x),
                lambda u, i, n: u.split(i, n),
                lambda a, b: a.merge(b), SizedPayload.concat,
                parallelism=parallelism)
        else:
            out = rdd.tree_aggregate(
                zero, lambda acc, x: acc.merge_inplace(x),
                lambda a, b: a.merge(b), imm=(backend == "tree_imm"))
        results[backend] = out.data
        np.testing.assert_allclose(out.data, expected)
    np.testing.assert_array_equal(results["tree"], results["tree_imm"])
    np.testing.assert_array_equal(results["tree"], results["split"])


@settings(max_examples=8, deadline=None)
@given(
    n_points=st.integers(1, 40),
    dim=st.integers(1, 30),
    slices=st.integers(1, 8),
    seed=st.integers(0, 200),
)
def test_flat_aggregator_backends_property(n_points, dim, slices, seed):
    """Same invariant through the ML-facing FlatAggregator path."""
    from repro.ml.linalg import LabeledPoint, SparseVector

    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n_points):
        nnz = int(rng.integers(1, dim + 1))
        idx = np.sort(rng.choice(dim, nnz, replace=False))
        points.append(LabeledPoint(
            float(rng.integers(0, 2)),
            SparseVector(dim, idx, rng.standard_normal(nnz))))
    expected = np.zeros(dim)
    for p in points:
        p.features.add_to(expected)

    def seq(agg: FlatAggregator, p) -> FlatAggregator:
        p.features.add_to(agg.payload)
        agg.add_stats(p.label, 1.0)
        return agg

    outputs = {}
    for backend in ("tree", "split"):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
        rdd = sc.parallelize(points, slices)
        zero = lambda: FlatAggregator(dim)  # noqa: E731
        if backend == "split":
            agg = rdd.split_aggregate(
                zero, seq, split_op, reduce_op, concat_op,
                parallelism=2, merge_op=lambda a, b: a.merge(b))
        else:
            agg = rdd.tree_aggregate(zero, seq, lambda a, b: a.merge(b))
        outputs[backend] = agg
        np.testing.assert_allclose(agg.payload, expected, atol=1e-9)
        assert agg.weight_sum == n_points
    np.testing.assert_allclose(outputs["tree"].buf, outputs["split"].buf)
