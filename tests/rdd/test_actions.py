"""Action semantics: collect, count, take, reduce, fold, aggregate."""

import pytest

from repro.rdd import JobFailed


def test_count(sc):
    assert sc.parallelize(range(37), 5).count() == 37


def test_first_and_take(sc):
    rdd = sc.parallelize(range(100), 10)
    assert rdd.first() == 0
    assert rdd.take(5) == [0, 1, 2, 3, 4]
    assert rdd.take(0) == []
    assert rdd.take(1000) == list(range(100))


def test_take_scans_incrementally(sc):
    rdd = sc.parallelize(range(100), 10)
    rdd.take(3)
    # Only the first wave of partitions should have been scanned.
    assert sc.dag.stage_log[-1].num_tasks < 10


def test_take_negative_rejected(sc):
    with pytest.raises(ValueError):
        sc.parallelize(range(4), 2).take(-1)


def test_reduce(sc):
    assert sc.parallelize(range(1, 11), 4).reduce(lambda a, b: a * b) == \
        3628800


def test_reduce_with_empty_partitions(sc):
    # 3 elements over 8 slices leaves empty partitions; reduce must skip them.
    assert sc.parallelize([5, 6, 7], 8).reduce(lambda a, b: a + b) == 18


def test_reduce_empty_rdd_raises(sc):
    with pytest.raises(ValueError):
        sc.parallelize([], 4).reduce(lambda a, b: a + b)


def test_fold(sc):
    assert sc.parallelize(range(10), 4).fold(0, lambda a, b: a + b) == 45


def test_sum(sc):
    assert sc.parallelize(range(10), 4).sum() == 45


def test_aggregate(sc):
    # Compute (sum, count) in one pass.
    total, count = sc.parallelize(range(20), 4).aggregate(
        (0, 0),
        lambda acc, x: (acc[0] + x, acc[1] + 1),
        lambda a, b: (a[0] + b[0], a[1] + b[1]))
    assert (total, count) == (190, 20)


def test_foreach_runs_side_effects(sc):
    seen = []
    sc.parallelize(range(5), 2).foreach(seen.append)
    assert sorted(seen) == list(range(5))


def test_tree_reduce(sc):
    assert sc.parallelize(range(64), 16).tree_reduce(lambda a, b: a + b) == \
        sum(range(64))


def test_tree_reduce_empty_raises(sc):
    with pytest.raises(ValueError):
        sc.parallelize([], 4).tree_reduce(lambda a, b: a + b)


def test_tree_aggregate_matches_aggregate(sc):
    rdd = sc.parallelize(range(50), 10)
    seq = lambda acc, x: acc + x * x  # noqa: E731
    comb = lambda a, b: a + b  # noqa: E731
    assert rdd.tree_aggregate(0, seq, comb) == rdd.aggregate(0, seq, comb)


def test_stopped_context_rejects_jobs(sc):
    rdd = sc.parallelize(range(4), 2)
    sc.stop()
    with pytest.raises(RuntimeError):
        rdd.collect()
    with pytest.raises(RuntimeError):
        sc.parallelize([1])


def test_actions_are_deterministic_in_time():
    from repro.cluster import ClusterConfig
    from repro.rdd import SparkerContext

    def run():
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
        sc.parallelize(range(200), 8).map(lambda x: x + 1).count()
        sc.parallelize(range(100), 8).reduce(lambda a, b: a + b)
        return sc.now

    assert run() == run()
