"""Fixtures for dataflow-engine tests."""

import pytest

from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext


@pytest.fixture
def sc():
    """A small 2-node laptop-class context (8 cores total)."""
    return SparkerContext(ClusterConfig.laptop(num_nodes=2))


@pytest.fixture
def sc_bic():
    """A 2-node BIC context (48 cores)."""
    return SparkerContext(ClusterConfig.bic(num_nodes=2))
