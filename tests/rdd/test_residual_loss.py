"""Executor death reports the top-k error-feedback mass it destroys."""

import numpy as np
import pytest

from repro import AggregationSpec
from repro.cluster import ClusterConfig
from repro.obs import ResidualLost
from repro.obs.analysis import analyze_events
from repro.rdd import SparkerContext
from repro.serde import SizedPayload


def test_kill_emits_residual_lost(sc):
    events = []
    sc.event_bus.subscribe(events.append)
    executor = sc.executor_by_id(0)
    executor.residuals[(1, 0)] = np.array([3.0, 4.0])
    executor.residuals[(1, 1)] = np.array([0.0, 0.0])
    executor.kill(reason="chaos test")
    losses = [e for e in events if isinstance(e, ResidualLost)]
    assert len(losses) == 1
    (loss,) = losses
    assert loss.executor_id == 0
    assert loss.num_residuals == 2
    assert loss.residual_norm == pytest.approx(5.0)
    assert loss.reason == "chaos test"
    assert not executor.residuals  # cleared after reporting


def test_kill_without_residuals_is_silent(sc):
    events = []
    sc.event_bus.subscribe(events.append)
    sc.executor_by_id(0).kill()
    assert [e for e in events if isinstance(e, ResidualLost)] == []


def test_untraced_kill_emits_nothing(sc):
    executor = sc.executor_by_id(0)
    executor.residuals[(1, 0)] = np.array([1.0])
    executor.kill()  # no subscriber: bus inactive, no event construction
    assert not executor.residuals


def test_real_topk_residuals_reported_and_analyzed():
    """After an error-feedback top-k aggregation, killing a holder emits
    the accumulated residual mass and the fault report totals it."""
    from repro.ml.aggregators import (
        FlatAggregator,
        concat_op,
        reduce_op,
        split_op,
    )

    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    events = []
    sc.event_bus.subscribe(events.append)
    rng = np.random.default_rng(7)
    data = [rng.normal(size=256) for _ in range(8)]

    def seq(agg, vec):
        np.add(agg.payload, vec, out=agg.payload)
        agg.add_stats(0.0, 1.0)
        return agg

    sc.parallelize(data, 4).split_aggregate(
        lambda: FlatAggregator(256), seq, split_op, reduce_op, concat_op,
        merge_op=lambda a, b: a.merge(b),
        spec=AggregationSpec(parallelism=2, compression="topk",
                             topk_k=16, error_feedback=True))
    victim = next(e for e in sc.executors if e.residuals)
    victim.kill()
    losses = [e for e in events if isinstance(e, ResidualLost)]
    assert len(losses) == 1
    assert losses[0].residual_norm > 0.0
    report = analyze_events(events).faults
    assert report.residual_losses == losses
    assert report.residual_norm_lost == pytest.approx(
        losses[0].residual_norm)
    assert report.observed
