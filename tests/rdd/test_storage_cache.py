"""Caching, storage levels, block tracking, and locality."""

import pytest

from repro.rdd import StorageLevel
from repro.rdd.storage import BlockTracker, MemoryStore


def test_cache_avoids_recompute(sc):
    calls = []

    def spy(x):
        calls.append(x)
        return x

    rdd = sc.parallelize(range(10), 2).map(spy).cache()
    rdd.count()
    first_pass = len(calls)
    rdd.count()
    assert len(calls) == first_pass  # second action hit the cache


def test_uncached_recomputes(sc):
    calls = []

    def spy(x):
        calls.append(x)
        return x

    rdd = sc.parallelize(range(10), 2).map(spy)
    rdd.count()
    rdd.count()
    assert len(calls) == 20


def test_unpersist_drops_blocks(sc):
    rdd = sc.parallelize(range(10), 2).cache()
    rdd.count()
    assert any(len(e.memory_store) for e in sc.executors)
    rdd.unpersist()
    assert all(len(e.memory_store) == 0 for e in sc.executors)
    assert rdd.collect() == list(range(10))  # recomputes fine


def test_cached_partitions_prefer_their_executor(sc):
    rdd = sc.parallelize(range(8), 4).cache()
    rdd.count()
    for index in range(4):
        holders = rdd.preferred_executors(index)
        assert len(holders) == 1
        executor = sc.executor_by_id(holders[0])
        assert executor.memory_store.contains((rdd.id, index))


def test_persist_rejects_unknown_level(sc):
    with pytest.raises(ValueError):
        sc.parallelize(range(2), 1).persist("DISK_ONLY")


def test_cache_uses_virtual_time(sc):
    rdd = sc.parallelize(range(100), 4).cache()
    rdd.count()
    t_cached = sc.now
    rdd.count()
    assert sc.now > t_cached  # actions still cost scheduling time


def test_derived_rdd_prefers_parent_location(sc):
    base = sc.parallelize(range(8), 4).cache()
    base.count()
    derived = base.map(lambda x: x + 1)
    for index in range(4):
        assert derived.preferred_executors(index) == \
            base.preferred_executors(index)


# ------------------------------------------------------------- MemoryStore
def test_memory_store_put_get_remove():
    store = MemoryStore(executor_id=0, capacity_bytes=1e9)
    size = store.put((1, 0), [1, 2, 3])
    assert size > 0
    assert store.get((1, 0)) == [1, 2, 3]
    assert store.size_of((1, 0)) == size
    assert store.contains((1, 0))
    assert store.remove((1, 0))
    assert not store.remove((1, 0))
    assert store.get((1, 0)) is None


def test_memory_store_overwrite_updates_usage():
    store = MemoryStore(0, 1e9)
    store.put((1, 0), [1] * 10, sim_bytes=100)
    store.put((1, 0), [1] * 10, sim_bytes=300)
    assert store.used_bytes == 300


def test_memory_store_remove_rdd():
    store = MemoryStore(0, 1e9)
    store.put((1, 0), "a")
    store.put((1, 1), "b")
    store.put((2, 0), "c")
    assert store.remove_rdd(1) == 2
    assert len(store) == 1
    assert store.get((2, 0)) == "c"


# ------------------------------------------------------------ BlockTracker
def test_block_tracker_register_and_locations():
    tracker = BlockTracker()
    tracker.register((1, 0), 3)
    tracker.register((1, 0), 5)
    tracker.register((1, 0), 3)  # duplicate ignored
    assert tracker.locations((1, 0)) == [3, 5]
    assert tracker.locations((9, 9)) == []


def test_block_tracker_unregister_executor():
    tracker = BlockTracker()
    tracker.register((1, 0), 3)
    tracker.register((1, 1), 3)
    tracker.register((1, 1), 4)
    assert tracker.unregister_executor(3) == 2
    assert tracker.locations((1, 0)) == []
    assert tracker.locations((1, 1)) == [4]


def test_block_tracker_unregister_rdd():
    tracker = BlockTracker()
    tracker.register((1, 0), 3)
    tracker.register((2, 0), 3)
    tracker.unregister_rdd(1)
    assert tracker.locations((1, 0)) == []
    assert tracker.locations((2, 0)) == [3]


def test_storage_level_constants():
    assert StorageLevel.MEMORY_ONLY == "MEMORY_ONLY"
    assert StorageLevel.NONE is None
