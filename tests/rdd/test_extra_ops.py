"""Tests for the extended RDD operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext


def test_zip_with_index_global_order(sc):
    data = ["a", "b", "c", "d", "e"]
    result = sc.parallelize(data, 3).zip_with_index().collect()
    assert result == [(x, i) for i, x in enumerate(data)]


def test_zip_with_index_empty_partitions(sc):
    result = sc.parallelize([10, 20], 5).zip_with_index().collect()
    assert result == [(10, 0), (20, 1)]


def test_cartesian(sc):
    left = sc.parallelize([1, 2], 2)
    right = sc.parallelize(["a", "b"], 2)
    assert sorted(left.cartesian(right).collect()) == [
        (1, "a"), (1, "b"), (2, "a"), (2, "b")]


def test_cartesian_with_empty(sc):
    assert sc.parallelize([1], 1).cartesian(
        sc.parallelize([], 1)).collect() == []


def test_intersection(sc):
    a = sc.parallelize([1, 2, 2, 3, 4], 3)
    b = sc.parallelize([2, 3, 3, 5], 2)
    assert sorted(a.intersection(b).collect()) == [2, 3]


def test_intersection_disjoint(sc):
    a = sc.parallelize([1, 2], 2)
    b = sc.parallelize([3, 4], 2)
    assert a.intersection(b).collect() == []


def test_subtract(sc):
    a = sc.parallelize([1, 1, 2, 3], 2)
    b = sc.parallelize([2], 1)
    # Multiset semantics: both copies of 1 survive.
    assert sorted(a.subtract(b).collect()) == [1, 1, 3]


def test_count_by_key(sc):
    rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
    assert rdd.count_by_key() == {"a": 2, "b": 1}


def test_count_by_value(sc):
    rdd = sc.parallelize(["x", "y", "x", "x"], 2)
    assert rdd.count_by_value() == {"x": 3, "y": 1}


def test_top(sc):
    data = [5, 1, 9, 3, 7]
    assert sc.parallelize(data, 3).top(2) == [9, 7]


def test_top_with_key(sc):
    data = ["aaa", "b", "cc"]
    assert sc.parallelize(data, 2).top(2, key=len) == ["aaa", "cc"]


def test_take_ordered(sc):
    data = [5, 1, 9, 3, 7]
    assert sc.parallelize(data, 3).take_ordered(3) == [1, 3, 5]


def test_take_ordered_zero_and_validation(sc):
    rdd = sc.parallelize([1, 2], 2)
    assert rdd.take_ordered(0) == []
    with pytest.raises(ValueError):
        rdd.take_ordered(-1)


def test_take_ordered_more_than_size(sc):
    assert sc.parallelize([3, 1], 2).take_ordered(10) == [1, 3]


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(-100, 100), max_size=40),
       n=st.integers(0, 10), slices=st.integers(1, 6))
def test_take_ordered_property(values, n, slices):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    assert sc.parallelize(values, slices).take_ordered(n) == \
        sorted(values)[:n]


@settings(max_examples=15, deadline=None)
@given(left=st.lists(st.integers(0, 10), max_size=25),
       right=st.lists(st.integers(0, 10), max_size=25))
def test_intersection_property(left, right):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    got = sorted(sc.parallelize(left, 3).intersection(
        sc.parallelize(right, 3)).collect())
    assert got == sorted(set(left) & set(right))
