"""Tests for accumulators (exactly-once metric semantics)."""

import pytest

from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext


def test_accumulator_counts_elements(sc):
    acc = sc.accumulator(0, name="records")

    def count(x):
        acc.add(1)
        return x

    sc.parallelize(range(25), 5).map(count).collect()
    assert acc.value == 25


def test_accumulator_iadd_syntax(sc):
    acc = sc.accumulator(0.0)

    def bump(x):
        nonlocal acc
        acc += x
        return x

    sc.parallelize([1.0, 2.0, 3.0], 2).map(bump).count()
    assert acc.value == pytest.approx(6.0)


def test_accumulator_custom_monoid(sc):
    biggest = sc.accumulator(float("-inf"), add_op=max, name="max")

    def observe(x):
        biggest.add(float(x))
        return x

    sc.parallelize([3, 9, 1, 7], 2).map(observe).count()
    assert biggest.value == 9.0


def test_driver_side_add_is_immediate(sc):
    acc = sc.accumulator(0)
    acc.add(5)
    assert acc.value == 5


def test_failed_attempt_contributes_nothing(sc):
    """Exactly-once: a task that fails after adding must not leak its
    update; the retried attempt contributes once."""
    acc = sc.accumulator(0, name="adds")
    attempts = {"n": 0}

    def flaky(x):
        acc.add(1)
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("post-add failure")
        return x

    assert sc.parallelize([42], 1).map(flaky).collect() == [42]
    assert attempts["n"] == 2  # ran twice...
    assert acc.value == 1      # ...but counted once


def test_multiple_accumulators_independent(sc):
    evens = sc.accumulator(0)
    odds = sc.accumulator(0)

    def tally(x):
        (evens if x % 2 == 0 else odds).add(1)
        return x

    sc.parallelize(range(10), 4).map(tally).count()
    assert evens.value == 5
    assert odds.value == 5


def test_accumulator_not_readable_in_tasks(sc):
    acc = sc.accumulator(0)

    def peek(x):
        return acc.value  # reading inside a task must fail

    with pytest.raises(RuntimeError, match="inside a task"):
        sc.parallelize([1], 1).map(peek).collect()


def test_accumulator_reset(sc):
    acc = sc.accumulator(0)
    acc.add(3)
    acc.reset()
    assert acc.value == 0


def test_accumulator_updates_once_per_action(sc):
    acc = sc.accumulator(0)
    rdd = sc.parallelize(range(10), 2).map(
        lambda x: (acc.add(1), x)[1])
    rdd.count()
    rdd.count()  # uncached: recompute adds again (Spark-faithful gotcha)
    assert acc.value == 20


def test_accumulator_with_cached_rdd_counts_once(sc):
    acc = sc.accumulator(0)
    rdd = sc.parallelize(range(10), 2).map(
        lambda x: (acc.add(1), x)[1]).cache()
    rdd.count()
    rdd.count()  # cache hit: no recompute, no double counting
    assert acc.value == 10
