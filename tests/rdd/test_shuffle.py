"""Shuffle semantics: reduceByKey, foldByKey, groupByKey, partitionBy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.rdd import HashPartitioner, ModuloPartitioner, SparkerContext


def test_reduce_by_key(sc):
    rdd = sc.parallelize([(k % 3, 1) for k in range(30)], 6)
    assert sorted(rdd.reduce_by_key(lambda a, b: a + b).collect()) == \
        [(0, 10), (1, 10), (2, 10)]


def test_reduce_by_key_custom_partitions(sc):
    rdd = sc.parallelize([(k, k) for k in range(10)], 5)
    out = rdd.reduce_by_key(lambda a, b: a + b, num_partitions=2)
    assert out.num_partitions() == 2
    assert sorted(out.collect()) == [(k, k) for k in range(10)]


def test_group_by_key(sc):
    rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 3)
    grouped = dict(rdd.group_by_key().collect())
    assert sorted(grouped["a"]) == [1, 3]
    assert grouped["b"] == [2]


def test_fold_by_key_with_modulo_partitioner(sc):
    rdd = sc.parallelize([(i % 4, 1) for i in range(40)], 8)
    out = rdd.fold_by_key(0, lambda a, b: a + b, ModuloPartitioner(4))
    assert sorted(out.collect()) == [(k, 10) for k in range(4)]
    # ModuloPartitioner puts key k in partition k.
    chunks = out.glom().collect()
    for partition_idx, chunk in enumerate(chunks):
        for key, _v in chunk:
            assert key % 4 == partition_idx


def test_partition_by_without_combine_keeps_records(sc):
    rdd = sc.parallelize([(1, "a"), (1, "b"), (2, "c")], 2)
    out = rdd.partition_by(HashPartitioner(2))
    assert sorted(out.collect()) == [(1, "a"), (1, "b"), (2, "c")]


def test_shuffle_then_transform(sc):
    result = (sc.parallelize([(i % 5, i) for i in range(50)], 10)
              .reduce_by_key(lambda a, b: a + b)
              .map_values(lambda v: v // 10)
              .collect())
    assert sorted(result) == [(k, sum(range(k, 50, 5)) // 10)
                              for k in range(5)]


def test_chained_shuffles(sc):
    # Two shuffles in one lineage: wordcount then histogram of counts.
    words = ["a", "b", "a", "c", "b", "a"] * 3
    counts = (sc.parallelize(words, 4)
              .map(lambda w: (w, 1))
              .reduce_by_key(lambda a, b: a + b))
    histogram = (counts
                 .map(lambda kv: (kv[1], 1))
                 .reduce_by_key(lambda a, b: a + b))
    assert sorted(histogram.collect()) == [(3, 1), (6, 1), (9, 1)]


def test_shuffle_reuses_map_outputs(sc):
    rdd = sc.parallelize([(i % 2, 1) for i in range(8)], 4) \
        .reduce_by_key(lambda a, b: a + b)
    rdd.collect()
    stages_after_first = len(sc.dag.stage_log)
    rdd.collect()
    # Second action reuses the registered map outputs: only a result stage.
    new_stages = sc.dag.stage_log[stages_after_first:]
    assert [s.kind for s in new_stages] == ["result"]


def test_map_side_combine_reduces_shuffle_volume(sc_bic):
    sc = sc_bic
    data = [(i % 2, 1) for i in range(4000)]
    rdd = sc.parallelize(data, 8).reduce_by_key(lambda a, b: a + b)
    rdd.collect()
    # With map-side combining, at most partitions*keys records cross the
    # wire (8 * 2 = 16), not 4000.
    total_bucket_records = sum(
        len(bucket[0])
        for executor in sc.executors
        for bucket in executor.shuffle_store._buckets.values())
    assert total_bucket_records <= 16


def test_partitioner_equality_and_validation():
    assert HashPartitioner(4) == HashPartitioner(4)
    assert HashPartitioner(4) != HashPartitioner(5)
    assert HashPartitioner(4) != ModuloPartitioner(4)
    assert hash(HashPartitioner(3)) == hash(HashPartitioner(3))
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_shuffle_after_cache(sc):
    base = sc.parallelize([(i % 3, i) for i in range(30)], 6).cache()
    base.count()
    out = base.reduce_by_key(lambda a, b: a + b)
    assert sorted(out.collect()) == [
        (k, sum(range(k, 30, 3))) for k in range(3)]


@settings(max_examples=20, deadline=None)
@given(pairs=st.lists(
    st.tuples(st.integers(0, 9), st.integers(-50, 50)), max_size=60),
    slices=st.integers(1, 8))
def test_reduce_by_key_matches_dict_reference(pairs, slices):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    result = dict(sc.parallelize(pairs, slices)
                  .reduce_by_key(lambda a, b: a + b).collect())
    expected = {}
    for k, v in pairs:
        expected[k] = expected.get(k, 0) + v
    assert result == expected
