"""Focused tests for the cost-annotation layer used by every workload."""

import pytest

from repro.cluster import ClusterConfig
from repro.rdd import ELEMENT_OVERHEAD, Costed, SparkerContext, cost_of


def test_element_overhead_constant_is_sane():
    # ~50ns per record: between raw iteration and JVM-boxed dispatch.
    assert 1e-9 < ELEMENT_OVERHEAD < 1e-6


def test_bulk_map_charges_scale_with_data():
    def run(n):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
        sc.parallelize(range(n), 2).map(lambda x: x).count()
        return sc.now

    # 100k extra elements at ~50ns each: visible but modest.
    assert run(100_000) > run(10)


def test_costed_flat_map(sc):
    fn = Costed(lambda x: [x, x], 0.1)
    t0 = sc.now
    sc.parallelize(range(8), 4).flat_map(fn).count()
    # Eight elements at 0.1s each, 4-way parallel across 8 cores: >= 0.2s.
    assert sc.now - t0 >= 0.2


def test_costed_filter(sc):
    fn = Costed(lambda x: x % 2 == 0, 0.05)
    t0 = sc.now
    sc.parallelize(range(16), 8).filter(fn).count()
    assert sc.now - t0 >= 0.05


def test_costed_map_partitions(sc):
    fn = Costed(lambda part: [sum(part)], lambda part: 0.1 * len(part))
    t0 = sc.now
    sc.parallelize(range(20), 4).map_partitions(fn).collect()
    assert sc.now - t0 >= 0.5  # 20 elements x 0.1 / 4 partitions in parallel


def test_costed_reduce_ops_charge_in_actions(sc):
    op = Costed(lambda a, b: a + b, 0.2)
    t0 = sc.now
    sc.parallelize(range(4), 4).reduce(op)
    # Driver merges 4 partials: 3 merges x 0.2 at least.
    assert sc.now - t0 >= 0.6


def test_costed_in_tree_aggregate_seqop(sc):
    seq = Costed(lambda acc, x: acc + x, 0.1)
    t0 = sc.now
    sc.parallelize(range(8), 2).tree_aggregate(0, seq, lambda a, b: a + b)
    # 8 samples x 0.1s over 2 parallel partitions: >= 0.4s of compute.
    assert sc.now - t0 >= 0.4


def test_costed_zero_cost_is_free(sc):
    plain = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    plain.parallelize(range(8), 4).map(lambda x: x).count()
    annotated = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    annotated.parallelize(range(8), 4).map(Costed(lambda x: x, 0.0)).count()
    assert annotated.now == pytest.approx(plain.now)
