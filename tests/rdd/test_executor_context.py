"""Tests for executor internals, broadcast, costing, and the context API."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.rdd import Broadcast, Costed, SparkerContext, cost_of
from repro.rdd.task_context import TaskContext


# ----------------------------------------------------------------- executor
def test_task_slots_limit_concurrency(sc):
    """More tasks than cluster cores: stages take multiple waves."""
    cfg = ClusterConfig.laptop(num_nodes=1)  # 4 cores
    sc1 = SparkerContext(cfg)
    one_wave = SparkerContext(cfg)

    heavy = Costed(lambda x: x, 1.0)  # 1 virtual second per element
    sc1.parallelize(range(4), 4).map(heavy).count()
    t_four = sc1.now
    one_wave.parallelize(range(8), 8).map(heavy).count()
    t_eight = one_wave.now
    # 8 unit tasks on 4 cores take ~2x the time of 4 tasks.
    assert t_eight > 1.7 * t_four


def test_tasks_run_counter(sc):
    sc.parallelize(range(8), 8).count()
    assert sum(e.tasks_run for e in sc.executors) == 8


def test_tasks_spread_across_executors(sc):
    sc.parallelize(range(16), 16).count()
    busy = [e for e in sc.executors if e.tasks_run > 0]
    assert len(busy) == len(sc.executors)


# ---------------------------------------------------------------- broadcast
def test_broadcast_value_accessible(sc):
    bc = sc.broadcast({"weights": [1, 2, 3]})
    assert bc.value == {"weights": [1, 2, 3]}
    assert bc.sim_bytes > 0


def test_broadcast_costs_virtual_time(sc):
    t0 = sc.now
    sc.broadcast(np.zeros(1 << 20))  # 8 MB
    assert sc.now > t0


def test_broadcast_destroy(sc):
    bc = sc.broadcast("payload")
    bc.destroy()
    with pytest.raises(RuntimeError):
        _ = bc.value


def test_broadcast_usable_in_closures(sc):
    bc = sc.broadcast(10)
    result = sc.parallelize(range(5), 2).map(lambda x: x * bc.value) \
        .collect()
    assert result == [0, 10, 20, 30, 40]


def test_broadcast_ids_increment(sc):
    a, b = sc.broadcast(1), sc.broadcast(2)
    assert b.id == a.id + 1


# ------------------------------------------------------------------ costing
def test_costed_callable_and_cost():
    f = Costed(lambda x: x + 1, lambda x: x * 0.5)
    assert f(4) == 5
    assert f.cost(4) == 2.0
    assert cost_of(f, 4) == 2.0
    assert cost_of(lambda x: x, 4) == 0.0  # un-annotated


def test_costed_constant_cost():
    f = Costed(lambda x: x, 0.25)
    assert f.cost("anything") == 0.25


def test_costed_validation():
    with pytest.raises(TypeError):
        Costed("not callable", 1.0)
    with pytest.raises(TypeError):
        Costed(lambda: None, "not a cost")
    f = Costed(lambda x: x, lambda x: -1.0)
    with pytest.raises(ValueError):
        f.cost(1)


def test_costed_map_charges_virtual_time(sc):
    cheap = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    cheap.parallelize(range(8), 4).map(lambda x: x).count()

    costly = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    costly.parallelize(range(8), 4).map(Costed(lambda x: x, 0.5)).count()
    assert costly.now > cheap.now + 0.4


# -------------------------------------------------------------- TaskContext
def test_task_context_charge_accumulates():
    ctx = TaskContext(0, 0, 0, executor=None)
    ctx.charge(1.0)
    ctx.charge(0.5)
    assert ctx.charged == 1.5
    assert ctx.drain_charges() == 1.5
    assert ctx.charged == 0.0


def test_task_context_rejects_negative():
    ctx = TaskContext(0, 0, 0, executor=None)
    with pytest.raises(ValueError):
        ctx.charge(-0.1)


# ------------------------------------------------------------------ context
def test_context_now_monotone(sc):
    times = [sc.now]
    for _ in range(3):
        sc.parallelize(range(10), 2).count()
        times.append(sc.now)
    assert times == sorted(times)
    assert times[-1] > times[0]


def test_driver_work_serializes(sc):
    procs = [sc.env.process(sc.driver_work(1.0)) for _ in range(3)]
    for p in procs:
        sc.env.run(until=p)
    assert sc.now == pytest.approx(3.0)


def test_driver_fetch_pool_is_concurrent(sc):
    threads = sc.config.driver_result_threads
    procs = [sc.env.process(sc.driver_fetch_work(1.0))
             for _ in range(threads)]
    for p in procs:
        sc.env.run(until=p)
    assert sc.now == pytest.approx(1.0)


def test_driver_work_validation(sc):
    proc = sc.env.process(sc.driver_work(-1.0))
    with pytest.raises(ValueError):
        sc.env.run(until=proc)


def test_default_parallelism_is_total_cores(sc):
    assert sc.default_parallelism == sc.cluster.total_cores
    rdd = sc.parallelize(range(1000))
    assert rdd.num_partitions() == sc.default_parallelism
