"""Tests for cogroup / join / sortBy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext


def test_cogroup_groups_both_sides(sc):
    left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
    right = sc.parallelize([("a", "x"), ("c", "y")], 2)
    result = dict(left.cogroup(right).collect())
    assert sorted(result["a"][0]) == [1, 3]
    assert result["a"][1] == ["x"]
    assert result["b"] == ([2], [])
    assert result["c"] == ([], ["y"])


def test_inner_join(sc):
    left = sc.parallelize([(1, "a"), (2, "b"), (2, "c")], 2)
    right = sc.parallelize([(2, "X"), (2, "Y"), (3, "Z")], 2)
    rows = sorted(left.join(right).collect())
    assert rows == [(2, ("b", "X")), (2, ("b", "Y")),
                    (2, ("c", "X")), (2, ("c", "Y"))]


def test_left_outer_join(sc):
    left = sc.parallelize([(1, "a"), (2, "b")], 2)
    right = sc.parallelize([(2, "X")], 1)
    rows = sorted(left.left_outer_join(right).collect())
    assert rows == [(1, ("a", None)), (2, ("b", "X"))]


def test_join_empty_right(sc):
    left = sc.parallelize([(1, "a")], 1)
    right = sc.parallelize([], 1)
    assert left.join(right).collect() == []


def test_sort_by_ascending(sc):
    data = [5, 3, 9, 1, 7, 2, 8]
    result = sc.parallelize(data, 3).sort_by(lambda x: x)
    assert result.collect() == sorted(data)


def test_sort_by_descending(sc):
    data = [5, 3, 9, 1, 7]
    result = sc.parallelize(data, 2).sort_by(lambda x: x, ascending=False)
    assert result.collect() == sorted(data, reverse=True)


def test_sort_by_key_function(sc):
    data = [("bb", 2), ("a", 1), ("ccc", 3)]
    result = sc.parallelize(data, 2).sort_by(lambda kv: len(kv[0]))
    assert result.collect() == [("a", 1), ("bb", 2), ("ccc", 3)]


def test_sort_empty(sc):
    assert sc.parallelize([], 2).sort_by(lambda x: x).collect() == []


def test_sort_with_duplicates(sc):
    data = [3, 1, 3, 2, 1, 3]
    assert sc.parallelize(data, 3).sort_by(lambda x: x).collect() == \
        sorted(data)


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(-1000, 1000), max_size=50),
       slices=st.integers(1, 6))
def test_sort_property(values, slices):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    assert sc.parallelize(values, slices).sort_by(lambda x: x).collect() \
        == sorted(values)


@settings(max_examples=15, deadline=None)
@given(
    left=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)),
                  max_size=20),
    right=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)),
                   max_size=20),
)
def test_join_matches_reference(left, right):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    got = sorted(sc.parallelize(left, 3).join(
        sc.parallelize(right, 3)).collect())
    expected = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2)
    assert got == expected
