"""Unit tests for the parallel host-compute backend.

The pool is a memoization layer under the DAG scheduler: pure task bodies
are precomputed on worker processes and *replayed* into the simulation.
These tests pin the contract pieces the integration parity tests can't
see directly: claim accounting, inline fallback for impure work, and the
worker-count plumbing.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.rdd.context import SparkerContext
from repro.rdd.hostpool import HostPool


def test_pool_size_one_is_disabled():
    sc = SparkerContext(ClusterConfig.bic(2), host_pool=1)
    assert sc.host_pool is None
    assert sc.parallelize(range(10), 2).sum() == 45
    sc.stop()


def test_pure_map_job_is_precomputed_and_claimed():
    pool = HostPool(2)
    sc = SparkerContext(ClusterConfig.bic(2), host_pool=pool)
    data = list(range(100))
    result = sc.parallelize(data, 4).map(lambda x: x * x).collect()
    assert result == [x * x for x in data]
    assert pool.stats["precomputed"] > 0
    assert pool.stats["claimed"] == pool.stats["precomputed"]
    sc.stop()


def test_pool_results_match_inline_results():
    rng = np.random.default_rng(0)
    values = rng.standard_normal(64)

    def job(host_pool):
        sc = SparkerContext(ClusterConfig.bic(2), host_pool=host_pool)
        total = (sc.parallelize(values, 4)
                 .map(lambda x: np.float64(x) * 3.0)
                 .reduce(lambda a, b: a + b))
        now = sc.now
        sc.stop()
        return total, now

    inline_total, inline_now = job(None)
    pooled_total, pooled_now = job(2)
    # Byte-equal result and identical virtual time: the pool is invisible.
    assert np.float64(pooled_total).tobytes() == \
        np.float64(inline_total).tobytes()
    assert pooled_now == inline_now


def test_inline_mode_skips_workers():
    pool = HostPool(4, mode="inline")
    sc = SparkerContext(ClusterConfig.bic(2), host_pool=pool)
    assert sc.parallelize(range(20), 2).map(lambda x: x + 1).sum() == 210
    assert pool.stats["claimed"] == pool.stats["precomputed"]
    sc.stop()


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        HostPool(2, mode="threads-of- share")


def test_small_pooled_array_results_are_writable():
    # Memos under the shared-memory size threshold ship their NumPy
    # buffers in-band; they must come back *writable* (bytearray, not
    # bytes) because downstream merges mutate pooled partials in place.
    sc = SparkerContext(ClusterConfig.bic(2), host_pool=2)
    try:
        total = (sc.parallelize(range(8), 4)
                 .map(lambda x: np.full(16, float(x)))  # 128 B << 4 KiB
                 .reduce(lambda a, b: a.__iadd__(b)))
        assert total.flags.writeable
        assert total[0] == float(sum(range(8)))
    finally:
        sc.stop()
