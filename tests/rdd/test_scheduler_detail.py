"""Scheduler detail tests: stage log, retries, locality decisions."""

import pytest

from repro.cluster import ClusterConfig
from repro.rdd import JobFailed, SparkerContext
from repro.rdd.scheduler import MAX_TASK_FAILURES


def test_stage_log_records_every_stage(sc):
    sc.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a + b).collect()
    kinds = [s.kind for s in sc.dag.stage_log]
    assert kinds == ["shuffle_map", "result"]
    for stage in sc.dag.stage_log:
        assert stage.finished_at >= stage.submitted_at
        assert stage.duration >= 0


def test_stage_ids_unique_and_increasing(sc):
    for _ in range(3):
        sc.parallelize(range(4), 2).count()
    ids = [s.stage_id for s in sc.dag.stage_log]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


def test_flaky_task_retries_until_success(sc):
    attempts = {"n": 0}

    def flaky(x):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("transient")
        return x

    # One partition so the single flaky call happens on the first task.
    result = sc.parallelize([1], 1).map(flaky).collect()
    assert result == [1]
    assert attempts["n"] == 2


def test_permanent_failure_gives_up(sc):
    def broken(_x):
        raise RuntimeError("permanent")

    with pytest.raises(RuntimeError, match="permanent"):
        sc.parallelize([1], 1).map(broken).collect()


def test_retry_budget_is_bounded(sc):
    calls = {"n": 0}

    def broken(_x):
        calls["n"] += 1
        raise RuntimeError("always")

    with pytest.raises(RuntimeError):
        sc.parallelize([1], 1).map(broken).collect()
    assert calls["n"] == MAX_TASK_FAILURES


def test_retries_prefer_fresh_executors(sc):
    seen = []

    def flaky(x):
        # TaskContext isn't visible here; track via block registration
        # side channel instead: fail twice, then succeed.
        seen.append(1)
        if len(seen) <= 2:
            raise RuntimeError("flaky")
        return x

    assert sc.parallelize([7], 1).map(flaky).collect() == [7]
    assert len(seen) == 3


def test_failure_in_shuffle_map_stage_retries(sc):
    attempts = {"n": 0}

    def flaky_kv(x):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("map-side flake")
        return (x % 2, x)

    result = sc.parallelize(range(6), 1).map(flaky_kv) \
        .reduce_by_key(lambda a, b: a + b).collect()
    assert sorted(result) == [(0, 6), (1, 9)]


def test_stage_attempt_recorded_on_imm_restart(sc):
    calls = {"n": 0}

    def flaky(_i, data, _ctx):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("boom")
        return sum(data)

    sc.run_reduced_job(sc.parallelize(range(8), 4), flaky,
                       lambda a, b: a + b)
    reduced = [s for s in sc.dag.stage_log if s.kind == "reduced_result"]
    assert [s.attempt for s in reduced] == [0, 1]
    # Same stage id across attempts (it is a resubmission).
    assert len({s.stage_id for s in reduced}) == 1


def test_locality_puts_tasks_on_cached_executors(sc):
    rdd = sc.parallelize(range(8), 4).cache()
    rdd.count()
    holders = {i: rdd.preferred_executors(i)[0] for i in range(4)}
    before = {e.executor_id: e.tasks_run for e in sc.executors}
    rdd.count()
    after = {e.executor_id: e.tasks_run for e in sc.executors}
    ran = {eid for eid in after if after[eid] > before[eid]}
    assert ran == set(holders.values())
