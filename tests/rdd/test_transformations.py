"""RDD transformation semantics, checked against plain-Python references."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.rdd import SparkerContext


def test_parallelize_collect_round_trip(sc):
    data = list(range(57))
    assert sc.parallelize(data, 7).collect() == data


def test_parallelize_preserves_order_across_partitions(sc):
    data = [f"x{i}" for i in range(23)]
    assert sc.parallelize(data, 5).collect() == data


def test_empty_rdd(sc):
    rdd = sc.parallelize([], 4)
    assert rdd.collect() == []
    assert rdd.count() == 0


def test_num_slices_validation(sc):
    with pytest.raises(ValueError):
        sc.parallelize([1, 2], 0)


def test_map(sc):
    assert sc.parallelize(range(10), 3).map(lambda x: x * x).collect() == \
        [x * x for x in range(10)]


def test_filter(sc):
    assert sc.parallelize(range(20), 4).filter(lambda x: x % 3 == 0) \
        .collect() == [x for x in range(20) if x % 3 == 0]


def test_flat_map(sc):
    assert sc.parallelize(range(5), 2).flat_map(lambda x: [x] * x) \
        .collect() == [x for x in range(5) for _ in range(x)]


def test_map_partitions(sc):
    result = sc.parallelize(range(12), 4).map_partitions(
        lambda part: [sum(part)]).collect()
    assert sum(result) == sum(range(12))
    assert len(result) == 4


def test_map_partitions_with_index(sc):
    result = sc.parallelize(range(8), 4).map_partitions_with_index(
        lambda idx, part: [(idx, len(part))]).collect()
    assert [idx for idx, _n in result] == [0, 1, 2, 3]
    assert sum(n for _idx, n in result) == 8


def test_glom(sc):
    chunks = sc.parallelize(range(10), 3).glom().collect()
    assert len(chunks) == 3
    assert [x for chunk in chunks for x in chunk] == list(range(10))


def test_key_by_and_values(sc):
    rdd = sc.parallelize(range(6), 2).key_by(lambda x: x % 2)
    assert rdd.keys().collect() == [0, 1, 0, 1, 0, 1]
    assert rdd.values().collect() == list(range(6))


def test_map_values(sc):
    rdd = sc.parallelize([(1, 2), (3, 4)], 2).map_values(lambda v: v * 10)
    assert rdd.collect() == [(1, 20), (3, 40)]


def test_union(sc):
    a = sc.parallelize([1, 2, 3], 2)
    b = sc.parallelize([4, 5], 2)
    u = a.union(b)
    assert u.num_partitions() == 4
    assert u.collect() == [1, 2, 3, 4, 5]


def test_union_chain(sc):
    a = sc.parallelize([1], 1)
    b = sc.parallelize([2], 1)
    c = sc.parallelize([3], 1)
    assert a.union(b).union(c).collect() == [1, 2, 3]


def test_coalesce(sc):
    rdd = sc.parallelize(range(16), 8).coalesce(3)
    assert rdd.num_partitions() == 3
    assert rdd.collect() == list(range(16))


def test_coalesce_to_more_partitions_is_capped(sc):
    rdd = sc.parallelize(range(4), 2).coalesce(10)
    assert rdd.num_partitions() == 2


def test_coalesce_validation(sc):
    with pytest.raises(ValueError):
        sc.parallelize(range(4), 2).coalesce(0)


def test_sample_deterministic_and_bounded(sc):
    rdd = sc.parallelize(range(1000), 8)
    s1 = rdd.sample(0.3, seed=5).collect()
    s2 = rdd.sample(0.3, seed=5).collect()
    assert s1 == s2
    assert 150 < len(s1) < 450
    assert set(s1) <= set(range(1000))


def test_sample_fraction_validation(sc):
    with pytest.raises(ValueError):
        sc.parallelize(range(4), 2).sample(1.5)


def test_distinct(sc):
    rdd = sc.parallelize([1, 2, 2, 3, 3, 3], 3)
    assert sorted(rdd.distinct().collect()) == [1, 2, 3]


def test_chained_transformations(sc):
    result = (sc.parallelize(range(30), 5)
              .map(lambda x: x + 1)
              .filter(lambda x: x % 2 == 0)
              .flat_map(lambda x: [x, -x])
              .collect())
    expected = []
    for x in range(30):
        y = x + 1
        if y % 2 == 0:
            expected.extend([y, -y])
    assert result == expected


def test_lazy_evaluation_no_jobs_before_action(sc):
    rdd = sc.parallelize(range(10), 2).map(lambda x: x)
    assert sc.dag.stage_log == []
    rdd.collect()
    assert len(sc.dag.stage_log) == 1


def test_transformations_advance_virtual_time(sc):
    before = sc.now
    sc.parallelize(range(100), 8).map(lambda x: x * 2).collect()
    assert sc.now > before


@settings(max_examples=25, deadline=None)
@given(data=st.lists(st.integers(-100, 100), max_size=60),
       slices=st.integers(1, 12))
def test_map_filter_property(data, slices):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=1))
    result = (sc.parallelize(data, slices)
              .map(lambda x: x * 3)
              .filter(lambda x: x > 0)
              .collect())
    assert result == [x * 3 for x in data if x * 3 > 0]
