"""Fault injection: executor loss, lineage recovery, shuffle refetch."""

import pytest

from repro.cluster import ClusterConfig
from repro.rdd import ExecutorLost, SparkerContext


def test_kill_executor_before_job_reroutes_tasks(sc):
    sc.kill_executor(0)
    assert sc.parallelize(range(20), 4).count() == 20
    dead = sc.executor_by_id(0)
    assert dead.tasks_run == 0


def test_cached_blocks_lost_on_executor_death_recompute(sc):
    rdd = sc.parallelize(range(12), 4).cache()
    rdd.count()
    victims = {rdd.preferred_executors(i)[0] for i in range(4)}
    victim = sorted(victims)[0]
    sc.kill_executor(victim)
    # Lineage recompute: the collect still returns the full data.
    assert rdd.collect() == list(range(12))
    # Blocks re-registered on live executors only.
    for index in range(4):
        for holder in rdd.preferred_executors(index):
            assert sc.executor_by_id(holder).alive


def test_shuffle_outputs_lost_triggers_map_stage_resubmit(sc):
    shuffled = sc.parallelize([(i % 3, 1) for i in range(30)], 4) \
        .reduce_by_key(lambda a, b: a + b)
    shuffled.collect()
    # Find an executor holding map outputs and kill it.
    holder = next(e for e in sc.executors if len(e.shuffle_store))
    stage_count = len(sc.dag.stage_log)
    sc.kill_executor(holder.executor_id)
    assert sorted(shuffled.collect()) == [(0, 10), (1, 10), (2, 10)]
    kinds = [s.kind for s in sc.dag.stage_log[stage_count:]]
    assert "shuffle_map" in kinds  # parent stage was resubmitted


def test_all_executors_dead_fails_job(sc):
    for executor in sc.executors:
        executor.kill()
    with pytest.raises(ExecutorLost):
        sc.parallelize(range(4), 2).count()


def test_kill_is_idempotent(sc):
    sc.kill_executor(0)
    sc.kill_executor(0)
    assert not sc.executor_by_id(0).alive


def test_unknown_executor_id(sc):
    with pytest.raises(KeyError):
        sc.kill_executor(999)


def test_mid_job_executor_loss_retries_tasks():
    """Kill an executor while its tasks are in flight: the scheduler must
    retry the interrupted attempts elsewhere and still return correct
    results."""
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(range(40), 8)

    def killer():
        yield sc.env.timeout(0.015)  # inside the first wave of tasks
        sc.executor_by_id(0).kill()

    sc.env.process(killer())
    assert rdd.count() == 40
    assert not sc.executor_by_id(0).alive


def test_results_identical_with_and_without_faults():
    def run(inject):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
        if inject:
            sc.kill_executor(1)
        return sorted(
            sc.parallelize([(i % 4, i) for i in range(40)], 8)
            .reduce_by_key(lambda a, b: a + b).collect())

    assert run(False) == run(True)


def test_fault_slows_down_but_completes():
    def elapsed(inject):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
        rdd = sc.parallelize(range(64), 8).cache()
        rdd.count()
        if inject:
            holder = rdd.preferred_executors(0)[0]
            sc.kill_executor(holder)
        t0 = sc.now
        rdd.collect()
        return sc.now - t0

    assert elapsed(True) >= elapsed(False)
