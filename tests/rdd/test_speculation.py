"""Speculative execution: straggler cloning, commit fencing, determinism.

Spark's ``spark.speculation`` analogue: with ``sc.speculation`` armed, a
monitor clones attempts running far past the median completed duration
onto healthy executors; the first copy to reach the commit gate wins and
the loser is fenced *before* it can emit output or publish accumulator
updates. Unarmed (the default), none of the machinery exists and every
run is bit-identical to the seed scheduler.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.obs import SpeculativeAttempt
from repro.rdd import SparkerContext, SpeculationPolicy
from repro.rdd.costing import Costed
from repro.rdd.speculation import (
    SPECULATIVE_ATTEMPT_BASE,
    CommitGate,
    SpeculationWave,
    _median,
)

ELEMENTS = 32
PARTITIONS = 8
COST = 0.05


def run_map_job(speculate=False, straggler_factor=None, listener=None):
    """One costed map job; returns (results, makespan, accumulator)."""
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    if speculate:
        sc.speculation = SpeculationPolicy()
    if straggler_factor is not None:
        sc.executor_by_id(0).compute_scale = straggler_factor
    if listener is not None:
        sc.event_bus.subscribe(listener)
    acc = sc.accumulator(0, name="adds")

    def bump(x):
        acc.add(1)
        return x * 2

    result = (sc.parallelize(range(ELEMENTS), PARTITIONS)
              .map(Costed(bump, COST)).collect())
    return result, sc.now, acc.value


# ------------------------------------------------------- zero-perturbation
def test_unarmed_is_the_default():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    assert sc.speculation is None


def test_armed_without_stragglers_is_invisible():
    """Monitor wakeups alone must not shift results, time, or counts."""
    base_result, base_now, base_acc = run_map_job(speculate=False)
    armed_result, armed_now, armed_acc = run_map_job(speculate=True)
    assert armed_result == base_result
    assert armed_now == base_now
    assert armed_acc == base_acc == ELEMENTS


def test_armed_without_stragglers_launches_nothing():
    events = []
    run_map_job(speculate=True, listener=events.append)
    assert [e for e in events if isinstance(e, SpeculativeAttempt)] == []


# ------------------------------------------------------------- speculation
def test_clone_rescues_straggler_makespan():
    _, slow_now, _ = run_map_job(straggler_factor=8.0)
    events = []
    result, spec_now, acc = run_map_job(speculate=True, straggler_factor=8.0,
                                        listener=events.append)
    assert result == [x * 2 for x in range(ELEMENTS)]
    assert acc == ELEMENTS
    assert spec_now < slow_now
    actions = [e.action for e in events
               if isinstance(e, SpeculativeAttempt)]
    assert "launched" in actions and "speculative_won" in actions


def test_speculative_attempt_numbers_disjoint_from_retries():
    events = []
    run_map_job(speculate=True, straggler_factor=8.0,
                listener=events.append)
    for event in events:
        if isinstance(event, SpeculativeAttempt):
            assert event.attempt >= SPECULATIVE_ATTEMPT_BASE
            assert event.backup_executor_id != event.executor_id


def test_accumulator_exactly_once_under_race():
    """The losing copy is fenced before its accumulator updates publish:
    duplicated attempts never double-count."""
    for factor in (2.0, 4.0, 16.0):
        _, _, acc = run_map_job(speculate=True, straggler_factor=factor)
        assert acc == ELEMENTS, f"double count at factor {factor}"


# -------------------------------------------------------------- determinism
def test_two_runs_identical_event_streams():
    """Fixed seed, fixed plan: the full serialized event stream (clone
    launches, race outcomes, timings) must be identical across runs."""
    def capture():
        events = []
        result, now, acc = run_map_job(speculate=True, straggler_factor=8.0,
                                       listener=events.append)
        return result, now, acc, [e.to_record() for e in events]

    first, second = capture(), capture()
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]
    assert first[3] == second[3]


# --------------------------------------------------- split_aggregate fencing
def test_imm_waves_never_speculate():
    """Reduced-result stages merge into shared mutable objects; cloning
    their tasks would double-merge. The wave must exclude them — and the
    aggregation still completes exactly."""
    import numpy as np

    from repro import AggregationSpec
    from repro.serde import SizedPayload

    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    sc.speculation = SpeculationPolicy()
    sc.executor_by_id(0).compute_scale = 8.0
    events = []
    sc.event_bus.subscribe(events.append)
    data = [SizedPayload(np.full(16, float(i))) for i in range(24)]
    result = sc.parallelize(data, 8).split_aggregate(
        lambda: SizedPayload(np.zeros(16)),
        seq_op=lambda a, x: a.merge_inplace(x),
        split_op=lambda u, i, n: u.split(i, n),
        reduce_op=lambda a, b: a.merge(b),
        concat_op=SizedPayload.concat,
        spec=AggregationSpec(parallelism=2))
    np.testing.assert_array_equal(
        result.data, np.sum([np.full(16, float(i)) for i in range(24)],
                            axis=0))
    stage_ids = {e.stage_id for e in events
                 if isinstance(e, SpeculativeAttempt)}
    imm_stages = {s.stage_id for s in sc.dag.stage_log
                  if s.kind == "reduced_result"}
    assert not (stage_ids & imm_stages)


# ------------------------------------------------------------ unit: pieces
def test_policy_validation():
    with pytest.raises(ValueError, match="quantile"):
        SpeculationPolicy(quantile=0.0)
    with pytest.raises(ValueError, match="multiplier"):
        SpeculationPolicy(multiplier=0.5)
    with pytest.raises(ValueError, match="interval"):
        SpeculationPolicy(interval=0.0)
    with pytest.raises(ValueError, match="min_tasks"):
        SpeculationPolicy(min_tasks=0)


def test_commit_gate_first_claim_wins():
    gate = CommitGate()
    assert gate.claim(3, (0, 0))
    assert not gate.claim(3, (1, 100))
    assert gate.claim(3, (0, 0))  # idempotent for the holder
    assert gate.winner(3) == (0, 0)


def test_commit_gate_release_reopens_only_for_holder():
    gate = CommitGate()
    gate.claim(3, (0, 0))
    gate.release(3, (1, 100))  # loser's release is a no-op
    assert gate.winner(3) == (0, 0)
    gate.release(3, (0, 0))
    assert gate.winner(3) is None
    assert gate.claim(3, (1, 100))


def test_median():
    assert _median([3.0]) == 3.0
    assert _median([1.0, 3.0]) == 2.0
    assert _median([5.0, 1.0, 3.0]) == 3.0


def test_threshold_needs_quorum_and_runners():
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    wave = SpeculationWave(sc.env, total=4)
    policy = SpeculationPolicy(quantile=0.75, multiplier=2.0)
    assert wave.threshold(policy) is None  # no evidence at all
    wave.durations.extend([1.0, 1.0, 2.0])
    assert wave.threshold(policy) is None  # quorum met but nothing runs
    wave.running[7] = (0.0, 1, None)
    assert wave.threshold(policy) == pytest.approx(2.0)
    wave.durations.pop()
    assert wave.threshold(policy) is None  # back below the quorum
