"""JobServer tests: lifecycle, quotas, cancellation, shared cache, teardown."""

import pytest

from repro.cluster import ClusterConfig
from repro.service import (
    JobServer,
    JobStatus,
    PoolConfig,
    QuotaExceeded,
)


def make_server(**kwargs):
    return JobServer(ClusterConfig.laptop(), **kwargs)


def count_job(sc, n=64, parts=8):
    def body():
        return sc.parallelize(range(n), parts).count()
    return body


def test_submit_wait_returns_result():
    with make_server() as server:
        record = server.submit(count_job(server.sc), workload="count")
        server.wait(record)
        assert record.status == JobStatus.SUCCEEDED
        assert record.result == 64
        assert record.latency is not None and record.latency > 0


def test_jobs_run_concurrently():
    with make_server() as server:
        records = [server.submit(count_job(server.sc), workload=f"c{i}")
                   for i in range(3)]
        server.drain()
        assert all(r.status == JobStatus.SUCCEEDED for r in records)
        # overlap: each later job started before the earlier one finished
        for earlier, later in zip(records, records[1:]):
            assert later.started < earlier.finished


def test_failure_is_isolated_to_its_job():
    with make_server() as server:
        def bad():
            server.sc.parallelize(range(8), 4).count()
            raise RuntimeError("driver bug")
        failed = server.submit(bad, workload="bad")
        good = server.submit(count_job(server.sc), workload="good")
        server.drain()
        assert failed.status == JobStatus.FAILED
        assert isinstance(failed.exception, RuntimeError)
        assert good.status == JobStatus.SUCCEEDED and good.result == 64
        # the failed job's slots were returned
        for executor in server.sc.executors:
            assert executor.task_slots.in_use == 0


def test_quota_queues_then_rejects():
    pools = {"small": PoolConfig(max_running=1, max_queued=1)}
    with make_server(pools=pools) as server:
        first = server.submit(count_job(server.sc), pool="small")
        second = server.submit(count_job(server.sc), pool="small")
        assert first.status == JobStatus.RUNNING
        assert second.status == JobStatus.QUEUED
        with pytest.raises(QuotaExceeded, match="small"):
            server.submit(count_job(server.sc), pool="small")
        server.drain()
        assert first.status == JobStatus.SUCCEEDED
        assert second.status == JobStatus.SUCCEEDED


def test_cancel_queued_job_never_runs():
    pools = {"small": PoolConfig(max_running=1)}
    with make_server(pools=pools) as server:
        running = server.submit(count_job(server.sc), pool="small")
        queued = server.submit(count_job(server.sc), pool="small")
        assert server.cancel(queued)
        server.drain()
        assert queued.status == JobStatus.CANCELLED
        assert queued.started is None
        assert running.status == JobStatus.SUCCEEDED


def test_cancel_mid_stage_cleans_up():
    with make_server() as server:
        sc = server.sc
        env = sc.env

        def long_job():
            rdd = sc.parallelize(range(256), 8).cache()
            total = 0
            for _ in range(50):
                total = rdd.reduce(lambda a, b: a + b)
            return total

        victim = server.submit(long_job, workload="victim")
        bystander = server.submit(count_job(sc), workload="bystander")
        # run until the victim is mid-execution, then cancel it
        server.cooperator.pump(
            lambda: victim.started is not None and env.now > victim.started)
        assert server.cancel(victim, reason="user abort")
        server.drain()
        assert victim.status == JobStatus.CANCELLED
        assert bystander.status == JobStatus.SUCCEEDED
        # lineage cleanup: no IMM object of any engine job the victim's
        # scope submitted survives on any executor
        for job_id in victim.scope.job_ids:
            for executor in sc.executors:
                assert not any(oid[0] == job_id
                               for oid in executor.object_manager._entries)
        # all task slots returned; no parked workers, queue drains clean
        for executor in sc.executors:
            assert executor.task_slots.in_use == 0
        # the server still accepts and completes new work
        after = server.submit(count_job(sc), workload="after")
        server.wait(after)
        assert after.result == 64


def test_cancel_finished_job_returns_false():
    with make_server() as server:
        record = server.submit(count_job(server.sc))
        server.wait(record)
        assert not server.cancel(record)


def test_shared_loader_runs_once():
    with make_server() as server:
        calls = []

        def job():
            def loader():
                calls.append(1)
                rdd = server.sc.parallelize(range(64), 8).cache()
                rdd.count()
                return rdd
            rdd = server.shared("dataset", loader)
            return rdd.count()

        records = [server.submit(job) for _ in range(4)]
        server.drain()
        assert [r.result for r in records] == [64] * 4
        assert len(calls) == 1


def test_jobs_can_wait_on_jobs():
    with make_server() as server:
        upstream = server.submit(count_job(server.sc), workload="up")

        def downstream():
            server.wait(upstream)
            return upstream.result * 2

        down = server.submit(downstream, workload="down")
        server.drain()
        assert down.result == 128


def test_close_is_idempotent_and_rejects_new_work():
    server = make_server()
    server.submit(count_job(server.sc))
    server.drain()
    server.close()
    server.close()
    with pytest.raises(RuntimeError, match="closed"):
        server.submit(count_job(server.sc))


def test_teardown_clears_bus_after_mid_job_failure():
    server = make_server()
    sc = server.sc
    seen = []

    def leaky():
        sc.event_bus.subscribe(lambda event: seen.append(event))
        sc.parallelize(range(8), 4).count()
        raise RuntimeError("job died without unsubscribing")

    record = server.submit(leaky)
    server.drain()
    assert record.status == JobStatus.FAILED
    assert seen  # listener was live during the job
    server.close()
    assert not sc.event_bus.active
    before = len(seen)
    # a stopped context emits to nobody
    sc.stop()
    assert len(seen) == before


def test_cancelled_via_handle_exception_type():
    with make_server() as server:
        sc = server.sc

        def long_job():
            for _ in range(100):
                sc.parallelize(range(64), 8).count()

        record = server.submit(long_job)
        server.cooperator.pump(lambda: record.started is not None)
        server.cancel(record)
        server.drain()
        assert record.status == JobStatus.CANCELLED
        assert record.exception is None or isinstance(
            record.exception, BaseException)
