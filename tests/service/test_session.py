"""SparkerSession tests: run/submit parity, spec policy, legacy shims."""

import warnings

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core.spec import AggregationSpec
from repro.bench.workloads import run_workload
from repro.service import JobCancelled, PoolConfig, SparkerSession
from repro.service import session as session_mod
from repro.service.session import service_spec


CFG = ClusterConfig.laptop(num_nodes=2)


def test_run_matches_run_workload_exactly():
    via_session = SparkerSession(CFG).run("LR-A", iterations=2, partitions=4)
    via_legacy = run_workload("LR-A", CFG, iterations=2, partitions=4)
    assert via_session.end_to_end == via_legacy.end_to_end
    assert via_session.final_loss == via_legacy.final_loss
    assert np.array_equal(via_session.final_weights,
                          via_legacy.final_weights)


def test_concurrent_submissions_match_isolated_runs():
    with SparkerSession(CFG) as session:
        handles = {
            name: session.submit(name, tenant=name, iterations=2,
                                 partitions=4)
            for name in ("LR-A", "SVM-A")
        }
        session.server.drain()
        for name, handle in handles.items():
            isolated = SparkerSession(CFG).run(name, iterations=2,
                                               partitions=4)
            assert np.array_equal(handle.result().final_weights,
                                  isolated.final_weights), name


def test_split_submission_matches_isolated_run():
    spec = AggregationSpec(parallelism=2)
    with SparkerSession(CFG) as session:
        handle = session.submit("LR-A", spec, aggregation="split",
                                iterations=2, partitions=4)
        isolated = SparkerSession(CFG).run("LR-A", spec=spec,
                                           aggregation="split",
                                           iterations=2, partitions=4)
        assert np.array_equal(handle.result().final_weights,
                              isolated.final_weights)


def test_service_spec_rejects_topk_compression():
    with pytest.raises(ValueError, match="error-feedback"):
        service_spec(AggregationSpec(compression="topk"))


def test_service_spec_rejects_recovery_policy():
    from repro.faults.plan import RecoveryPolicy
    with pytest.raises(ValueError, match="recovery"):
        service_spec(AggregationSpec(recovery=RecoveryPolicy()))


def test_service_spec_downgrades_pipelined_ring_warning_once():
    session_mod._warned_downgrades.discard("pipelined_ring")
    with pytest.warns(RuntimeWarning, match="pipelined_ring"):
        adapted = service_spec(AggregationSpec(collective="pipelined_ring"))
    assert adapted.collective == "ring"
    # second downgrade is silent (warn-once)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = service_spec(AggregationSpec(collective="pipelined_ring"))
    assert again.collective == "ring"


def test_run_workload_legacy_kwargs_still_warn():
    with pytest.warns(DeprecationWarning, match="run_workload"):
        run_workload("LR-A", CFG, iterations=1, partitions=4,
                     parallelism=2)
    # the historical int-positional spec still works, with a warning
    with pytest.warns(DeprecationWarning, match="run_workload"):
        result = run_workload("LR-A", CFG, iterations=1, partitions=4,
                              spec=2)
    assert result.final_weights is not None


def test_handle_lifecycle_and_cancelled_queued_raises():
    pools = {"narrow": PoolConfig(max_running=1)}
    with SparkerSession(CFG, pools=pools) as session:
        first = session.submit("LR-A", pool="narrow", iterations=1,
                               partitions=4)
        second = session.submit("LR-A", pool="narrow", iterations=1,
                                partitions=4)
        assert not second.done()
        assert second.cancel("changed my mind")
        result = first.result()
        assert first.done() and first.status() == "succeeded"
        assert first.latency is not None and first.latency > 0
        assert result.final_weights is not None
        with pytest.raises(JobCancelled):
            second.result()


def test_session_repr_and_lazy_server():
    session = SparkerSession(CFG)
    assert "service not started" in repr(session)
    session.close()  # closing a never-started service is a no-op
    with SparkerSession(CFG) as live:
        live.submit("LR-A", iterations=1, partitions=4)
        live.server.drain()
        assert "service not started" not in repr(live)
