"""FAIR arbiter tests: weighted shares, accounting, slot invariants."""

import pytest

from repro.cluster import ClusterConfig
from repro.service import JobServer, PoolConfig


def burst_server(pools):
    return JobServer(ClusterConfig.laptop(num_nodes=2), pools=pools)


def spin_job(sc, rounds=20):
    def body():
        rdd = sc.parallelize(range(8192), 4).cache()
        for _ in range(rounds):
            rdd.map(lambda x: x * 2).count()
    return body


def test_weighted_shares_respect_pool_weights():
    pools = {"heavy": PoolConfig(weight=3.0), "light": PoolConfig(weight=1.0)}
    with burst_server(pools) as server:
        for pool in pools:
            for _ in range(4):
                server.submit(spin_job(server.sc, rounds=200), pool=pool)
        env = server.sc.env
        samples = []

        def monitor():
            while True:
                yield env.timeout(1.0)
                samples.append((server.arbiter.snapshot(),
                                server.arbiter.queued()))

        env.process(monitor(), name="monitor", critical=True)
        # Weighted fairness only arbitrates *contention*: once a pool's
        # burst drains, accumulated task_seconds converge on total work
        # done (equal by construction here). Sample while tickets are
        # still queued and both pools have accumulated real runtime.
        server.cooperator.pump(
            lambda: samples and samples[-1][1] > 0 and min(
                samples[-1][0][pool]["task_seconds"] for pool in pools) > 10.0)
        snapshot, queued = samples[-1]
        assert queued > 0
        raw = {pool: snapshot[pool]["task_seconds"] for pool in pools}
        # the weight-3 pool must be getting strictly more slot-seconds...
        assert raw["heavy"] > raw["light"], raw
        # ...and the weighted shares must stay within the 2x FAIR bound
        shares = {pool: raw[pool] / pools[pool].weight for pool in pools}
        ratio = max(shares.values()) / min(shares.values())
        assert ratio <= 2.0, shares
        server.drain()


def test_unknown_pool_autoregisters_at_weight_one():
    with burst_server(None) as server:
        record = server.submit(spin_job(server.sc, rounds=1), pool="surprise")
        server.drain()
        assert record.status == "succeeded"
        assert server.arbiter.pools["surprise"].weight == 1.0


def test_resource_waiter_queue_stays_empty():
    # The arbiter must own all queueing: the Resource's own FIFO waiter
    # list staying empty is what makes cancellation unable to strand a
    # slot (see repro.service.fair).
    pools = {"a": PoolConfig(weight=2.0), "b": PoolConfig(weight=1.0)}
    with burst_server(pools) as server:
        for pool in pools:
            for _ in range(3):
                server.submit(spin_job(server.sc, rounds=5), pool=pool)
        env = server.sc.env
        violations = []

        def check():
            while True:
                yield env.timeout(0.5)
                for executor in server.sc.executors:
                    if executor.task_slots._waiters:
                        violations.append(env.now)

        env.process(check(), name="invariant", critical=True)
        server.drain()
        assert not violations
        for executor in server.sc.executors:
            assert executor.task_slots.in_use == 0


def test_snapshot_and_queued_shapes():
    pools = {"x": PoolConfig(weight=2.0)}
    with burst_server(pools) as server:
        server.submit(spin_job(server.sc, rounds=1), pool="x")
        server.drain()
        snapshot = server.arbiter.snapshot()
        assert set(snapshot) >= {"x"}
        assert {"weight", "running", "task_seconds"} <= set(snapshot["x"])
        assert snapshot["x"]["task_seconds"] > 0
        assert server.arbiter.queued() == 0


def test_pool_config_validates_weight():
    with pytest.raises(ValueError):
        PoolConfig(weight=0.0)
    with pytest.raises(ValueError):
        PoolConfig(weight=-1.0)


def test_one_server_per_context():
    with burst_server(None) as server:
        with pytest.raises(RuntimeError, match="already has"):
            JobServer(sc=server.sc)
