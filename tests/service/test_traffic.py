"""Traffic-generator tests: determinism, replay identity, quota bounces."""

import numpy as np

from repro.cluster import ClusterConfig
from repro.core.spec import AggregationSpec
from repro.service import (
    PoolConfig,
    SparkerSession,
    TenantProfile,
    arrival_schedule,
    run_open_loop,
)


CFG = ClusterConfig.laptop(num_nodes=2)

TENANTS = (
    TenantProfile("alice", pool="gold", workloads=("LR-A",),
                  mean_interarrival=20.0, jobs=2, iterations=1,
                  partitions=4),
    TenantProfile("bob", pool="bronze", workloads=("SVM-A",),
                  specs=(AggregationSpec(parallelism=2),),
                  aggregation="split", mean_interarrival=15.0, jobs=2,
                  iterations=1, partitions=4),
)


def test_schedule_is_deterministic_and_sorted():
    first = arrival_schedule(TENANTS, seed=7)
    second = arrival_schedule(TENANTS, seed=7)
    assert first == second
    assert len(first) == sum(t.jobs for t in TENANTS)
    assert [a.time for a in first] == sorted(a.time for a in first)
    # a different seed moves the arrival times
    assert arrival_schedule(TENANTS, seed=8) != first


def test_burst_submits_back_to_back():
    burster = TenantProfile("sweep", jobs=6, burst=3,
                            mean_interarrival=50.0)
    schedule = arrival_schedule((burster,), seed=1)
    assert len(schedule) == 6
    times = [a.time for a in schedule]
    # 6 jobs in 2 bursts: exactly 2 distinct arrival instants
    assert len(set(times)) == 2


def test_signature_ignores_arrival_time():
    a, b = arrival_schedule(
        (TenantProfile("t", workloads=("LR-A",), jobs=2, iterations=1),),
        seed=3)
    assert a.time != b.time
    assert a.signature == b.signature


def test_open_loop_matches_isolated_runs():
    with SparkerSession(CFG) as session:
        result = run_open_loop(session, TENANTS, seed=11)
    assert not result.rejections
    assert result.by_status() == {"succeeded": 4}
    assert result.makespan > 0
    assert len(result.latencies) == 4
    assert result.percentile(0.5) <= result.percentile(0.99)
    # every concurrent job's weights byte-identical to a fresh isolated
    # run of the same signature
    isolated = {}
    for arrival, handle in result.submissions:
        sig = arrival.signature
        if sig not in isolated:
            isolated[sig] = SparkerSession(CFG).run(
                arrival.workload, spec=arrival.spec,
                aggregation=arrival.aggregation,
                iterations=arrival.iterations,
                partitions=arrival.partitions).final_weights
        assert np.array_equal(handle.result().final_weights,
                              isolated[sig]), sig


def test_open_loop_replay_is_deterministic():
    with SparkerSession(CFG) as session:
        first = run_open_loop(session, TENANTS, seed=11)
    with SparkerSession(CFG) as session:
        second = run_open_loop(session, TENANTS, seed=11)
    assert first.makespan == second.makespan
    assert first.latencies == second.latencies


def test_quota_bounces_are_recorded_not_raised():
    burster = (TenantProfile("storm", pool="tiny", workloads=("LR-A",),
                             jobs=4, burst=4, iterations=1, partitions=4),)
    pools = {"tiny": PoolConfig(max_running=1, max_queued=1)}
    with SparkerSession(CFG, pools=pools) as session:
        result = run_open_loop(session, burster, seed=5)
    # 4 back-to-back arrivals against running=1/queued=1: two bounce
    assert len(result.rejections) == 2
    assert result.by_status() == {"succeeded": 2}
    assert all(a.pool == "tiny" for a in result.rejections)
