"""Cooperator unit tests: baton passing, determinism, deadlock."""

import pytest

from repro.sim import Environment
from repro.service.reactor import Cooperator, ServiceDeadlock


def test_single_worker_runs_in_virtual_time():
    env = Environment()
    coop = Cooperator(env)
    log = []

    def job():
        log.append(("start", env.now))
        env.run(until=env.timeout(5.0))
        log.append(("end", env.now))

    coop.spawn(job, name="j")
    coop.pump()
    assert log == [("start", 0.0), ("end", 5.0)]


def test_workers_interleave_deterministically():
    env = Environment()
    coop = Cooperator(env)
    log = []

    def job(name, delay):
        def body():
            for _ in range(3):
                env.run(until=env.timeout(delay))
                log.append((name, env.now))
        return body

    coop.spawn(job("a", 2.0), name="a")
    coop.spawn(job("b", 3.0), name="b")
    coop.pump()
    # the t=6.0 tie resolves by timeout insertion order: b's second
    # timeout (scheduled at t=3) beats a's third (scheduled at t=4)
    assert log == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0),
                   ("a", 6.0), ("b", 9.0)]


def test_await_already_processed_event_returns_immediately():
    env = Environment()
    coop = Cooperator(env)
    timeout = env.timeout(1.0, value="early")
    env.run(until=timeout)
    got = []
    coop.spawn(lambda: got.append(env.run(until=timeout)), name="j")
    coop.pump()
    assert got == ["early"]


def test_worker_cannot_drain_or_run_to_horizon():
    env = Environment()
    coop = Cooperator(env)
    errors = []

    def job():
        try:
            env.run(until=3.0)
        except RuntimeError as exc:
            errors.append(str(exc))

    coop.spawn(job, name="j")
    coop.pump()
    assert len(errors) == 1 and "owner thread" in errors[0]


def test_deadlock_detected_when_event_never_fires():
    env = Environment()
    coop = Cooperator(env)
    orphan = env.event(name="never")
    coop.spawn(lambda: env.run(until=orphan), name="stuck")
    with pytest.raises(ServiceDeadlock, match="parked"):
        coop.pump()
    # unblock the worker thread so it exits cleanly
    orphan.succeed(None)
    coop.pump()


def test_pump_condition_stops_mid_run():
    env = Environment()
    coop = Cooperator(env)

    def job():
        for _ in range(10):
            env.run(until=env.timeout(1.0))

    coop.spawn(job, name="j")
    coop.pump(lambda: env.now >= 4.0)
    assert 4.0 <= env.now < 10.0
    coop.pump()
    assert env.now == 10.0


def test_failed_event_reraises_in_worker():
    env = Environment()
    coop = Cooperator(env)
    boom = env.event(name="boom")
    caught = []

    def job():
        try:
            env.run(until=boom)
        except ValueError as exc:
            caught.append(exc)

    def fail_it():
        yield env.timeout(1.0)
        boom.fail(ValueError("expected"))

    coop.spawn(job, name="j")
    env.process(fail_it())
    coop.pump()
    assert len(caught) == 1


def test_one_cooperator_per_environment():
    env = Environment()
    Cooperator(env)
    with pytest.raises(RuntimeError, match="already has a cooperator"):
        Cooperator(env)
