"""The opt-in approximate tier: top-k compression must be explicitly
enabled, and with error feedback it must not change where training lands.

Gate for the compression feature (ISSUE acceptance): LR and SVM trained
with ``compression="topk"`` + ``error_feedback=True`` finish within
``rtol=1e-3`` of the exact run's final loss, across ring sizes — and a
default spec emits no compression events at all.
"""

import numpy as np
import pytest

from repro import AggregationSpec
from repro.cluster import ClusterConfig
from repro.data import concentrated_classification
from repro.ml import LogisticRegressionWithSGD, SVMWithSGD
from repro.obs import ResidualNorm
from repro.rdd import SparkerContext

DIM = 2_000


@pytest.fixture(scope="module")
def points():
    pts, _ = concentrated_classification(
        n_samples=240, n_features=DIM, nnz_per_sample=8,
        support_size=60, seed=17)
    return pts


def train(points, trainer, spec, *, nodes=2, iterations=5, listener=None):
    sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
    if listener is not None:
        sc.event_bus.subscribe(listener)
    rdd = sc.parallelize(points, sc.default_parallelism).cache()
    rdd.count()
    model = trainer.train(rdd, DIM, num_iterations=iterations,
                          aggregation="split", spec=spec)
    return model


EXACT = AggregationSpec(collective="pipelined_ring", parallelism=2)
TOPK = AggregationSpec(collective="pipelined_ring", parallelism=2,
                       compression="topk", topk_ratio=0.05,
                       error_feedback=True)


@pytest.mark.parametrize("trainer", [LogisticRegressionWithSGD, SVMWithSGD],
                         ids=["lr", "svm"])
def test_topk_final_loss_matches_exact(points, trainer):
    exact = train(points, trainer, EXACT)
    approx = train(points, trainer, TOPK)
    assert approx.losses[-1] == pytest.approx(exact.losses[-1], rel=1e-3)


@pytest.mark.parametrize("nodes", [2, 3])
def test_topk_error_feedback_converges_across_ring_sizes(points, nodes):
    exact = train(points, LogisticRegressionWithSGD, EXACT, nodes=nodes)
    approx = train(points, LogisticRegressionWithSGD, TOPK, nodes=nodes)
    assert approx.losses[-1] == pytest.approx(exact.losses[-1], rel=1e-3)
    # training actually descended
    assert approx.losses[-1] < approx.losses[0]


def test_error_feedback_transmits_withheld_mass(points):
    """A tight k withholds coordinates; the residual accumulators carry
    them into later rounds, so the gauge shows a bounded residual norm
    instead of a growing one."""
    events = []
    train(points, LogisticRegressionWithSGD,
          AggregationSpec(collective="pipelined_ring", parallelism=2,
                          compression="topk", topk_k=16,
                          error_feedback=True),
          iterations=6, listener=events.append)
    gauges = [e for e in events if isinstance(e, ResidualNorm)]
    assert gauges and all(g.k == 16 for g in gauges)
    assert all(g.error_feedback for g in gauges)
    by_exec: dict = {}
    for g in gauges:
        by_exec.setdefault(g.executor_id, []).append(g.residual_norm)
    for norms in by_exec.values():
        assert len(norms) >= 2
        # bounded: the last residual is not a runaway of the first
        assert norms[-1] <= 10 * (max(norms[0], 1e-12))


def test_compression_never_silently_enabled(points):
    events = []
    train(points, LogisticRegressionWithSGD, EXACT,
          listener=events.append)
    assert not any(isinstance(e, ResidualNorm) for e in events)


def test_topk_on_classic_ring_path_also_works(points):
    """Compression is a spec knob, not a pipelined_ring side effect: the
    phased ring path sparsifies holders too."""
    events = []
    spec = AggregationSpec(collective="ring", parallelism=2,
                           compression="topk", topk_ratio=0.05,
                           error_feedback=True)
    exact = train(points, LogisticRegressionWithSGD, EXACT)
    approx = train(points, LogisticRegressionWithSGD, spec,
                   listener=events.append)
    assert any(isinstance(e, ResidualNorm) for e in events)
    assert approx.losses[-1] == pytest.approx(exact.losses[-1], rel=1e-3)
