"""Legacy-kwarg shims must be *behaviourally invisible*.

The api_redesign contract: every deprecated keyword maps onto the same
:class:`~repro.core.AggregationSpec` the new API takes, so a legacy call
and its spec-based translation drive the engine through the identical
code path — which we verify at the strongest level available: the full
recorded event log, serialized, must be byte-identical (same messages,
same virtual timestamps, same ring hops, same merges), and so must the
final aggregated bytes.
"""

import json

import numpy as np
import pytest

from repro import AggregationSpec
from repro.cluster import ClusterConfig
from repro.data import sparse_classification
from repro.ml import LogisticRegressionWithSGD
from repro.obs import RecordingListener
from repro.rdd import SparkerContext
from repro.serde import SizedPayload


def _log_bytes(recorder):
    """The whole run, serialized deterministically."""
    return json.dumps([e.to_record() for e in recorder.events],
                      sort_keys=True).encode()


def _split_aggregate_run(call):
    """One recorded split_aggregate; ``call(rdd, zero)`` does the invoke."""
    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    recorder = RecordingListener()
    sc.event_bus.subscribe(recorder)
    data = [SizedPayload(np.full(64, float(i))) for i in range(12)]
    rdd = sc.parallelize(data, 12).cache()
    rdd.count()
    zero = lambda: SizedPayload(np.zeros(64))  # noqa: E731
    result = call(rdd, zero)
    return result.data.tobytes(), _log_bytes(recorder)


def _ops():
    return dict(
        seq_op=lambda a, x: a.merge_inplace(x),
        split_op=lambda u, i, n: u.split(i, n),
        reduce_op=lambda a, b: a.merge(b),
        concat_op=SizedPayload.concat,
    )


def test_split_aggregate_parallelism_kwarg_matches_spec():
    ops = _ops()

    def legacy(rdd, zero):
        with pytest.warns(DeprecationWarning, match="'parallelism'"):
            return rdd.split_aggregate(
                zero, ops["seq_op"], ops["split_op"], ops["reduce_op"],
                ops["concat_op"], parallelism=2)

    def via_spec(rdd, zero):
        return rdd.split_aggregate(
            zero, ops["seq_op"], ops["split_op"], ops["reduce_op"],
            ops["concat_op"], AggregationSpec(parallelism=2))

    legacy_result, legacy_log = _split_aggregate_run(legacy)
    spec_result, spec_log = _split_aggregate_run(via_spec)
    assert legacy_result == spec_result
    assert legacy_log == spec_log


def test_split_aggregate_int_positional_shim_matches_spec():
    """The old positional-parallelism slot still works (and warns)."""
    ops = _ops()

    def legacy(rdd, zero):
        with pytest.warns(DeprecationWarning, match="'parallelism'"):
            return rdd.split_aggregate(
                zero, ops["seq_op"], ops["split_op"], ops["reduce_op"],
                ops["concat_op"], 2)

    def via_spec(rdd, zero):
        return rdd.split_aggregate(
            zero, ops["seq_op"], ops["split_op"], ops["reduce_op"],
            ops["concat_op"], AggregationSpec(parallelism=2))

    legacy_result, legacy_log = _split_aggregate_run(legacy)
    spec_result, spec_log = _split_aggregate_run(via_spec)
    assert legacy_result == spec_result
    assert legacy_log == spec_log


def _train_run(**train_kwargs):
    points, _ = sparse_classification(200, 30, 6, seed=31)
    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    recorder = RecordingListener()
    sc.event_bus.subscribe(recorder)
    rdd = sc.parallelize(points, 24).cache()
    rdd.count()
    model = LogisticRegressionWithSGD.train(
        rdd, 30, num_iterations=2, step_size=1.5, aggregation="split",
        size_scale=1000.0, **train_kwargs)
    return model.weights.tobytes(), _log_bytes(recorder)


def test_trainer_legacy_kwargs_match_spec():
    with pytest.warns(DeprecationWarning) as caught:
        legacy_weights, legacy_log = _train_run(
            parallelism=2, sparse_aggregation=True)
    assert len(caught) == 2  # exactly one warning per legacy kwarg
    spec_weights, spec_log = _train_run(spec=AggregationSpec(
        parallelism=2, sparse_aggregation=True))
    assert legacy_weights == spec_weights
    assert legacy_log == spec_log
