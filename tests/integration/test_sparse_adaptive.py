"""End-to-end density-adaptive aggregation: bit-identity and savings.

Adaptive mode must be an *observably free* switch for model quality: the
trained weights are bit-identical to dense mode across every aggregation
backend, ring size, and payload density — while the simulator reports
fewer bytes-on-wire (and no more simulated time) whenever the gradient
stays sparse.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.data import concentrated_classification, sparse_classification
from repro.ml import LogisticRegressionWithSGD, SVMWithSGD
from repro.obs import RecordingListener, analyze_events
from repro.rdd import SparkerContext

NODES = 2


def _train(points, dim, *, adaptive, aggregation="split", parallelism=4,
           nodes=NODES, iterations=3, listener=None, batched=False):
    sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
    if listener is not None:
        sc.event_bus.subscribe(listener)
    rdd = sc.parallelize(points, sc.default_parallelism).cache()
    rdd.count()
    began = sc.now
    model = LogisticRegressionWithSGD.train(
        rdd, dim, num_iterations=iterations, aggregation=aggregation,
        parallelism=parallelism, sparse_aggregation=adaptive,
        batched=batched)
    return model, sc.now - began


@pytest.fixture(scope="module")
def sparse_points():
    # features live on a narrow support: the summed gradient stays sparse
    pts, _ = concentrated_classification(
        n_samples=240, n_features=2_000, nnz_per_sample=8,
        support_size=60, seed=17)
    return pts


@pytest.mark.parametrize("aggregation", ["tree", "tree_imm", "split"])
def test_adaptive_bit_identical_all_backends(sparse_points, aggregation):
    dense_model, _ = _train(sparse_points, 2_000, adaptive=False,
                            aggregation=aggregation)
    adaptive_model, _ = _train(sparse_points, 2_000, adaptive=True,
                               aggregation=aggregation)
    np.testing.assert_array_equal(dense_model.weights,
                                  adaptive_model.weights)


@pytest.mark.parametrize("parallelism", [1, 2, 4])
def test_adaptive_bit_identical_across_ring_sizes(sparse_points,
                                                  parallelism):
    dense_model, _ = _train(sparse_points, 2_000, adaptive=False,
                            parallelism=parallelism)
    adaptive_model, _ = _train(sparse_points, 2_000, adaptive=True,
                               parallelism=parallelism)
    np.testing.assert_array_equal(dense_model.weights,
                                  adaptive_model.weights)


@pytest.mark.parametrize("support", [2, 20, 200, 2_000])
def test_adaptive_bit_identical_across_densities(support):
    # support/n_features spans 0.1% ... 100% payload density
    pts, _ = concentrated_classification(
        n_samples=160, n_features=2_000, nnz_per_sample=min(6, support),
        support_size=support, seed=23)
    dense_model, dense_time = _train(pts, 2_000, adaptive=False)
    adaptive_model, adaptive_time = _train(pts, 2_000, adaptive=True)
    np.testing.assert_array_equal(dense_model.weights,
                                  adaptive_model.weights)
    # the adaptive wire format is never simulated as slower
    assert adaptive_time <= dense_time * (1.0 + 1e-9)


def test_adaptive_saves_wire_bytes_when_sparse(sparse_points):
    results = {}
    for adaptive in (False, True):
        rec = RecordingListener()
        _train(sparse_points, 2_000, adaptive=adaptive, listener=rec)
        analysis = analyze_events(rec.events)
        results[adaptive] = analysis
    dense, adaptive = results[False], results[True]
    assert dense.sparse.sparse_hops == 0
    assert not dense.sparse.observed
    assert adaptive.sparse.sparse_hops > 0
    assert adaptive.sparse.bytes_saved > 0
    assert (adaptive.sparse.wire_send_bytes
            < adaptive.sparse.dense_send_bytes)


def test_dense_regime_virtual_time_unchanged():
    # every feature active: the payload densifies immediately and the
    # adaptive machinery must cost exactly nothing in simulated time
    pts, _ = sparse_classification(200, 80, 40, seed=29)
    dense_model, dense_time = _train(pts, 80, adaptive=False)
    adaptive_model, adaptive_time = _train(pts, 80, adaptive=True)
    np.testing.assert_array_equal(dense_model.weights,
                                  adaptive_model.weights)
    assert adaptive_time == dense_time


def test_mid_ring_densify_switch_is_observable():
    # a support wide enough that merged segments cross the densify
    # threshold mid-reduction: switch events must be recorded
    pts, _ = concentrated_classification(
        n_samples=400, n_features=800, nnz_per_sample=12,
        support_size=480, seed=31)
    rec = RecordingListener()
    _train(pts, 800, adaptive=True, listener=rec)
    analysis = analyze_events(rec.events)
    switches = analysis.sparse.switches
    assert switches, "expected sparse->dense switch points mid-reduction"
    assert all(e.from_repr == "sparse" and e.to_repr == "dense"
               for e in switches)
    # both representations were actually used on the wire
    assert analysis.sparse.sparse_hops > 0
    assert analysis.sparse.dense_hops > 0


def test_tracing_does_not_perturb_adaptive_run(sparse_points):
    _, untraced = _train(sparse_points, 2_000, adaptive=True)
    rec = RecordingListener()
    _, traced = _train(sparse_points, 2_000, adaptive=True, listener=rec)
    assert traced == untraced
    assert rec.events  # the trace actually recorded something


def test_adaptive_batched_end_to_end_close(sparse_points):
    base, base_time = _train(sparse_points, 2_000, adaptive=True)
    batched, batched_time = _train(sparse_points, 2_000, adaptive=True,
                                   batched=True)
    np.testing.assert_allclose(batched.weights, base.weights,
                               rtol=1e-10, atol=1e-12)
    assert batched_time == base_time  # virtual time is exactly preserved


def test_svm_adaptive_bit_identical(sparse_points):
    models = {}
    for adaptive in (False, True):
        sc = SparkerContext(ClusterConfig.bic(num_nodes=NODES))
        rdd = sc.parallelize(sparse_points, sc.default_parallelism).cache()
        rdd.count()
        models[adaptive] = SVMWithSGD.train(
            rdd, 2_000, num_iterations=3, aggregation="split",
            sparse_aggregation=adaptive)
    np.testing.assert_array_equal(models[False].weights,
                                  models[True].weights)
