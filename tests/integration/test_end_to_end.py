"""Cross-module integration tests: the full stack working together."""

import numpy as np
import pytest

from repro.bench import BreakdownRecorder
from repro.cluster import MB, ClusterConfig
from repro.data import lda_corpus, sparse_classification
from repro.ml import LDA, LogisticRegressionWithSGD
from repro.rdd import SparkerContext
from repro.serde import SizedPayload


def test_full_training_pipeline_tree_vs_split_identical():
    """Dataset -> RDD -> training -> model: both engines, same model."""
    points, _ = sparse_classification(300, 40, 8, seed=31)
    models = {}
    for backend in ("tree", "split"):
        sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
        rdd = sc.parallelize(points, 24).cache()
        rdd.count()
        models[backend] = LogisticRegressionWithSGD.train(
            rdd, 40, num_iterations=6, step_size=1.5,
            aggregation=backend, size_scale=1000.0)
    np.testing.assert_allclose(models["tree"].weights,
                               models["split"].weights)
    assert models["tree"].accuracy(points) > 0.75


def test_training_survives_executor_loss_mid_run():
    """Kill an executor mid-training; lineage + stage retry recovers and
    the model still matches the fault-free run exactly."""
    points, _ = sparse_classification(200, 30, 6, seed=37)

    def run(inject_fault):
        sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
        rdd = sc.parallelize(points, 8).cache()
        rdd.count()
        if inject_fault:
            def killer():
                yield sc.env.timeout(sc.now + 0.05)
                sc.executor_by_id(2).kill()
            sc.env.process(killer())
        model = LogisticRegressionWithSGD.train(rdd, 30, num_iterations=4)
        return model.weights

    np.testing.assert_allclose(run(False), run(True))


def test_split_aggregation_survives_executor_loss_between_iterations():
    points, _ = sparse_classification(200, 30, 6, seed=41)
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    rdd = sc.parallelize(points, 8).cache()
    rdd.count()
    model1 = LogisticRegressionWithSGD.train(rdd, 30, num_iterations=2,
                                             aggregation="split")
    sc.kill_executor(1)
    model2 = LogisticRegressionWithSGD.train(rdd, 30, num_iterations=2,
                                             aggregation="split")
    assert np.all(np.isfinite(model2.weights))
    # Same data, same hyperparameters: same model despite the dead executor.
    np.testing.assert_allclose(model1.weights, model2.weights)


def test_lda_and_lr_share_one_context():
    """Two different model families training on one driver, sequentially,
    with virtual time accumulating monotonically."""
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=2))
    points, _ = sparse_classification(150, 25, 5, seed=43)
    docs, _ = lda_corpus(100, 40, 4, 30, seed=44)

    lr_rdd = sc.parallelize(points, 8).cache()
    lr_rdd.count()
    t0 = sc.now
    LogisticRegressionWithSGD.train(lr_rdd, 25, num_iterations=2)
    t1 = sc.now
    lda_rdd = sc.parallelize(docs, 8).cache()
    lda_rdd.count()
    LDA(k=4, num_iterations=2).fit(lda_rdd, 40)
    t2 = sc.now
    assert t0 < t1 < t2


def test_breakdown_recorder_composes_with_microbench():
    sc = SparkerContext(ClusterConfig.bic(num_nodes=2))
    n = sc.cluster.total_cores
    data = [SizedPayload(np.ones(32), sim_bytes=4 * MB) for _ in range(n)]
    rdd = sc.parallelize(data, n).cache()
    rdd.count()
    recorder = BreakdownRecorder(sc)
    rdd.tree_aggregate(lambda: SizedPayload(np.zeros(32), sim_bytes=4 * MB),
                       lambda a, x: a.merge_inplace(x),
                       lambda a, b: a.merge(b))
    b = recorder.finish()
    assert b.aggregation == pytest.approx(b.total, rel=0.05)


def test_virtual_time_ordering_across_engines():
    """For a reduction-dominated job, split < tree+imm < tree in simulated
    time on a multi-node cluster."""
    times = {}
    for backend in ("tree", "tree_imm", "split"):
        sc = SparkerContext(ClusterConfig.bic(num_nodes=4))
        n = sc.cluster.total_cores
        data = [SizedPayload(np.ones(64), sim_bytes=64 * MB)
                for _ in range(n)]
        rdd = sc.parallelize(data, n).cache()
        rdd.count()
        t0 = sc.now
        zero = lambda: SizedPayload(np.zeros(64), sim_bytes=64 * MB)  # noqa: E731
        if backend == "split":
            rdd.split_aggregate(zero, lambda a, x: a.merge_inplace(x),
                                lambda u, i, k: u.split(i, k),
                                lambda a, b: a.merge(b),
                                SizedPayload.concat, parallelism=4)
        else:
            rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                               lambda a, b: a.merge(b),
                               imm=(backend == "tree_imm"))
        times[backend] = sc.now - t0
    assert times["split"] < times["tree_imm"] < times["tree"]


def test_paper_core_claim_micro():
    """The paper's one-sentence story, end to end: tree reduction time
    grows with the cluster; split reduction does not."""
    def reduce_time(nodes, backend):
        sc = SparkerContext(ClusterConfig.bic(num_nodes=nodes))
        n = sc.cluster.total_cores
        data = [SizedPayload(np.ones(64), sim_bytes=32 * MB)
                for _ in range(n)]
        rdd = sc.parallelize(data, n).cache()
        rdd.count()
        zero = lambda: SizedPayload(np.zeros(64), sim_bytes=32 * MB)  # noqa: E731
        if backend == "split":
            rdd.split_aggregate(zero, lambda a, x: a.merge_inplace(x),
                                lambda u, i, k: u.split(i, k),
                                lambda a, b: a.merge(b),
                                SizedPayload.concat)
        else:
            rdd.tree_aggregate(zero, lambda a, x: a.merge_inplace(x),
                               lambda a, b: a.merge(b))
        return sc.stopwatch.total("agg.reduce")

    tree_growth = reduce_time(4, "tree") / reduce_time(1, "tree")
    split_growth = reduce_time(4, "split") / reduce_time(1, "split")
    assert tree_growth > 1.3       # non-scalable reduction
    assert split_growth < 1.3      # scalable reduction
