"""Determinism guarantees of the host-performance layer.

Two seeded runs of the same workload must produce byte-identical trace
streams and virtual times, and the host pool must be invisible to every
simulated quantity: pool sizes 1/2/8 train byte-equal weights in exactly
the same virtual time as the serial path (the DESIGN.md §9 bit-identity
contract the host-perf benchmark gates on).
"""

import numpy as np

from repro.bench.workloads import run_workload
from repro.cluster import ClusterConfig
from repro.obs import EventLogWriter


def _train(tmp_path, tag, **kwargs):
    log = tmp_path / f"{tag}.jsonl"
    writer = EventLogWriter(log)
    try:
        result = run_workload("LR-A", ClusterConfig.bic(2),
                              aggregation="tree", iterations=2,
                              listener=writer, **kwargs)
    finally:
        writer.close()
    return result, log.read_bytes()


def test_two_runs_identical_stream_and_virtual_time(tmp_path):
    first, stream_a = _train(tmp_path, "a")
    second, stream_b = _train(tmp_path, "b")
    assert stream_a == stream_b
    assert first.end_to_end == second.end_to_end
    assert first.final_loss == second.final_loss
    assert (np.asarray(first.final_weights).tobytes()
            == np.asarray(second.final_weights).tobytes())
    assert first.sim_events == second.sim_events


def test_pool_sizes_bit_identical():
    serial = run_workload("LR-A", ClusterConfig.bic(2),
                          aggregation="tree", iterations=2)
    reference = np.asarray(serial.final_weights).tobytes()
    for size in (1, 2, 8):
        pooled = run_workload("LR-A", ClusterConfig.bic(2),
                              aggregation="tree", iterations=2,
                              host_pool=size)
        assert pooled.end_to_end == serial.end_to_end, f"pool={size}"
        assert pooled.final_loss == serial.final_loss, f"pool={size}"
        assert (np.asarray(pooled.final_weights).tobytes()
                == reference), f"pool={size}"


def test_split_aggregation_pool_parity():
    serial = run_workload("LR-C", ClusterConfig.bic(4),
                          aggregation="split", iterations=2)
    pooled = run_workload("LR-C", ClusterConfig.bic(4),
                          aggregation="split", iterations=2, host_pool=2)
    assert pooled.end_to_end == serial.end_to_end
    assert (np.asarray(pooled.final_weights).tobytes()
            == np.asarray(serial.final_weights).tobytes())
