"""Tests for the flow-level fair-sharing network model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.flows import FlowNetwork, Link
from repro.sim import Environment


def run_flows(specs, capacities):
    """Run flows and return their completion times.

    ``specs`` is a list of (nbytes, link_indices, rate_cap); ``capacities``
    the link capacities. Returns the list of completion times.
    """
    env = Environment()
    net = FlowNetwork(env)
    links = [Link(c, name=f"l{i}") for i, c in enumerate(capacities)]
    events = [
        net.flow(nbytes, [links[i] for i in idxs], rate_cap=cap)
        for nbytes, idxs, cap in specs
    ]
    times = []
    for ev in events:
        env.run(until=ev)
        times.append(env.now)
    return times


def test_single_flow_runs_at_cap():
    (t,) = run_flows([(100.0, [0], 10.0)], [1000.0])
    assert t == pytest.approx(10.0)


def test_single_flow_runs_at_link_capacity_without_cap():
    (t,) = run_flows([(100.0, [0], None)], [50.0])
    assert t == pytest.approx(2.0)


def test_two_flows_share_link_equally():
    times = run_flows(
        [(100.0, [0], None), (100.0, [0], None)], [100.0])
    assert times == [pytest.approx(2.0), pytest.approx(2.0)]


def test_capped_flow_leaves_headroom_to_other():
    # Flow A capped at 20 on a 100-capacity link; flow B takes the remaining 80.
    times = run_flows(
        [(100.0, [0], 20.0), (400.0, [0], None)], [100.0])
    assert times[0] == pytest.approx(5.0)
    # B: 80 B/s while A active (5 s -> 400 B done). Exactly finished too.
    assert times[1] == pytest.approx(5.0)


def test_rates_rebalance_when_flow_completes():
    # Two equal flows share 100; when the short one finishes, the long one
    # speeds up to the full link.
    times = run_flows(
        [(50.0, [0], None), (150.0, [0], None)], [100.0])
    assert times[0] == pytest.approx(1.0)
    # Long flow: 50 bytes by t=1 (rate 50), remaining 100 at rate 100 -> t=2.
    assert times[1] == pytest.approx(2.0)


def test_multi_link_flow_respects_tightest_link():
    (t,) = run_flows([(100.0, [0, 1], None)], [100.0, 25.0])
    assert t == pytest.approx(4.0)


def test_crossing_flows_bottleneck_on_shared_link():
    # Flows A: links 0+1, B: links 1+2. Link 1 shared (cap 100); links 0/2 huge.
    times = run_flows(
        [(100.0, [0, 1], None), (100.0, [1, 2], None)],
        [1e9, 100.0, 1e9])
    assert times == [pytest.approx(2.0), pytest.approx(2.0)]


def test_zero_byte_flow_completes_immediately():
    env = Environment()
    net = FlowNetwork(env)
    link = Link(10.0)
    ev = net.flow(0.0, [link])
    assert ev.triggered


def test_negative_bytes_rejected():
    env = Environment()
    net = FlowNetwork(env)
    with pytest.raises(ValueError):
        net.flow(-1.0, [Link(10.0)])


def test_invalid_rate_cap_rejected():
    env = Environment()
    net = FlowNetwork(env)
    with pytest.raises(ValueError):
        net.flow(10.0, [Link(10.0)], rate_cap=0.0)


def test_link_capacity_validation():
    with pytest.raises(ValueError):
        Link(0.0)


def test_flow_without_links_needs_cap():
    # A linkless flow is only meaningful with a finite cap.
    env = Environment()
    net = FlowNetwork(env)
    ev = net.flow(100.0, [], rate_cap=50.0)
    env.run(until=ev)
    assert env.now == pytest.approx(2.0)


def test_staggered_arrivals_account_for_past_progress():
    env = Environment()
    net = FlowNetwork(env)
    link = Link(100.0)
    first = net.flow(100.0, [link])

    record = {}

    def late_arrival():
        yield env.timeout(0.5)  # first flow has moved 50 bytes at rate 100
        second = net.flow(100.0, [link])
        yield first
        record["first"] = env.now
        yield second
        record["second"] = env.now

    proc = env.process(late_arrival())
    env.run(until=proc)
    # After t=0.5 both share 50 B/s. First has 50 left -> done at t=1.5.
    assert record["first"] == pytest.approx(1.5)
    # Second: 50 bytes by t=1.5, then rate 100 -> done at t=2.0.
    assert record["second"] == pytest.approx(2.0)


def test_many_equal_flows_aggregate_to_capacity():
    n = 16
    times = run_flows([(100.0, [0], None)] * n, [100.0])
    for t in times:
        assert t == pytest.approx(n * 1.0)


def test_completed_counter():
    env = Environment()
    net = FlowNetwork(env)
    link = Link(100.0)
    ev1 = net.flow(10.0, [link])
    ev2 = net.flow(10.0, [link])
    env.run(until=ev1)
    env.run(until=ev2)
    assert net.completed == 2


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e6),       # bytes
            st.floats(min_value=1.0, max_value=1e4),       # cap
        ),
        min_size=1, max_size=8,
    ),
    st.floats(min_value=10.0, max_value=1e5),              # link capacity
)
def test_conservation_property(flow_specs, capacity):
    """Total bytes delivered over total time never exceeds link capacity,
    and every flow eventually completes."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link(capacity)
    events = [net.flow(b, [link], rate_cap=c) for b, c in flow_specs]
    for ev in events:
        env.run(until=ev)
    total_bytes = sum(b for b, _ in flow_specs)
    min_time_bound = total_bytes / capacity
    assert env.now >= min_time_bound * (1 - 1e-6)
    # And no slower than serial execution at the slowest admissible rate.
    serial_bound = sum(b / min(c, capacity) for b, c in flow_specs)
    assert env.now <= serial_bound * (1 + 1e-6) + 1e-9


def test_two_capped_flows_same_link_regression():
    """Regression: duplicate heap entries for one flow must not complete it
    twice (this silently killed the completion timer before the kernel's
    critical-process crash semantics existed)."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link(10.0)
    a = net.flow(1.0, [link], rate_cap=1.0)
    b = net.flow(1.0, [link], rate_cap=2.0)
    env.run(until=a)
    assert env.now == pytest.approx(1.0)
    assert b.triggered
    assert net.completed == 2
    assert net.active_flows == 0


def test_simultaneous_completions_on_shared_link():
    env = Environment()
    net = FlowNetwork(env)
    link = Link(100.0)
    events = [net.flow(50.0, [link]) for _ in range(4)]
    for ev in events:
        env.run(until=ev)
    assert env.now == pytest.approx(2.0)
    assert net.completed == 4


def test_rate_of_forces_pending_flush():
    # Joins are batched to an end-of-instant flush; reading a rate before
    # the flush event fires must force the allocation instead of
    # returning the unallocated 0.0.
    env = Environment()
    net = FlowNetwork(env)
    link = Link(10.0, name="l")
    a = net.flow(100.0, [link])
    b = net.flow(100.0, [link])
    assert net.rate_of(a) == pytest.approx(5.0)
    assert net.rate_of(b) == pytest.approx(5.0)
    assert net.link_rate(link) == pytest.approx(10.0)


def test_batched_joins_match_sequential_joins():
    # N flows joining at one instant must complete exactly when they
    # would have under per-join eager reallocation: both reduce to the
    # same max-min allocation, settled over the same instants.
    specs = [(60.0, [0], None), (60.0, [0], None), (30.0, [0], 4.0)]
    times = run_flows(specs, [12.0])
    env = Environment()
    net = FlowNetwork(env)
    link = Link(12.0, name="l0")
    staggered = []
    for nbytes, _idxs, cap in specs:
        staggered.append(net.flow(nbytes, [link], rate_cap=cap))
        net.rate_of(staggered[-1])  # force a flush after every join
    expected = []
    for ev in staggered:
        env.run(until=ev)
        expected.append(env.now)
    assert times == expected


def test_flush_is_batched_per_instant():
    # All joins of one instant are allocated by a single deferred flush:
    # before any event runs, every same-instant flow is still unallocated.
    env = Environment()
    net = FlowNetwork(env)
    link = Link(8.0, name="l")
    flows = [net.flow(40.0, [link]) for _ in range(4)]
    assert all(f is not None for f in flows)
    assert net._dirty and net._flush_pending
    for ev in flows:
        env.run(until=ev)
    assert env.now == pytest.approx(40.0 / 2.0)
    assert not net._dirty and net.active_flows == 0


def _seeded_trace(vec_min, seed=7, n=48):
    """Completion times for a seeded contended topology at a threshold."""
    import random

    import repro.cluster.flows as flows_mod

    saved = flows_mod._VEC_MIN
    flows_mod._VEC_MIN = vec_min
    try:
        rng = random.Random(seed)
        env = Environment()
        net = FlowNetwork(env)
        shared = [Link(rng.uniform(50.0, 200.0), name=f"s{j}")
                  for j in range(5)]
        uplinks = [Link(rng.uniform(80.0, 300.0), name=f"u{i}")
                   for i in range(n)]
        finish = {}

        def driver(i):
            yield env.timeout(rng.uniform(0.0, 2.0))
            cap = rng.uniform(10.0, 90.0) if rng.random() < 0.3 else None
            links = [uplinks[i], shared[i % 5], shared[(i + 2) % 5]]
            yield net.flow(rng.uniform(20.0, 400.0), links, rate_cap=cap)
            finish[i] = env.now

        for i in range(n):
            env.process(driver(i))
        env.run()
        return [finish[i] for i in range(n)], env.events_scheduled
    finally:
        flows_mod._VEC_MIN = saved


def test_vectorized_solver_is_bit_identical_to_scalar():
    # The _VEC_MIN threshold is a pure host-speed knob: forcing every
    # component down the vectorized bulk-freeze path must reproduce the
    # scalar progressive-filling trace bit for bit — identical completion
    # times AND an identical kernel event count.
    for seed in (7, 11, 23):
        scalar_times, scalar_events = _seeded_trace(10**9, seed=seed)
        vec_times, vec_events = _seeded_trace(2, seed=seed)
        assert vec_times == scalar_times
        assert vec_events == scalar_events
