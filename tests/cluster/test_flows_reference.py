"""Property test: the component-decomposed flow allocator matches a
brute-force global max-min reference on random topologies.

The production allocator (repro.cluster.flows) settles lazily, re-solves
only connected components, and tracks completions with a versioned heap.
This test re-implements max-min fair sharing the *slow obvious way* —
global progressive filling re-run on every arrival/departure, exact event
times — and checks both agree on completion times for random flow sets
over random link topologies.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.flows import FlowNetwork, Link
from repro.sim import Environment


def reference_completion_times(flow_specs, capacities):
    """Brute-force fluid simulation: returns completion time per flow.

    ``flow_specs``: list of (nbytes, link_indices, cap, start_time).
    """
    remaining = [float(b) for b, _l, _c, _t in flow_specs]
    done = [None] * len(flow_specs)
    time = 0.0
    while True:
        active = [i for i, r in enumerate(remaining)
                  if done[i] is None and flow_specs[i][3] <= time + 1e-15]
        pending_starts = [flow_specs[i][3] for i, r in enumerate(remaining)
                          if done[i] is None
                          and flow_specs[i][3] > time + 1e-15]
        if not active and not pending_starts:
            break
        # Global progressive filling over active flows.
        rates = {}
        head = {j: c for j, c in enumerate(capacities)}
        counts = {}
        for i in active:
            for link in flow_specs[i][1]:
                counts[link] = counts.get(link, 0) + 1
        unfrozen = set(active)
        while unfrozen:
            shares = [head[l] / counts[l] for l in counts if counts[l] > 0]
            min_share = min(shares) if shares else math.inf
            capped = [i for i in unfrozen
                      if flow_specs[i][2] <= min_share * (1 + 1e-12)]
            if capped:
                chosen, rate_of = capped, lambda i: flow_specs[i][2]
            else:
                bottleneck = min(
                    (l for l in counts if counts[l] > 0),
                    key=lambda l: head[l] / counts[l])
                share = head[bottleneck] / counts[bottleneck]
                chosen = [i for i in unfrozen
                          if bottleneck in flow_specs[i][1]]
                rate_of = lambda _i: share  # noqa: E731
            for i in chosen:
                rates[i] = rate_of(i)
                for link in flow_specs[i][1]:
                    head[link] -= rates[i]
                    head[link] = max(head[link], 0.0)
                    counts[link] -= 1
                unfrozen.discard(i)
        # Advance to the next event (completion or arrival).
        horizons = []
        for i in active:
            if rates.get(i, 0) > 0:
                horizons.append(remaining[i] / rates[i])
        if pending_starts:
            horizons.append(min(pending_starts) - time)
        dt = min(horizons)
        for i in active:
            remaining[i] -= rates.get(i, 0.0) * dt
        time += dt
        for i in active:
            if done[i] is None and remaining[i] <= 1e-9:
                done[i] = time
    return done


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_flow_network_matches_reference(data):
    n_links = data.draw(st.integers(1, 4))
    capacities = [data.draw(st.floats(10.0, 1000.0))
                  for _ in range(n_links)]
    n_flows = data.draw(st.integers(1, 6))
    specs = []
    for _ in range(n_flows):
        nbytes = data.draw(st.floats(1.0, 500.0))
        k = data.draw(st.integers(1, n_links))
        links = sorted(data.draw(st.permutations(range(n_links)))[:k])
        cap = data.draw(st.one_of(st.none(), st.floats(5.0, 500.0)))
        start = data.draw(st.sampled_from([0.0, 0.25, 1.0]))
        specs.append((nbytes, tuple(links), cap or math.inf, start))

    expected = reference_completion_times(specs, capacities)

    env = Environment()
    net = FlowNetwork(env)
    links = [Link(c) for c in capacities]
    finish = {}

    def starter(i, spec):
        nbytes, link_idx, cap, start = spec
        if start > 0:
            yield env.timeout(start)
        ev = net.flow(nbytes, [links[j] for j in link_idx],
                      rate_cap=None if math.isinf(cap) else cap)
        yield ev
        finish[i] = env.now

    procs = [env.process(starter(i, s)) for i, s in enumerate(specs)]
    for p in procs:
        env.run(until=p)

    for i in range(n_flows):
        assert finish[i] == pytest.approx(expected[i], rel=1e-6, abs=1e-6), \
            (i, specs, capacities)
