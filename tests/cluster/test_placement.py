"""Tests for executor placement and the Cluster facade."""

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Environment


def make(num_nodes=4, **kwargs):
    env = Environment()
    return env, Cluster(env, ClusterConfig.bic(num_nodes=num_nodes), **kwargs)


def test_executor_count_matches_config():
    _env, cluster = make(num_nodes=4)
    assert cluster.num_executors == 4 * 6
    assert cluster.total_cores == 4 * 6 * 4


def test_round_robin_placement():
    _env, cluster = make(num_nodes=4)
    for slot in cluster.executors:
        assert slot.node.node_id == slot.executor_id % 4


def test_driver_has_own_host_by_default():
    _env, cluster = make()
    assert cluster.driver_node.hostname == "driver-host"
    assert all(n is not cluster.driver_node for n in cluster.nodes)


def test_driver_colocated_option():
    _env, cluster = make(driver_colocated=True)
    assert cluster.driver_node is cluster.nodes[0]


def test_executors_on_node():
    _env, cluster = make(num_nodes=4)
    on_zero = cluster.executors_on(cluster.nodes[0])
    assert len(on_zero) == 6
    assert all(s.node.node_id == 0 for s in on_zero)


def test_hostname_sort_groups_same_node_executors():
    _env, cluster = make(num_nodes=4)
    ranked = cluster.sorted_by_hostname()
    hosts = [s.hostname for s in ranked]
    # Hostname-sorted ranking visits each host as one contiguous block.
    blocks = 1 + sum(1 for a, b in zip(hosts, hosts[1:]) if a != b)
    assert blocks == 4


def test_id_sort_interleaves_nodes():
    _env, cluster = make(num_nodes=4)
    ranked = cluster.sorted_by_id()
    hosts = [s.hostname for s in ranked]
    # Registration order interleaves: adjacent ranks are on different hosts.
    transitions = sum(1 for a, b in zip(hosts, hosts[1:]) if a != b)
    assert transitions == len(hosts) - 1


def test_hostname_sort_is_stable_for_ties():
    _env, cluster = make(num_nodes=2)
    ranked = cluster.sorted_by_hostname()
    per_host = {}
    for slot in ranked:
        per_host.setdefault(slot.hostname, []).append(slot.executor_id)
    for ids in per_host.values():
        assert ids == sorted(ids)
