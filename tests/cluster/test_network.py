"""Tests for the network fabric model."""

import dataclasses

import pytest

from repro.cluster import MB, Cluster, ClusterConfig
from repro.sim import Environment


def make_cluster(num_nodes=2, **overrides):
    env = Environment()
    cfg = ClusterConfig.bic(num_nodes=num_nodes)
    if overrides:
        cfg = dataclasses.replace(cfg, **overrides)
    return env, Cluster(env, cfg)


def run_transfer(env, cluster, src, dst, nbytes, **kwargs):
    proc = env.process(cluster.network.transfer(src, dst, nbytes, **kwargs))
    env.run(until=proc)
    return env.now


def test_zero_byte_transfer_costs_latency_only():
    env, cluster = make_cluster()
    a, b = cluster.nodes[0], cluster.nodes[1]
    elapsed = run_transfer(env, cluster, a, b, 0)
    assert elapsed == pytest.approx(cluster.config.inter_node_latency)


def test_intra_node_latency_is_lower():
    env, cluster = make_cluster()
    node = cluster.nodes[0]
    net = cluster.network
    assert net.latency(node, node) < net.latency(node, cluster.nodes[1])


def test_transfer_time_matches_stream_bandwidth():
    env, cluster = make_cluster()
    cfg = cluster.config
    a, b = cluster.nodes[0], cluster.nodes[1]
    nbytes = 8 * MB  # below the GC threshold: no drag
    elapsed = run_transfer(env, cluster, a, b, nbytes)
    expected = cfg.inter_node_latency + nbytes / cfg.tcp_stream_bandwidth
    assert elapsed == pytest.approx(expected, rel=1e-9)


def test_parallel_streams_add_throughput_up_to_nic():
    env, cluster = make_cluster()
    cfg = cluster.config
    a, b = cluster.nodes[0], cluster.nodes[1]
    nbytes = 8 * MB

    procs = [env.process(cluster.network.transfer(a, b, nbytes))
             for _ in range(2)]
    for p in procs:
        env.run(until=p)
    two_stream_time = env.now
    # Two streams fit inside the NIC: same elapsed time as one stream.
    assert two_stream_time == pytest.approx(
        cfg.inter_node_latency + nbytes / cfg.tcp_stream_bandwidth, rel=1e-9)


def test_nic_saturation_fair_shares_streams():
    env, cluster = make_cluster()
    cfg = cluster.config
    a, b = cluster.nodes[0], cluster.nodes[1]
    nbytes = 8 * MB
    n_streams = 4  # 4 x stream cap exceeds the NIC

    procs = [env.process(cluster.network.transfer(a, b, nbytes))
             for _ in range(n_streams)]
    for p in procs:
        env.run(until=p)
    # Fair sharing: aggregate rate pinned at the NIC, all finish together.
    expected = cfg.inter_node_latency + n_streams * nbytes / cfg.nic_bandwidth
    assert env.now == pytest.approx(expected, rel=1e-6)


def test_overhead_paid_upfront():
    env, cluster = make_cluster()
    a, b = cluster.nodes[0], cluster.nodes[1]
    base = run_transfer(env, cluster, a, b, 0)

    env2, cluster2 = make_cluster()
    a2, b2 = cluster2.nodes[0], cluster2.nodes[1]
    with_overhead = run_transfer(env2, cluster2, a2, b2, 0, overhead=1e-3)
    assert with_overhead == pytest.approx(base + 1e-3)


def test_gc_drag_above_threshold():
    env, cluster = make_cluster()
    net = cluster.network
    assert net.gc_drag(1 * MB) == 0.0
    assert net.gc_drag(cluster.config.gc_threshold) == 0.0
    assert net.gc_drag(256 * MB) > 0.0


def test_gc_drag_reduces_effective_bandwidth_at_large_sizes():
    env, cluster = make_cluster()
    cfg = cluster.config
    a, b = cluster.nodes[0], cluster.nodes[1]

    def effective_bw(nbytes):
        e, c = make_cluster()
        t = run_transfer(e, c, c.nodes[0], c.nodes[1], nbytes)
        return nbytes / t

    assert effective_bw(256 * MB) < effective_bw(32 * MB)


def test_loopback_faster_than_network_for_engine_transfers():
    # Engine (Netty-grade) transfers are not per-channel capped on
    # loopback: they run at the aggregate loopback rate.
    env, cluster = make_cluster()
    node = cluster.nodes[0]
    intra = run_transfer(env, cluster, node, node, 64 * MB)

    env2, cluster2 = make_cluster()
    inter = run_transfer(env2, cluster2, cluster2.nodes[0],
                         cluster2.nodes[1], 64 * MB)
    assert intra < inter


def test_loopback_stream_cap_applies_when_requested():
    env, cluster = make_cluster()
    cfg = cluster.config
    node = cluster.nodes[0]
    elapsed = run_transfer(
        env, cluster, node, node, 8 * MB,
        loopback_stream_bandwidth=cfg.loopback_stream_bandwidth)
    expected = cfg.intra_node_latency + \
        8 * MB / cfg.loopback_stream_bandwidth
    assert elapsed == pytest.approx(expected, rel=1e-6)


def test_negative_size_rejected():
    env, cluster = make_cluster()
    a, b = cluster.nodes[0], cluster.nodes[1]
    proc = env.process(cluster.network.transfer(a, b, -1))
    with pytest.raises(ValueError):
        env.run(until=proc)


def test_instrumentation_counters():
    env, cluster = make_cluster()
    a, b = cluster.nodes[0], cluster.nodes[1]
    run_transfer(env, cluster, a, b, 1000)
    net = cluster.network
    assert net.messages == 1
    assert net.bytes_transferred == 1000
    assert net.inter_node_bytes == 1000

    proc = env.process(net.transfer(a, a, 500))
    env.run(until=proc)
    assert net.inter_node_bytes == 1000  # intra-node does not count


def test_broadcast_tree_reaches_all_and_beats_sequential():
    env, cluster = make_cluster(num_nodes=8)
    cfg = cluster.config
    root = cluster.driver_node
    targets = cluster.nodes
    nbytes = 8 * MB

    proc = env.process(cluster.network.broadcast_tree(root, targets, nbytes))
    env.run(until=proc)
    tree_time = env.now

    sequential = len(targets) * nbytes / cfg.tcp_stream_bandwidth
    assert tree_time < sequential


def test_broadcast_tree_fanout_validation():
    env, cluster = make_cluster()
    proc = env.process(cluster.network.broadcast_tree(
        cluster.driver_node, cluster.nodes, 10, fanout=0))
    with pytest.raises(ValueError):
        env.run(until=proc)
