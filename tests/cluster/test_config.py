"""Tests for cluster configurations (Table 1 presets)."""

import dataclasses

import pytest

from repro.cluster import GB, ClusterConfig


def test_bic_preset_matches_table1():
    bic = ClusterConfig.bic()
    assert bic.name == "BIC"
    assert bic.num_nodes == 8
    assert bic.cores_per_node == 56
    assert bic.memory_per_node == 256 * GB
    assert bic.executors_per_node == 6
    assert bic.executor_cores == 4
    assert bic.executor_memory == 30 * GB
    assert bic.num_executors == 48
    assert bic.total_cores == 192


def test_aws_preset_matches_table1():
    aws = ClusterConfig.aws()
    assert aws.name == "AWS"
    assert aws.num_nodes == 10
    assert aws.cores_per_node == 96
    assert aws.memory_per_node == 384 * GB
    assert aws.executors_per_node == 12
    assert aws.executor_cores == 8
    assert aws.num_executors == 120
    assert aws.total_cores == 960


def test_presets_validate():
    ClusterConfig.bic().validate()
    ClusterConfig.aws().validate()
    ClusterConfig.laptop().validate()


def test_with_nodes_scales():
    cfg = ClusterConfig.bic().with_nodes(2)
    assert cfg.num_nodes == 2
    assert cfg.num_executors == 12
    # All platform constants preserved.
    assert cfg.nic_bandwidth == ClusterConfig.bic().nic_bandwidth


def test_with_nodes_rejects_zero():
    with pytest.raises(ValueError):
        ClusterConfig.bic().with_nodes(0)


def test_with_executors_per_node():
    cfg = ClusterConfig.aws().with_executors_per_node(2, 4)
    assert cfg.executors_per_node == 2
    assert cfg.executor_cores == 4
    assert cfg.num_executors == 20


def test_validate_rejects_core_oversubscription():
    cfg = dataclasses.replace(ClusterConfig.bic(), executors_per_node=20)
    with pytest.raises(ValueError, match="cores"):
        cfg.validate()


def test_validate_rejects_memory_oversubscription():
    cfg = dataclasses.replace(ClusterConfig.bic(), executor_memory=100 * GB)
    with pytest.raises(ValueError, match="memory"):
        cfg.validate()


def test_validate_rejects_stream_above_nic():
    cfg = dataclasses.replace(ClusterConfig.bic(),
                              tcp_stream_bandwidth=10e12)
    with pytest.raises(ValueError, match="stream"):
        cfg.validate()


def test_config_is_immutable():
    cfg = ClusterConfig.bic()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.num_nodes = 4  # type: ignore[misc]


def test_stream_slower_than_nic_in_both_presets():
    # This gap is what makes channel parallelism pay off (Figures 13/14).
    for cfg in (ClusterConfig.bic(), ClusterConfig.aws()):
        assert cfg.tcp_stream_bandwidth * 2 < cfg.nic_bandwidth
