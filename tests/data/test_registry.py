"""Tests for the Table 2 dataset registry and its scale factors."""

import pytest

from repro.data import (
    DATASETS,
    PAPER_LDA_TOPICS,
    SURROGATE_LDA_TOPICS,
    DatasetSpec,
    dataset,
)
from repro.ml import LabeledPoint, SparseVector


def test_all_six_datasets_present():
    assert set(DATASETS) == {"avazu", "criteo", "kdd10", "kdd12", "enron",
                             "nytimes"}


def test_paper_scales_match_table2():
    assert DATASETS["avazu"].paper_samples == 45_006_431
    assert DATASETS["criteo"].paper_samples == 51_882_752
    assert DATASETS["kdd10"].paper_features == 20_216_830
    assert DATASETS["kdd12"].paper_features == 54_686_452
    assert DATASETS["enron"].paper_samples == 39_861
    assert DATASETS["nytimes"].paper_features == 102_660


def test_tasks_and_sources():
    for name in ("avazu", "criteo", "kdd10", "kdd12"):
        assert DATASETS[name].task == "classification"
        assert DATASETS[name].source == "libsvm"
    for name in ("enron", "nytimes"):
        assert DATASETS[name].task == "topic-model"
        assert DATASETS[name].source == "uci"


def test_size_scale_definition():
    spec = DATASETS["kdd10"]
    assert spec.size_scale == pytest.approx(
        spec.paper_features / spec.surrogate_features)
    lda = DATASETS["nytimes"]
    assert lda.size_scale == pytest.approx(
        (PAPER_LDA_TOPICS * lda.paper_features)
        / (SURROGATE_LDA_TOPICS * lda.surrogate_features))


def test_relative_aggregator_ordering_preserved():
    """kdd12 > kdd10 > avazu/criteo aggregators; nytimes > enron."""
    agg = {name: spec.paper_aggregator_bytes
           for name, spec in DATASETS.items()}
    assert agg["kdd12"] > agg["kdd10"] > agg["avazu"] == agg["criteo"]
    assert agg["nytimes"] > agg["enron"]


def test_generate_classification():
    spec = DATASETS["avazu"]
    points, w = spec.generate()
    assert len(points) == spec.surrogate_samples
    assert all(isinstance(p, LabeledPoint) for p in points[:10])
    assert points[0].features.size == spec.surrogate_features
    assert w.shape == (spec.surrogate_features,)


def test_generate_topic_model():
    spec = DATASETS["enron"]
    docs, topics = spec.generate()
    assert len(docs) == spec.surrogate_samples
    assert all(isinstance(d, SparseVector) for d in docs[:10])
    assert topics.shape == (SURROGATE_LDA_TOPICS, spec.surrogate_features)


def test_generate_is_deterministic():
    a, _ = DATASETS["kdd12"].generate()
    b, _ = DATASETS["kdd12"].generate()
    assert all(pa.features == pb.features for pa, pb in zip(a[:20], b[:20]))


def test_dataset_lookup():
    assert dataset("nytimes") is DATASETS["nytimes"]
    with pytest.raises(KeyError, match="unknown dataset"):
        dataset("mnist")


def test_unknown_task_rejected():
    spec = DatasetSpec(name="x", task="regression", source="y",
                       paper_samples=10, paper_features=10, paper_nnz=2,
                       surrogate_samples=10, surrogate_features=10,
                       surrogate_nnz=2)
    with pytest.raises(ValueError):
        spec.generate()


def test_str_rendering():
    text = str(DATASETS["avazu"])
    assert "45,006,431" in text
    assert "classification" in text


def test_compute_scale_regimes():
    # One surrogate kdd12 sample stands for tens of thousands of paper
    # samples; surrogates must never be larger than the paper data.
    for spec in DATASETS.values():
        assert spec.compute_scale > 10
        assert spec.surrogate_samples < spec.paper_samples
        assert spec.surrogate_features < spec.paper_features
