"""Tests for libsvm-format IO."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    dump_libsvm,
    format_libsvm_line,
    load_libsvm,
    parse_libsvm_line,
    sparse_classification,
)
from repro.ml import LabeledPoint, SparseVector


def test_parse_basic_line():
    label, idx, vals = parse_libsvm_line("1 3:0.5 7:-2")
    assert label == 1.0
    assert idx == [2, 6]  # converted to 0-based
    assert vals == [0.5, -2.0]


def test_parse_blank_and_comment_lines():
    assert parse_libsvm_line("") is None
    assert parse_libsvm_line("   ") is None
    assert parse_libsvm_line("# comment") is None
    assert parse_libsvm_line("1 2:3 # trailing")[1] == [1]


def test_parse_errors():
    with pytest.raises(ValueError, match="label"):
        parse_libsvm_line("abc 1:2")
    with pytest.raises(ValueError, match="pair"):
        parse_libsvm_line("1 nonsense")
    with pytest.raises(ValueError, match="1-based"):
        parse_libsvm_line("1 0:2")
    with pytest.raises(ValueError, match="increasing"):
        parse_libsvm_line("1 3:1 2:1")
    with pytest.raises(ValueError, match="exceeds"):
        parse_libsvm_line("1 11:1", num_features=10)


def test_format_line():
    point = LabeledPoint(1.0, SparseVector(5, [0, 4], [1.5, -2.0]))
    assert format_libsvm_line(point) == "1 1:1.5 5:-2"


def test_round_trip_through_string_buffer():
    points, _ = sparse_classification(40, 25, 6, seed=17)
    buffer = io.StringIO()
    count = dump_libsvm(points, buffer)
    assert count == 40
    buffer.seek(0)
    loaded = load_libsvm(buffer, num_features=25)
    assert len(loaded) == 40
    for original, parsed in zip(points, loaded):
        assert parsed.label == original.label
        assert list(parsed.features.indices) == \
            list(original.features.indices)
        for a, b in zip(parsed.features.values, original.features.values):
            assert a == pytest.approx(b, rel=1e-5)  # %.6g rounding


def test_round_trip_through_file(tmp_path):
    points, _ = sparse_classification(10, 12, 4, seed=23)
    path = tmp_path / "data.libsvm"
    dump_libsvm(points, path)
    loaded = load_libsvm(path, num_features=12)
    assert len(loaded) == 10
    assert loaded[3].label == points[3].label


def test_dimension_inference():
    buffer = io.StringIO("1 2:1 9:1\n0 1:1\n")
    loaded = load_libsvm(buffer)
    assert loaded[0].features.size == 9  # largest index seen


def test_empty_file():
    assert load_libsvm(io.StringIO("")) == []


@settings(max_examples=25, deadline=None)
@given(label=st.sampled_from([0.0, 1.0, -1.0, 3.5]),
       seed=st.integers(0, 200))
def test_format_parse_identity(label, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(0, 8))
    idx = np.sort(rng.choice(20, size=nnz, replace=False))
    vals = np.round(rng.standard_normal(nnz), 4)
    point = LabeledPoint(label, SparseVector(20, idx, vals))
    parsed = parse_libsvm_line(format_libsvm_line(point), num_features=20)
    assert parsed is not None
    plabel, pidx, pvals = parsed
    assert plabel == label
    assert pidx == list(idx)
    for a, b in zip(pvals, vals):
        assert a == pytest.approx(b, rel=1e-4)
