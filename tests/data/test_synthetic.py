"""Tests for synthetic data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import lda_corpus, sparse_classification
from repro.ml import LabeledPoint, SparseVector


# ---------------------------------------------------------- classification
def test_classification_shapes():
    points, w = sparse_classification(100, 50, 8, seed=1)
    assert len(points) == 100
    assert w.shape == (50,)
    for p in points:
        assert isinstance(p, LabeledPoint)
        assert p.label in (0.0, 1.0)
        assert p.features.size == 50
        assert 1 <= p.features.nnz <= 50


def test_classification_deterministic():
    a, wa = sparse_classification(50, 30, 5, seed=7)
    b, wb = sparse_classification(50, 30, 5, seed=7)
    np.testing.assert_array_equal(wa, wb)
    for pa, pb in zip(a, b):
        assert pa.label == pb.label
        assert pa.features == pb.features


def test_classification_seed_changes_data():
    a, _ = sparse_classification(50, 30, 5, seed=1)
    b, _ = sparse_classification(50, 30, 5, seed=2)
    assert any(pa.features != pb.features for pa, pb in zip(a, b))


def test_classification_labels_follow_ground_truth():
    points, w = sparse_classification(300, 40, 10, seed=3, noise=0.0)
    agree = sum(
        1 for p in points
        if (1.0 if p.features.dot(w) > 0 else 0.0) == p.label)
    assert agree == len(points)  # noise-free: labels exactly linear


def test_classification_nnz_is_heavy_tailed():
    points, _ = sparse_classification(2000, 5000, 20, seed=5)
    sizes = np.array([p.features.nnz for p in points])
    assert 10 < sizes.mean() < 40  # mean near the requested value
    assert sizes.max() > 3 * sizes.mean()  # real tail (straggler source)
    assert sizes.min() >= 1


def test_classification_validation():
    with pytest.raises(ValueError):
        sparse_classification(0, 10, 5)
    with pytest.raises(ValueError):
        sparse_classification(10, 10, 0)
    with pytest.raises(ValueError):
        sparse_classification(10, 10, 11)


def test_classification_is_learnable():
    points, _ = sparse_classification(200, 30, 6, seed=9)
    labels = [p.label for p in points]
    # Not degenerate: both classes present in fair proportion.
    assert 0.2 < np.mean(labels) < 0.8


# ----------------------------------------------------------------- corpora
def test_corpus_shapes():
    docs, topics = lda_corpus(80, 50, 5, 30, seed=1)
    assert len(docs) == 80
    assert topics.shape == (5, 50)
    np.testing.assert_allclose(topics.sum(axis=1), 1.0)
    for doc in docs:
        assert isinstance(doc, SparseVector)
        assert doc.size == 50
        assert doc.values.sum() >= 1
        assert np.all(doc.values == np.round(doc.values))  # counts


def test_corpus_deterministic():
    a, ta = lda_corpus(30, 40, 4, 20, seed=11)
    b, tb = lda_corpus(30, 40, 4, 20, seed=11)
    np.testing.assert_array_equal(ta, tb)
    for da, db in zip(a, b):
        assert da == db


def test_corpus_lengths_heavy_tailed():
    docs, _ = lda_corpus(1000, 200, 4, 40, seed=3)
    lengths = np.array([d.values.sum() for d in docs])
    assert 20 < lengths.mean() < 80
    assert lengths.max() > 3 * lengths.mean()


def test_corpus_topics_have_anchor_structure():
    _docs, topics = lda_corpus(10, 100, 4, 30, seed=5)
    block = 100 // 4
    for k in range(4):
        own_mass = topics[k, k * block:(k + 1) * block].sum()
        assert own_mass > 0.5  # each topic concentrated on its block


def test_corpus_validation():
    with pytest.raises(ValueError):
        lda_corpus(0, 50, 4, 10)
    with pytest.raises(ValueError):
        lda_corpus(10, 3, 4, 10)  # vocab < topics
    with pytest.raises(ValueError):
        lda_corpus(10, 50, 1, 10)
    with pytest.raises(ValueError):
        lda_corpus(10, 50, 4, 0)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 60), features=st.integers(2, 100),
       seed=st.integers(0, 100))
def test_classification_property(n, features, seed):
    nnz = min(5, features)
    points, w = sparse_classification(n, features, nnz, seed=seed)
    assert len(points) == n
    for p in points:
        assert p.features.size == features
        assert np.all(np.diff(p.features.indices) > 0)
