"""Tests for ring allgather and fabric edge behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.comm import CommFabric, ring_allgather_rank, sc_transport
from repro.sim import Environment


def make_ring(n_ranks, num_nodes=2):
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))
    fabric = CommFabric(cluster.network, sc_transport(cluster.config))
    for rank, slot in enumerate(cluster.executors[:n_ranks]):
        fabric.register(rank, slot.node)
    return env, fabric


def run_allgather(n_ranks, seed=0):
    env, fabric = make_ring(n_ranks)
    rng = np.random.default_rng(seed)
    owned = {r: rng.integers(0, 100, 8).astype(float)
             for r in range(n_ranks)}

    def rank_proc(rank):
        have = yield from ring_allgather_rank(
            fabric, rank, n_ranks, rank, owned[rank])
        return rank, have

    procs = [env.process(rank_proc(r)) for r in range(n_ranks)]
    results = {}
    for proc in procs:
        rank, have = env.run(until=proc)
        results[rank] = have
    return owned, results


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 5, 8])
def test_allgather_every_rank_gets_every_segment(n_ranks):
    owned, results = run_allgather(n_ranks)
    for rank in range(n_ranks):
        assert set(results[rank]) == set(range(n_ranks))
        for idx, value in results[rank].items():
            np.testing.assert_array_equal(value, owned[idx])


def test_allgather_single_rank_trivial():
    owned, results = run_allgather(1)
    assert list(results[0]) == [0]


@settings(max_examples=10, deadline=None)
@given(n_ranks=st.integers(1, 10), seed=st.integers(0, 50))
def test_allgather_property(n_ranks, seed):
    owned, results = run_allgather(n_ranks, seed)
    for rank in range(n_ranks):
        reassembled = np.concatenate(
            [results[rank][i] for i in sorted(results[rank])])
        expected = np.concatenate([owned[i] for i in range(n_ranks)])
        np.testing.assert_array_equal(reassembled, expected)


def test_isend_returns_in_flight_event():
    env, fabric = make_ring(2)
    handle = fabric.isend(0, 1, "payload", tag="t")
    assert not handle.processed

    def receiver():
        msg = yield from fabric.recv(1, tag="t")
        return msg

    recv = env.process(receiver())
    assert env.run(until=recv) == "payload"
    assert handle.processed


def test_fifo_per_tag():
    env, fabric = make_ring(2)

    def sender():
        for i in range(5):
            yield from fabric.send(0, 1, i, tag="seq")

    def receiver():
        out = []
        for _ in range(5):
            out.append((yield from fabric.recv(1, tag="seq")))
        return out

    env.process(sender())
    recv = env.process(receiver())
    assert env.run(until=recv) == [0, 1, 2, 3, 4]


def test_explicit_nbytes_overrides_estimate():
    env, fabric = make_ring(2)

    def timed_send(nbytes):
        began = env.now
        yield from fabric.send(0, 1, "tiny", tag=("n", nbytes),
                               nbytes=nbytes)
        return env.now - began

    small = env.run(until=env.process(timed_send(1.0)))
    big = env.run(until=env.process(timed_send(64 * 1024 * 1024)))
    assert big > 10 * small
