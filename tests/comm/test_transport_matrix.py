"""Cross-transport behaviour matrix and intra-node channel caps."""

import pytest

from repro.cluster import MB, Cluster, ClusterConfig
from repro.comm import (
    CommFabric,
    ScalableCommunicator,
    bm_transport,
    mpi_transport,
    sc_transport,
)
from repro.sim import Environment


def timed_send(transport_factory, intra: bool, nbytes: float) -> float:
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    fabric = CommFabric(cluster.network, transport_factory(cluster.config))
    src = cluster.executors[0]
    # executor 1 shares node 0 with... placement is round-robin: executor 0
    # -> node 0, executor 1 -> node 1, executor 2 -> node 0.
    dst = cluster.executors[2] if intra else cluster.executors[1]
    assert (dst.node is src.node) == intra
    fabric.register(0, src.node)
    fabric.register(1, dst.node)

    def body():
        began = env.now
        yield from fabric.send(0, 1, b"", tag="t", nbytes=nbytes)
        return env.now - began

    return env.run(until=env.process(body()))


def test_sc_intra_node_channel_is_capped():
    """A single SC channel on loopback crawls (~100 MB/s); Figure 14's
    reason for needing parallelism even within a node."""
    cfg = ClusterConfig.bic()
    elapsed = timed_send(sc_transport, intra=True, nbytes=8 * MB)
    assert elapsed == pytest.approx(
        cfg.sc_overhead + cfg.intra_node_latency
        + 8 * MB / cfg.loopback_stream_bandwidth, rel=1e-6)


def test_mpi_intra_node_uses_shared_memory_rate():
    """Native MPI moves intra-node data at the full loopback rate."""
    cfg = ClusterConfig.bic()
    sc_time = timed_send(sc_transport, intra=True, nbytes=8 * MB)
    mpi_time = timed_send(mpi_transport, intra=True, nbytes=8 * MB)
    assert mpi_time < sc_time / 5


def test_inter_node_stream_caps_per_transport():
    cfg = ClusterConfig.bic()
    sc_time = timed_send(sc_transport, intra=False, nbytes=8 * MB)
    mpi_time = timed_send(mpi_transport, intra=False, nbytes=8 * MB)
    # SC: 370 MB/s stream; MPI: full NIC.
    assert sc_time == pytest.approx(
        cfg.sc_overhead + cfg.inter_node_latency
        + 8 * MB / cfg.tcp_stream_bandwidth, rel=1e-6)
    assert mpi_time == pytest.approx(
        cfg.mpi_overhead + cfg.inter_node_latency
        + 8 * MB / cfg.nic_bandwidth, rel=1e-6)


def test_bm_transport_is_strictly_worst_for_small_messages():
    times = {name: timed_send(factory, intra=False, nbytes=1.0)
             for name, factory in (("bm", bm_transport),
                                   ("sc", sc_transport),
                                   ("mpi", mpi_transport))}
    assert times["mpi"] < times["sc"] < times["bm"]


def test_parallelism_still_helps_on_single_node_ring():
    """Figure 14's mechanism at single-node scope: the per-channel
    loopback cap makes extra channels worthwhile even intra-node."""
    import numpy as np
    from repro.serde import SizedPayload

    def rs_time(parallelism):
        env = Environment()
        cluster = Cluster(env, ClusterConfig.bic(num_nodes=1))
        comm = ScalableCommunicator(cluster, parallelism=parallelism)
        values = [SizedPayload(np.ones(64), sim_bytes=64 * MB)
                  for _ in range(comm.size)]
        proc = env.process(comm.reduce_scatter(
            values, lambda u, i, n: u.split(i, n),
            lambda a, b: a.merge(b)))
        env.run(until=proc)
        return env.now

    assert rs_time(4) < rs_time(1)
