"""Correctness tests for the MPI reference collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.comm import MPICH_RS_SHORT_THRESHOLD, MpiCommunicator
from repro.serde import SizedPayload
from repro.sim import Environment

from .conftest import concat_op, make_values, reduce_op, split_op


def make_comm(n_ranks, num_nodes=2):
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))
    comm = MpiCommunicator(cluster, slots=cluster.executors[:n_ranks])
    return env, comm


def collect_segments(owned):
    segments = {}
    for results in owned.values():
        segments.update(results)
    return np.concatenate([segments[i].data for i in sorted(segments)])


@pytest.mark.parametrize("algorithm", ["ring", "pairwise",
                                       "recursive_halving"])
@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 5, 7, 8])
def test_reduce_scatter_algorithms_exact(algorithm, n_ranks):
    env, comm = make_comm(n_ranks)
    values, expected = make_values(comm.size, elems=64, seed=n_ranks)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op,
                                           algorithm=algorithm))
    owned = env.run(until=proc)
    np.testing.assert_allclose(collect_segments(owned), expected)


def test_recursive_halving_removes_extra_ranks():
    env, comm = make_comm(6)  # p2=4, rem=2 -> ranks 1 and 3 own nothing
    values, expected = make_values(6, elems=32)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op,
                                           algorithm="recursive_halving"))
    owned = env.run(until=proc)
    empty = [r for r, res in owned.items() if not res]
    assert empty == [1, 3]
    np.testing.assert_allclose(collect_segments(owned), expected)


def test_auto_selection_follows_mpich_rule():
    _env, comm = make_comm(4)
    assert comm.select_reduce_scatter_algorithm(
        MPICH_RS_SHORT_THRESHOLD - 1) == "recursive_halving"
    assert comm.select_reduce_scatter_algorithm(
        MPICH_RS_SHORT_THRESHOLD) == "pairwise"


def test_reduce_scatter_auto_dispatch():
    env, comm = make_comm(4)
    # Large simulated size -> pairwise path.
    rng = np.random.default_rng(0)
    values = [SizedPayload(rng.standard_normal(32), sim_bytes=1e9)
              for _ in range(4)]
    expected = np.sum([v.data for v in values], axis=0)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op))
    owned = env.run(until=proc)
    np.testing.assert_allclose(collect_segments(owned), expected)


def test_unknown_algorithm_rejected():
    env, comm = make_comm(4)
    values, _ = make_values(4)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op,
                                           algorithm="bogus"))
    with pytest.raises(ValueError):
        env.run(until=proc)


def test_value_count_validation():
    env, comm = make_comm(4)
    values, _ = make_values(3)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op))
    with pytest.raises(ValueError):
        env.run(until=proc)


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_binomial_reduce_exact(n_ranks, root):
    if root >= n_ranks:
        pytest.skip("root outside communicator")
    env, comm = make_comm(n_ranks)
    values, expected = make_values(comm.size, elems=40, seed=root)
    proc = env.process(comm.reduce(values, split_op, reduce_op, root=root))
    result = env.run(until=proc)
    np.testing.assert_allclose(result.data, expected)


@pytest.mark.parametrize("algorithm", ["recursive_doubling", "rabenseifner"])
@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 6, 8])
def test_allreduce_exact(algorithm, n_ranks):
    env, comm = make_comm(n_ranks)
    values, expected = make_values(comm.size, elems=24, seed=n_ranks)
    proc = env.process(comm.allreduce(values, split_op, reduce_op, concat_op,
                                      algorithm=algorithm))
    results = env.run(until=proc)
    assert len(results) == comm.size
    for value in results:
        np.testing.assert_allclose(value.data, expected)


def test_allreduce_unknown_algorithm():
    env, comm = make_comm(2)
    values, _ = make_values(2)
    proc = env.process(comm.allreduce(values, split_op, reduce_op, concat_op,
                                      algorithm="bogus"))
    with pytest.raises(ValueError):
        env.run(until=proc)


def test_mpi_rank_placement_is_hostfile_order():
    env, comm = make_comm(12, num_nodes=2)
    hosts = [s.hostname for s in comm.ranked]
    assert hosts == sorted(hosts)


@settings(max_examples=10, deadline=None)
@given(
    n_ranks=st.integers(min_value=1, max_value=9),
    elems=st.integers(min_value=1, max_value=100),
    seed=st.integers(min_value=0, max_value=999),
)
def test_pairwise_matches_ring_property(n_ranks, elems, seed):
    """Property: every reduce-scatter algorithm computes the same sums."""
    results = []
    for algorithm in ("ring", "pairwise", "recursive_halving"):
        env, comm = make_comm(n_ranks)
        values, expected = make_values(comm.size, elems=elems, seed=seed)
        proc = env.process(comm.reduce_scatter(
            values, split_op, reduce_op, algorithm=algorithm))
        owned = env.run(until=proc)
        np.testing.assert_allclose(collect_segments(owned), expected)
        results.append(collect_segments(owned))
    np.testing.assert_allclose(results[0], results[1])
    np.testing.assert_allclose(results[0], results[2])
