"""Tests for transports and the point-to-point fabric."""

import pytest

from repro.cluster import US, Cluster, ClusterConfig
from repro.comm import (
    CommFabric,
    TransportSpec,
    bm_transport,
    measure_latency,
    mpi_transport,
    sc_transport,
)
from repro.sim import Environment


def make(num_nodes=2):
    env = Environment()
    return env, Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))


def test_transport_specs_ordering():
    cfg = ClusterConfig.bic()
    mpi, sc, bm = mpi_transport(cfg), sc_transport(cfg), bm_transport(cfg)
    assert mpi.overhead < sc.overhead < bm.overhead
    # Native MPI saturates the NIC with a single stream; JVM stacks do not.
    assert mpi.stream_bandwidth == cfg.nic_bandwidth
    assert sc.stream_bandwidth is None


def test_transport_validation():
    with pytest.raises(ValueError):
        TransportSpec("x", overhead=-1.0, stream_bandwidth=None)
    with pytest.raises(ValueError):
        TransportSpec("x", overhead=0.0, stream_bandwidth=0.0)


def test_send_recv_delivers_payload():
    env, cluster = make()
    fabric = CommFabric(cluster.network, sc_transport(cluster.config))
    fabric.register(0, cluster.nodes[0])
    fabric.register(1, cluster.nodes[1])

    def sender():
        yield from fabric.send(0, 1, {"hello": 1}, tag="t")

    def receiver():
        msg = yield from fabric.recv(1, tag="t")
        return msg

    env.process(sender())
    proc = env.process(receiver())
    assert env.run(until=proc) == {"hello": 1}
    assert fabric.delivered == 1


def test_tags_isolate_messages():
    env, cluster = make()
    fabric = CommFabric(cluster.network, sc_transport(cluster.config))
    fabric.register(0, cluster.nodes[0])
    fabric.register(1, cluster.nodes[1])

    def sender():
        yield from fabric.send(0, 1, "A", tag="a")
        yield from fabric.send(0, 1, "B", tag="b")

    def receiver():
        # Receive in the opposite tag order.
        b = yield from fabric.recv(1, tag="b")
        a = yield from fabric.recv(1, tag="a")
        return a, b

    env.process(sender())
    proc = env.process(receiver())
    assert env.run(until=proc) == ("A", "B")


def test_duplicate_rank_registration_rejected():
    env, cluster = make()
    fabric = CommFabric(cluster.network, sc_transport(cluster.config))
    fabric.register(0, cluster.nodes[0])
    with pytest.raises(ValueError):
        fabric.register(0, cluster.nodes[1])


def test_unregistered_rank_rejected():
    env, cluster = make()
    fabric = CommFabric(cluster.network, sc_transport(cluster.config))
    with pytest.raises(KeyError):
        fabric.node_of(3)


def test_latency_matches_paper_figure12():
    """One-way latencies land on the paper's measurements (Figure 12)."""
    env, cluster = make()
    mpi = measure_latency(cluster, mpi_transport(cluster.config))
    assert mpi == pytest.approx(15.94 * US, rel=0.02)

    env, cluster = make()
    sc = measure_latency(cluster, sc_transport(cluster.config))
    assert sc == pytest.approx(72.73 * US, rel=0.02)

    env, cluster = make()
    bm = measure_latency(cluster, bm_transport(cluster.config))
    assert bm == pytest.approx(3861.25 * US, rel=0.02)

    # And the paper's headline ratios: SC ~4.6x MPI, BM ~242x MPI.
    assert sc / mpi == pytest.approx(4.56, rel=0.05)
    assert bm / mpi == pytest.approx(242.24, rel=0.05)


def test_ping_pong_round_validation():
    env, cluster = make()
    fabric = CommFabric(cluster.network, sc_transport(cluster.config))
    fabric.register(0, cluster.nodes[0])
    fabric.register(1, cluster.nodes[1])
    proc = env.process(fabric.ping_pong(0, 1, rounds=0))
    with pytest.raises(ValueError):
        env.run(until=proc)
