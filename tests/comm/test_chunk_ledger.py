"""ChunkLedger: the per-chunk delivery fence for rebuilt pipelined rings."""

import numpy as np
import pytest

from repro.comm import ChunkLedger


@pytest.fixture
def bound():
    ledger = ChunkLedger()
    ledger.bind(key=((0, 1, 2), 2, 0), size=3)
    return ledger


def test_unacknowledged_until_every_rank_records(bound):
    bound.record("ring/0", 0, rank=0, owned=1, value="a")
    bound.record("ring/0", 0, rank=1, owned=2, value="b")
    assert not bound.acknowledged("ring/0", 0)
    bound.record("ring/0", 0, rank=2, owned=0, value="c")
    assert bound.acknowledged("ring/0", 0)
    assert bound.acknowledged_columns() == 1


def test_columns_fence_independently(bound):
    for rank in range(3):
        bound.record("ring/0", 0, rank, owned=rank, value=rank)
    bound.record("ring/0", 1, 0, owned=0, value="partial")
    assert bound.acknowledged("ring/0", 0)
    assert not bound.acknowledged("ring/0", 1)
    assert bound.acknowledged_columns() == 1


def test_recall_returns_rank_slice(bound):
    value = np.arange(4.0)
    bound.record("ring/1", 2, rank=1, owned=0, value=value)
    owned, recalled = bound.recall("ring/1", 2, rank=1)
    assert owned == 0
    assert recalled is value


def test_rebind_same_key_preserves_records(bound):
    bound.record("ring/0", 0, 0, owned=0, value="kept")
    bound.bind(key=((0, 1, 2), 2, 0), size=3)
    assert bound.recall("ring/0", 0, 0) == (0, "kept")


@pytest.mark.parametrize("key,size", [
    (((0, 2), 2, 0), 2),       # survivor topology shrank (executor died)
    (((0, 1, 2), 2, 1), 3),    # lineage recompute bumped the epoch
    (((0, 1, 2), 4, 0), 3),    # parallelism changed
])
def test_rebind_different_key_clears(bound, key, size):
    for rank in range(3):
        bound.record("ring/0", 0, rank, owned=rank, value=rank)
    assert bound.acknowledged("ring/0", 0)
    bound.bind(key=key, size=size)
    assert not bound.acknowledged("ring/0", 0)
    assert bound.acknowledged_columns() == 0


def test_empty_ledger_acknowledges_nothing():
    ledger = ChunkLedger()
    assert not ledger.acknowledged("ring/0", 0)
    assert ledger.acknowledged_columns() == 0
