"""Bit-identity and registry tests for the pluggable collective engine.

The contract every algorithm in :mod:`repro.comm.collectives` must meet:
for each global segment the final value is the seed ring's left-deep
reduction chain, so float64 results are *byte-identical* across
``ring`` / ``hd`` / ``hierarchical`` at any ring size and parallelism.
"""

import numpy as np
import pytest

from repro import AggregationSpec
from repro.cluster import Cluster, ClusterConfig
from repro.comm import (
    ScalableCommunicator,
    available_collectives,
    get_collective,
)
from repro.comm.collectives import _ChainState, _owner_block
from repro.faults import (
    AtRingHop,
    ExecutorCrash,
    FaultController,
    FaultPlan,
    RecoveryPolicy,
)
from repro.rdd import SparkerContext
from repro.serde import SizedPayload
from repro.sim import Environment

from .conftest import concat_op, make_values, reduce_op, split_op

RING_SIZES = [2, 3, 5, 8]
ALGORITHMS = ["ring", "hd", "hierarchical", "pipelined_ring"]


def run_gather(algorithm, n, parallelism=2, elems=64, seed=0,
               num_nodes=3, topology_aware=True):
    """One full reduce_scatter_gather; returns the concatenated payload."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))
    comm = ScalableCommunicator(cluster, parallelism=parallelism,
                                topology_aware=topology_aware,
                                slots=cluster.executors[:n])
    values, expected = make_values(n, elems=elems, seed=seed)
    proc = env.process(comm.reduce_scatter_gather(
        values, split_op, reduce_op, concat_op, algorithm=algorithm))
    result = env.run(until=proc)
    return result, expected, env.now


# ------------------------------------------------------------- registry
def test_registry_lists_all_three():
    assert set(ALGORITHMS) <= set(available_collectives())


def test_unknown_algorithm_rejected():
    with pytest.raises(KeyError, match="unknown collective"):
        get_collective("quantum")


def test_hierarchical_requires_topology_aware():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster, parallelism=1,
                                topology_aware=False)
    with pytest.raises(ValueError, match="topology_aware"):
        get_collective("hierarchical").validate(comm)


# ---------------------------------------------------------- bit-identity
@pytest.mark.parametrize("n", RING_SIZES)
@pytest.mark.parametrize("parallelism", [1, 2, 4])
def test_bit_identical_to_ring(n, parallelism):
    baseline, expected, _ = run_gather("ring", n, parallelism)
    np.testing.assert_allclose(baseline.data, expected)
    for algorithm in ("hd", "hierarchical"):
        result, _, _ = run_gather(algorithm, n, parallelism)
        assert result.data.tobytes() == baseline.data.tobytes(), (
            f"{algorithm} diverged from ring at n={n} P={parallelism}")


@pytest.mark.parametrize("algorithm", ["hd", "hierarchical"])
def test_bit_identical_under_adversarial_values(algorithm):
    """Catastrophic-cancellation values expose any re-association."""
    rng = np.random.default_rng(11)
    n, parallelism, elems = 5, 2, 48
    values = [SizedPayload(rng.standard_normal(elems) * 10.0 ** rng.integers(
        -8, 8, size=elems)) for _ in range(n)]

    def once(algo):
        env = Environment()
        cluster = Cluster(env, ClusterConfig.bic(num_nodes=3))
        comm = ScalableCommunicator(cluster, parallelism=parallelism,
                                    slots=cluster.executors[:n])
        vals = [SizedPayload(v.data.copy()) for v in values]
        proc = env.process(comm.reduce_scatter_gather(
            vals, split_op, reduce_op, concat_op, algorithm=algo))
        return env.run(until=proc)

    assert once(algorithm).data.tobytes() == once("ring").data.tobytes()


def test_hd_faster_than_ring_at_scale():
    """Latency-bound regime: log2(n) rounds beat n-1 hops."""
    _, _, ring_t = run_gather("ring", 8, 2, num_nodes=2)
    _, _, hd_t = run_gather("hd", 8, 2, num_nodes=2)
    assert hd_t < ring_t


# ------------------------------------------------------------ chain state
def test_chain_state_folds_in_ring_order():
    calls = []

    def op(a, b):
        calls.append((a, b))
        return a + b

    st = _ChainState(start=2, size=4)
    st.add(3, 3.0)
    st.add(1, 1.0)  # out of order relative to the chain
    st.add(0, 0.25)
    st.fold(op)
    assert not st.complete  # rank 2's own value has not arrived yet
    assert st.acc is None and not calls
    st.add(2, 20.0)
    st.fold(op)
    # chain from rank 2 walks 3, 0, 1: contribution FIRST, acc SECOND
    assert st.complete
    assert calls == [(3.0, 20.0), (0.25, 23.0), (1.0, 23.25)]
    assert st.acc == 24.25


def test_chain_state_defers_non_prefix_contributions():
    st = _ChainState(start=1, size=3)
    st.add(1, 10.0)
    st.add(0, 0.5)  # last link of the chain: must stay pending
    st.fold(lambda a, b: a + b)
    assert st.acc == 10.0 and st.count == 1
    assert st.pending == {0: 0.5}


def test_chain_state_export_absorb_roundtrip():
    op = lambda a, b: a + b  # noqa: E731
    src = _ChainState(start=1, size=3)
    src.add(1, 10.0)
    src.add(0, 0.5)
    src.fold(op)
    dst = _ChainState(start=1, size=3)
    dst.absorb(src.export())
    dst.add(2, 2.0)
    dst.fold(op)
    assert dst.complete
    assert dst.acc == (0.5 + (2.0 + 10.0))


def test_chain_state_rejects_two_folded_prefixes():
    st = _ChainState(start=0, size=2)
    st.acc, st.count = 1.0, 1
    other = _ChainState(start=0, size=2)
    other.acc, other.count = 2.0, 1
    with pytest.raises(RuntimeError, match="two folded prefixes"):
        st.absorb(other.export())


def test_owner_block_partitions_exactly():
    n, n2 = 7, 4
    blocks = [_owner_block(n, n2, owner) for owner in range(n2)]
    covered = [j for lo, hi in blocks for j in range(lo, hi)]
    assert covered == list(range(n))


# ------------------------------------------------------------ faulted runs
def _faulted_split_aggregate(algorithm):
    sc = SparkerContext(ClusterConfig.laptop(num_nodes=4))
    victim = sc.executors[2].executor_id
    plan = FaultPlan(faults=(ExecutorCrash(victim, AtRingHop(1)),), seed=7)
    FaultController(sc, plan,
                    RecoveryPolicy(recv_timeout=0.25,
                                   max_ring_attempts=3)).arm()
    data = [SizedPayload(np.full(32, float(i + 1))) for i in range(8)]
    rdd = sc.parallelize(data, 8)
    zero = lambda: SizedPayload(np.zeros(32))  # noqa: E731
    result = rdd.split_aggregate(
        zero, lambda a, x: a.merge_inplace(x),
        lambda u, i, n: u.split(i, n),
        lambda a, b: a.merge(b),
        SizedPayload.concat,
        AggregationSpec(collective=algorithm, parallelism=2))
    return result.data


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_faulted_runs_recover_with_exact_sum(algorithm):
    expected = np.full(32, sum(range(1, 9)), dtype=float)
    np.testing.assert_array_equal(_faulted_split_aggregate(algorithm),
                                  expected)
