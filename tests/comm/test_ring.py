"""Correctness tests for the scalable communicator's ring collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.comm import ScalableCommunicator
from repro.sim import Environment

from .conftest import concat_op, make_values, reduce_op, split_op


def run_reduce_scatter(num_nodes=2, parallelism=2, topology_aware=True,
                       elems=64, seed=0, slots=None):
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))
    comm = ScalableCommunicator(cluster, parallelism=parallelism,
                                topology_aware=topology_aware, slots=slots)
    values, expected = make_values(comm.size, elems=elems, seed=seed)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op))
    owned = env.run(until=proc)
    return env, comm, owned, expected


def reassemble(comm, owned):
    segments = {}
    for results in owned.values():
        segments.update(results)
    assert sorted(segments) == list(range(comm.num_segments))
    return np.concatenate([segments[i].data for i in sorted(segments)])


def test_reduce_scatter_computes_exact_sum():
    _env, comm, owned, expected = run_reduce_scatter()
    np.testing.assert_allclose(reassemble(comm, owned), expected)


def test_each_rank_owns_parallelism_segments():
    _env, comm, owned, _ = run_reduce_scatter(parallelism=3)
    assert set(owned) == set(range(comm.size))
    for results in owned.values():
        assert len(results) == 3


def test_segment_owner_accessor_agrees():
    _env, comm, owned, _ = run_reduce_scatter()
    for rank, results in owned.items():
        for idx in results:
            assert comm.segment_owner(idx) == rank


def test_segment_owner_bounds():
    _env, comm, _owned, _ = run_reduce_scatter()
    with pytest.raises(IndexError):
        comm.segment_owner(comm.num_segments)


def test_single_executor_ring():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.laptop(num_nodes=1))
    comm = ScalableCommunicator(cluster, parallelism=2,
                                slots=cluster.executors[:1])
    values, expected = make_values(1, elems=16)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op))
    owned = env.run(until=proc)
    np.testing.assert_allclose(reassemble(comm, owned), expected)


def test_value_count_must_match_ring_size():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster)
    values, _ = make_values(3)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op))
    with pytest.raises(ValueError):
        env.run(until=proc)


def test_topology_aware_ranking_groups_hosts():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=4))
    aware = ScalableCommunicator(cluster, topology_aware=True)
    hosts = [s.hostname for s in aware.ranked]
    blocks = 1 + sum(1 for a, b in zip(hosts, hosts[1:]) if a != b)
    assert blocks == 4

    oblivious = ScalableCommunicator(cluster, topology_aware=False)
    hosts = [s.hostname for s in oblivious.ranked]
    transitions = sum(1 for a, b in zip(hosts, hosts[1:]) if a != b)
    assert transitions == len(hosts) - 1


def test_topology_awareness_is_faster():
    """The paper's Figure 14 effect: hostname sort beats id sort."""
    env_a, _, _, _ = run_reduce_scatter(num_nodes=4, topology_aware=True,
                                        elems=4096)
    env_b, _, _, _ = run_reduce_scatter(num_nodes=4, topology_aware=False,
                                        elems=4096)
    assert env_a.now < env_b.now


def test_more_parallelism_is_not_slower_for_large_messages():
    env_1, _, _, _ = run_reduce_scatter(parallelism=1, elems=8192)
    env_4, _, _, _ = run_reduce_scatter(parallelism=4, elems=8192)
    assert env_4.now < env_1.now


def test_gather_concat_returns_full_vector():
    env, comm, owned, expected = run_reduce_scatter()
    proc = env.process(comm.gather_concat(owned, concat_op))
    result = env.run(until=proc)
    np.testing.assert_allclose(result.data, expected)


def test_reduce_scatter_gather_end_to_end():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster, parallelism=2)
    values, expected = make_values(comm.size, elems=100, seed=3)
    proc = env.process(comm.reduce_scatter_gather(
        values, split_op, reduce_op, concat_op))
    result = env.run(until=proc)
    np.testing.assert_allclose(result.data, expected)


def test_allreduce_every_rank_gets_full_sum():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster, parallelism=2)
    values, expected = make_values(comm.size, elems=48, seed=7)
    proc = env.process(comm.allreduce(values, split_op, reduce_op, concat_op))
    results = env.run(until=proc)
    assert len(results) == comm.size
    for value in results:
        np.testing.assert_allclose(value.data, expected)


def test_parallelism_validation():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    with pytest.raises(ValueError):
        ScalableCommunicator(cluster, parallelism=0)


def test_rank_of_lookup():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster)
    for rank, slot in enumerate(comm.ranked):
        assert comm.rank_of(slot.executor_id) == rank
    with pytest.raises(KeyError):
        comm.rank_of(10_000)


@settings(max_examples=15, deadline=None)
@given(
    n_ranks=st.integers(min_value=1, max_value=10),
    parallelism=st.integers(min_value=1, max_value=4),
    elems=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_reduce_scatter_correct_for_any_shape(n_ranks, parallelism, elems,
                                              seed):
    """Property: ring reduce-scatter equals the sequential sum for any
    ring size, channel count and vector length (including elems < N*P)."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster, parallelism=parallelism,
                                slots=cluster.executors[:n_ranks])
    values, expected = make_values(comm.size, elems=elems, seed=seed)
    proc = env.process(comm.reduce_scatter(values, split_op, reduce_op))
    owned = env.run(until=proc)
    np.testing.assert_allclose(reassemble(comm, owned), expected)
