"""Cost model, online calibration, and tuner-choice tests.

The model only steers scheduling (never correctness), so these tests pin
the *decision properties* the tuner relies on: deterministic candidate
ordering, ring-first tie-breaking, regime-correct rankings (latency-bound
favours ``hd``, bandwidth-bound favours the ring), and that both feedback
loops (EWMA correction + link calibration) move predictions toward what
was measured.
"""

from types import SimpleNamespace

import pytest

from repro.cluster import MB, ClusterConfig
from repro.comm.cost import (
    SMALL_MESSAGE_BYTES,
    CollectiveCostModel,
    CollectivePlan,
    CostCalibrator,
    choose_collective,
    cost_model_for,
)
from repro.obs import EventBus, MessageDelivered, NicSample


def make_model(alpha=1e-3, stream=100 * MB, nic=1000 * MB,
               merge=5000 * MB):
    return CollectiveCostModel(
        alpha_inter=alpha, alpha_intra=alpha / 10.0,
        stream_bandwidth=stream, nic_bandwidth=nic,
        loopback_stream=10 * stream, loopback_bandwidth=10 * nic,
        merge_bandwidth=merge, ser_bandwidth=merge, deser_bandwidth=merge)


def slots(*hostnames):
    return [SimpleNamespace(hostname=h) for h in hostnames]


def plan(algorithm, ranks=8, parallelism=2, hosts=(4, 4),
         value_bytes=64.0 * MB):
    return CollectivePlan(algorithm=algorithm, parallelism=parallelism,
                          ranks=ranks, hosts=hosts,
                          value_bytes=value_bytes)


# ------------------------------------------------------------- prediction
def test_predictions_positive_and_finite():
    model = make_model()
    for algorithm in ("ring", "hd", "hierarchical"):
        t = model.predict(plan(algorithm))
        assert 0.0 < t < 1e6


def test_unknown_algorithm_has_no_formula():
    with pytest.raises(ValueError, match="no cost formula"):
        make_model().predict(plan("quantum"))


def test_single_rank_pays_only_the_gather():
    model = make_model()
    times = {a: model.predict(plan(a, ranks=1, hosts=(1,)))
             for a in ("ring", "hd", "hierarchical")}
    # no reduce phase: every algorithm degenerates to the same gather
    assert len(set(times.values())) == 1


def test_latency_bound_regime_favours_hd():
    """Huge alpha, tiny payload: log2(N) rounds beat N-1 hops."""
    model = make_model(alpha=1.0)
    p_ring = model.predict(plan("ring", ranks=16, hosts=(8, 8),
                                value_bytes=1024.0))
    p_hd = model.predict(plan("hd", ranks=16, hosts=(8, 8),
                              value_bytes=1024.0))
    assert p_hd < p_ring


def test_bandwidth_bound_regime_favours_ring():
    """Tiny alpha, huge payload: the ring's near-optimal volume wins."""
    model = make_model(alpha=1e-7)
    p_ring = model.predict(plan("ring", ranks=16, hosts=(8, 8),
                                value_bytes=256.0 * MB))
    p_hd = model.predict(plan("hd", ranks=16, hosts=(8, 8),
                              value_bytes=256.0 * MB))
    assert p_ring < p_hd


def test_segment_bytes_divides_by_ranks_and_parallelism():
    p = plan("ring", ranks=8, parallelism=4, value_bytes=64.0 * MB)
    assert p.segment_bytes == 64.0 * MB / 32


# ------------------------------------------------------------- correction
def test_observe_corrects_systematic_bias():
    model = make_model()
    p = plan("ring")
    predicted = model.predict(p)
    model.observe("ring", predicted, 2.0 * predicted)  # model 2x optimistic
    corrected = model.predict(p)
    assert corrected == pytest.approx(2.0 * predicted)
    assert model.observations["ring"] == 1


def test_observe_is_an_ewma_not_a_jump():
    model = make_model()
    p = plan("hd")
    first = model.predict(p)
    model.observe("hd", first, 2.0 * first)
    model.observe("hd", model.predict(p), first)  # contradicting sample
    # correction settles between the two ratios, never oscillates outside
    assert 1.0 < model.corrections["hd"] < 2.0


def test_observe_ignores_degenerate_samples():
    model = make_model()
    model.observe("ring", 0.0, 1.0)
    model.observe("ring", 1.0, 0.0)
    assert "ring" not in model.corrections


# ------------------------------------------------------------- calibrator
def _delivered(nbytes, flight_time):
    return MessageDelivered(time=0.0, transport="sc", src=0, dst=1,
                            channel="0", hop=0, nbytes=nbytes,
                            queue_wait=0.0, flight_time=flight_time)


def test_calibrator_small_messages_refine_alpha():
    model = make_model(alpha=1e-3)
    cal = CostCalibrator(model)
    for _ in range(64):
        cal.on_event(_delivered(128.0, 4e-3))
    assert cal.alpha_samples == 64
    assert model.alpha_inter == pytest.approx(4e-3, rel=0.05)


def test_calibrator_large_messages_refine_beta():
    model = make_model(alpha=1e-3, stream=100 * MB)
    cal = CostCalibrator(model)
    nbytes = 64 * MB
    # wire time consistent with a 200 MB/s achieved stream
    for _ in range(64):
        cal.on_event(_delivered(nbytes, model.alpha_inter
                                + nbytes / (200 * MB)))
    assert cal.beta_samples == 64
    assert model.stream_bandwidth == pytest.approx(200 * MB, rel=0.05)


def test_calibrator_ignores_sub_alpha_flights():
    model = make_model(alpha=1e-3)
    cal = CostCalibrator(model)
    before = model.stream_bandwidth
    cal.on_event(_delivered(SMALL_MESSAGE_BYTES + 1, 1e-9))
    assert model.stream_bandwidth == before and cal.beta_samples == 0


def test_calibrator_ratchets_nic_ceiling_up_only():
    model = make_model(nic=1000 * MB)
    cal = CostCalibrator(model)
    cal.on_event(NicSample(time=0.0, node_id=0, hostname="h0",
                           is_driver=False, in_rate=500 * MB,
                           out_rate=400 * MB, in_utilization=0.5,
                           out_utilization=0.4))
    assert model.nic_bandwidth == 1000 * MB  # never lowered
    cal.on_event(NicSample(time=0.0, node_id=0, hostname="h0",
                           is_driver=False, in_rate=1500 * MB,
                           out_rate=400 * MB, in_utilization=1.0,
                           out_utilization=0.3))
    assert model.nic_bandwidth == 1500 * MB
    assert cal.nic_samples == 2


# ---------------------------------------------------------------- chooser
CANDIDATES = ("ring", "hd", "hierarchical")


def test_choose_is_deterministic_and_exhaustive():
    model = make_model()
    sl = slots("h0", "h0", "h1", "h1")
    winner1, est1 = choose_collective(model, 8.0 * MB, sl, CANDIDATES,
                                      (1, 2, 4))
    winner2, est2 = choose_collective(model, 8.0 * MB, sl, CANDIDATES,
                                      (1, 2, 4))
    assert winner1 == winner2
    assert [(p.algorithm, p.parallelism) for p, _ in est1] == [
        (a, p) for a in CANDIDATES for p in (1, 2, 4)]
    assert est1 == est2
    assert min(t for _, t in est1) == dict(
        ((p.algorithm, p.parallelism), t) for p, t in est1)[
        (winner1.algorithm, winner1.parallelism)]


def test_ties_break_toward_ring_first():
    """One rank: every algorithm prices identically -> seed ring wins."""
    model = make_model()
    winner, estimates = choose_collective(
        model, 1.0 * MB, slots("h0"), CANDIDATES, (2, 4))
    assert len({t for _, t in estimates}) <= 2  # per-P, not per-algo
    assert winner.algorithm == "ring"
    assert winner.parallelism == 2  # earlier candidate wins the tie too


def test_choose_rejects_empty_slot_list():
    with pytest.raises(ValueError, match="at least one slot"):
        choose_collective(make_model(), 1.0, [], CANDIDATES, (1,))


def test_host_profile_feeds_the_plan():
    model = make_model()
    winner, _ = choose_collective(
        model, 1.0 * MB, slots("a", "a", "a", "b"), ("ring",), (1,))
    assert winner.hosts == (3, 1)
    assert winner.ranks == 4


# ------------------------------------------------------------ model cache
def test_cost_model_for_caches_per_context():
    sc = SimpleNamespace(
        cluster=SimpleNamespace(config=ClusterConfig.bic(num_nodes=2)))
    model = cost_model_for(sc)
    assert cost_model_for(sc) is model
    assert not hasattr(sc, "collective_calibrator")  # no bus, no listener


def test_cost_model_for_wires_the_calibrator_to_the_bus():
    bus = EventBus()
    sc = SimpleNamespace(
        cluster=SimpleNamespace(config=ClusterConfig.bic(num_nodes=2)),
        event_bus=bus)
    model = cost_model_for(sc)
    assert sc.collective_calibrator.model is model
    bus.emit(_delivered(64.0, 5e-3))
    assert sc.collective_calibrator.alpha_samples == 1


# --------------------------------------------------------- pipelined ring
def test_pipelined_single_column_prices_like_the_ring():
    """chunk_bytes >= segment: one column, no pipelining — the formula
    must collapse to the classic ring's exactly."""
    model = make_model()
    p_ring = plan("ring")
    p_pipe = CollectivePlan(algorithm="pipelined_ring", parallelism=2,
                            ranks=8, hosts=(4, 4), value_bytes=64.0 * MB,
                            chunk_bytes=1e15)
    assert model.predict(p_pipe) == model.predict(p_ring)


def test_pipelined_overlap_beats_ring_on_merge_heavy_hops():
    """Slow merges: C columns hide most of the merge under the wire, so
    pipelined must price strictly below the classic ring."""
    model = make_model(merge=120 * MB)  # merge time ~ wire time
    p_ring = plan("ring", value_bytes=256.0 * MB)
    p_pipe = CollectivePlan(algorithm="pipelined_ring", parallelism=2,
                            ranks=8, hosts=(4, 4), value_bytes=256.0 * MB,
                            chunk_bytes=1.0 * MB)
    assert model.predict(p_pipe) < model.predict(p_ring)


def test_pipelined_pays_per_chunk_launch_latency():
    """Pathological chunk counts: the (C-1)*alpha launch term dominates,
    so absurdly small chunks price worse than no chunking."""
    model = make_model(alpha=1e-2)
    tiny = CollectivePlan(algorithm="pipelined_ring", parallelism=2,
                          ranks=8, hosts=(4, 4), value_bytes=64.0 * MB,
                          chunk_bytes=64.0)
    one = CollectivePlan(algorithm="pipelined_ring", parallelism=2,
                         ranks=8, hosts=(4, 4), value_bytes=64.0 * MB,
                         chunk_bytes=1e15)
    assert model.predict(tiny) > model.predict(one)


def test_choose_collective_threads_chunk_bytes_into_plans():
    model = make_model()
    winner, estimates = choose_collective(
        model, 8.0 * MB, slots("h0", "h0", "h1", "h1"),
        ("ring", "pipelined_ring"), (2,), chunk_bytes=1.0 * MB)
    assert {p.algorithm for p, _ in estimates} == {"ring",
                                                   "pipelined_ring"}
    for p, _ in estimates:
        assert p.chunk_bytes == 1.0 * MB


def test_auto_can_select_pipelined_on_merge_heavy_cells():
    model = make_model(merge=120 * MB)
    winner, _ = choose_collective(
        model, 256.0 * MB, slots("h0", "h0", "h1", "h1"),
        ("ring", "pipelined_ring"), (2,), chunk_bytes=4.0 * MB)
    assert winner.algorithm == "pipelined_ring"


def test_ties_still_break_to_the_seed_ring():
    """With one column the two formulas coincide; listing ring first must
    keep the seed choice on the tie."""
    model = make_model()
    winner, _ = choose_collective(
        model, 8.0 * MB, slots("h0", "h0", "h1", "h1"),
        ("ring", "pipelined_ring"), (2,), chunk_bytes=1e15)
    assert winner.algorithm == "ring"
