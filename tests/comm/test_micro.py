"""Tests for the point-to-point micro-benchmark helpers (Figures 12/13)."""

import pytest

from repro.cluster import MB, Cluster, ClusterConfig
from repro.comm import (
    measure_latency,
    measure_throughput,
    mpi_transport,
    sc_transport,
)
from repro.sim import Environment


def fresh_cluster(num_nodes=2):
    env = Environment()
    return Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))


def test_throughput_single_sc_channel_hits_stream_cap():
    cluster = fresh_cluster()
    cfg = cluster.config
    bw = measure_throughput(cluster, sc_transport(cfg), nbytes=8 * MB,
                            parallelism=1)
    assert bw == pytest.approx(cfg.tcp_stream_bandwidth, rel=0.02)


def test_throughput_grows_with_parallelism_then_saturates():
    cfg = ClusterConfig.bic()
    bws = {}
    for p in (1, 2, 4):
        bws[p] = measure_throughput(fresh_cluster(), sc_transport(cfg),
                                    nbytes=8 * MB, parallelism=p)
    assert bws[2] == pytest.approx(2 * bws[1], rel=0.05)
    # 4 channels exceed the NIC: capped near line rate, not 4x.
    assert bws[4] < 4 * bws[1]
    assert bws[4] == pytest.approx(cfg.nic_bandwidth, rel=0.05)


def test_sc_4_channels_reach_97_percent_of_mpi():
    """The paper's Figure 13 headline: SC reaches 97.1% of line rate."""
    cfg = ClusterConfig.bic()
    mpi = measure_throughput(fresh_cluster(), mpi_transport(cfg),
                             nbytes=256 * MB, parallelism=1)
    sc4 = measure_throughput(fresh_cluster(), sc_transport(cfg),
                             nbytes=256 * MB, parallelism=4)
    assert 0.90 < sc4 / mpi <= 1.0


def test_gc_drag_dents_large_message_bandwidth():
    """Figure 13: SC bandwidth 'gets worse when the message size is large'."""
    cfg = ClusterConfig.bic()
    mid = measure_throughput(fresh_cluster(), sc_transport(cfg),
                             nbytes=32 * MB, parallelism=4)
    big = measure_throughput(fresh_cluster(), sc_transport(cfg),
                             nbytes=256 * MB, parallelism=4)
    assert big < mid


def test_mpi_latency_beats_sc():
    cfg = ClusterConfig.bic()
    mpi = measure_latency(fresh_cluster(), mpi_transport(cfg))
    sc = measure_latency(fresh_cluster(), sc_transport(cfg))
    assert mpi < sc


def test_throughput_validation():
    cluster = fresh_cluster()
    cfg = cluster.config
    with pytest.raises(ValueError):
        measure_throughput(cluster, sc_transport(cfg), nbytes=0)
    with pytest.raises(ValueError):
        measure_throughput(cluster, sc_transport(cfg), nbytes=1,
                           parallelism=0)


def test_single_node_cluster_rejected_for_p2p():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=1))
    with pytest.raises(ValueError):
        measure_latency(cluster, sc_transport(cluster.config))
