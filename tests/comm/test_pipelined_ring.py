"""Pipelined ring: chunk columns, bit-identity, and streaming readiness.

The pipelined ring decomposes every channel into C independent chunk
sub-rings so wire time and merge time overlap within a hop. Each column
runs the unchanged classic ring over elementwise slices, so the final
bytes must equal the seed ring's exactly at every ring size, parallelism
and chunk count.
"""

import numpy as np
import pytest

from repro.cluster import MB, Cluster, ClusterConfig
from repro.comm import ScalableCommunicator, available_collectives
from repro.comm.ring import chunk_columns_for, pipelined_ring_reduce_scatter_rank
from repro.ml.aggregators import AggregatorSegment
from repro.obs import ChunkStream, EventBus
from repro.serde import SizedPayload
from repro.sim import Environment

from .conftest import concat_op, make_values, reduce_op, split_op

RING_SIZES = [2, 3, 5, 8]


def run_gather(algorithm, n, parallelism=2, elems=64, seed=0, num_nodes=3,
               chunk_bytes=None, num_chunks=None, bus=None, pipeline=None):
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=num_nodes))
    comm = ScalableCommunicator(cluster, parallelism=parallelism,
                                slots=cluster.executors[:n], bus=bus)
    if chunk_bytes is not None:
        comm.chunk_bytes = chunk_bytes
    if num_chunks is not None:
        comm.num_chunks = num_chunks
    if pipeline is not None:
        comm.pipeline = pipeline(env, comm)
    values, expected = make_values(n, elems=elems, seed=seed)
    proc = env.process(comm.reduce_scatter_gather(
        values, split_op, reduce_op, concat_op, algorithm=algorithm))
    result = env.run(until=proc)
    return result, expected, env.now


# ------------------------------------------------------------- registry
def test_registry_includes_pipelined_ring():
    assert "pipelined_ring" in available_collectives()


# ---------------------------------------------------------- chunk count
def test_chunk_columns_respects_chunk_bytes():
    seg = SizedPayload(np.zeros(64), sim_bytes=16 * MB)
    assert chunk_columns_for(seg, 4 * MB) == 4
    assert chunk_columns_for(seg, 16 * MB) == 1
    assert chunk_columns_for(seg, None) == 1
    assert chunk_columns_for(seg, 0) == 1


def test_chunk_columns_capped_by_segment_length():
    seg = SizedPayload(np.zeros(3), sim_bytes=16 * MB)
    assert chunk_columns_for(seg, 1.0) == 3  # never more columns than elems


def test_chunk_columns_unsplittable_value_is_one_column():
    class Opaque:
        pass

    assert chunk_columns_for(Opaque(), 1.0) == 1


# --------------------------------------------------------- chunk slices
def test_payload_chunk_split_concat_roundtrip():
    value = SizedPayload(np.arange(10, dtype=float), sim_bytes=10 * MB)
    parts = [value.chunk_split(c, 3) for c in range(3)]
    assert sum(len(p.data) for p in parts) == 10
    back = parts[0].chunk_concat(parts)
    np.testing.assert_array_equal(back.data, value.data)
    assert back.sim_bytes == pytest.approx(value.sim_bytes)


def test_aggregator_segment_chunk_split_concat_roundtrip():
    buf = np.arange(12, dtype=float)
    seg = AggregatorSegment(buf, sim_bytes=96.0)
    parts = [seg.chunk_split(c, 4) for c in range(4)]
    assert sum(p.length for p in parts) == seg.length
    back = parts[0].chunk_concat(parts)
    np.testing.assert_array_equal(back.to_array(), buf)
    assert back.sim_bytes == pytest.approx(seg.sim_bytes)
    assert back.length == seg.length


# ---------------------------------------------------------- bit-identity
@pytest.mark.parametrize("n", RING_SIZES)
@pytest.mark.parametrize("parallelism", [1, 2, 4])
def test_bit_identical_to_ring(n, parallelism):
    baseline, expected, _ = run_gather("ring", n, parallelism)
    np.testing.assert_allclose(baseline.data, expected)
    # force several chunk columns: elems=64, split across ranks and chunks
    result, _, _ = run_gather("pipelined_ring", n, parallelism,
                              chunk_bytes=64.0)
    assert result.data.tobytes() == baseline.data.tobytes(), (
        f"pipelined_ring diverged from ring at n={n} P={parallelism}")


@pytest.mark.parametrize("num_chunks", [1, 2, 3, 7])
def test_bit_identical_at_forced_chunk_counts(num_chunks):
    baseline, _, _ = run_gather("ring", 5, 2)
    result, _, _ = run_gather("pipelined_ring", 5, 2,
                              num_chunks=num_chunks)
    assert result.data.tobytes() == baseline.data.tobytes()


def test_bit_identical_under_adversarial_values():
    """Catastrophic-cancellation values expose any re-association."""
    rng = np.random.default_rng(23)
    n, elems = 5, 48
    data = [rng.standard_normal(elems) * 10.0 ** rng.integers(
        -8, 8, size=elems) for _ in range(n)]

    def once(algorithm, **kw):
        env = Environment()
        cluster = Cluster(env, ClusterConfig.bic(num_nodes=3))
        comm = ScalableCommunicator(cluster, parallelism=2,
                                    slots=cluster.executors[:n])
        for key, val in kw.items():
            setattr(comm, key, val)
        vals = [SizedPayload(d.copy()) for d in data]
        proc = env.process(comm.reduce_scatter_gather(
            vals, split_op, reduce_op, concat_op, algorithm=algorithm))
        return env.run(until=proc)

    ring = once("ring")
    pipe = once("pipelined_ring", num_chunks=4)
    assert pipe.data.tobytes() == ring.data.tobytes()


# -------------------------------------------------------------- overlap
def test_chunking_never_slows_the_wire_dominated_ring():
    """With hops dominated by wire time, C columns overlap merge under
    the wire and the virtual clock must not exceed the classic ring by
    more than the per-chunk launch latency."""
    _, _, ring_t = run_gather("ring", 5, 2, elems=64)
    _, _, pipe_t = run_gather("pipelined_ring", 5, 2, elems=64,
                              num_chunks=4)
    assert pipe_t <= ring_t * 1.05


# ------------------------------------------------------------- streaming
def test_pipeline_ranks_wait_for_their_readiness_events():
    """Ranks stream as their events fire: the collective must not finish
    before the last readiness event, and must consume fetched values."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=3))
    n = 3
    comm = ScalableCommunicator(cluster, parallelism=1,
                                slots=cluster.executors[:n])
    values, expected = make_values(n, elems=32, seed=4)
    ready = [env.event(name=f"ready:{r}") for r in range(n)]
    release_times = [0.0, 0.3, 0.6]
    comm.pipeline = [(ready[r], lambda r=r: values[r]) for r in range(n)]

    def releaser(r):
        yield env.timeout(release_times[r])
        ready[r].succeed()

    for r in range(n):
        env.process(releaser(r), name=f"release:{r}")
    proc = env.process(comm.reduce_scatter_gather(
        [None] * n, split_op, reduce_op, concat_op,
        algorithm="pipelined_ring"))
    result = env.run(until=proc)
    np.testing.assert_allclose(result.data, expected)
    assert env.now >= max(release_times)


def test_streaming_result_matches_all_ready_result():
    """Readiness timing must not change the bytes: merge order is fixed
    by ring topology, not by arrival order."""
    baseline, _, _ = run_gather("pipelined_ring", 4, 2, seed=9,
                                num_chunks=3)

    def staggered(env, comm):
        pairs = []
        for r, slot in enumerate(comm.ranked):
            event = env.event(name=f"ready:{r}")
            delay = 0.1 * ((r * 7) % 4)

            def release(event=event, delay=delay):
                yield env.timeout(delay)
                event.succeed()

            env.process(release())
            values, _ = make_values(4, elems=64, seed=9)
            pairs.append((event, lambda r=r, values=values: values[r]))
        return pairs

    result, _, _ = run_gather("pipelined_ring", 4, 2, seed=9, num_chunks=3,
                              pipeline=staggered)
    assert result.data.tobytes() == baseline.data.tobytes()


# ------------------------------------------------------------ obs events
def test_chunk_stream_events_one_per_rank_channel():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: seen.append(e)
                  if isinstance(e, ChunkStream) else None)
    n, parallelism = 3, 2
    run_gather("pipelined_ring", n, parallelism, num_chunks=4, bus=bus)
    assert len(seen) == n * parallelism
    assert {e.num_chunks for e in seen} == {4}
    assert {e.rank for e in seen} == set(range(n))
    for e in seen:
        assert e.began <= e.time


def test_untraced_run_time_matches_traced_run_time():
    """Zero-perturbation: attaching a listener must not move the clock."""
    _, _, untraced = run_gather("pipelined_ring", 5, 2, num_chunks=4)
    bus = EventBus()
    bus.subscribe(lambda e: None)
    _, _, traced = run_gather("pipelined_ring", 5, 2, num_chunks=4,
                              bus=bus)
    assert traced == untraced


# ------------------------------------------------------- low-level kernel
def test_rank_kernel_single_rank_short_circuits():
    env = Environment()
    cluster = Cluster(env, ClusterConfig.bic(num_nodes=2))
    comm = ScalableCommunicator(cluster, parallelism=1,
                                slots=cluster.executors[:1])
    seg = SizedPayload(np.arange(8, dtype=float))
    proc = env.process(pipelined_ring_reduce_scatter_rank(
        comm.fabric, 0, 1, {0: seg}, reduce_op,
        cluster.config.merge_bandwidth, 4))
    owned, result = env.run(until=proc)
    assert owned == 0
    np.testing.assert_array_equal(result.data, seg.data)
