"""Shared fixtures and helpers for communication-layer tests."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.serde import SizedPayload
from repro.sim import Environment


@pytest.fixture
def bic2():
    """A 2-node BIC cluster (12 executors)."""
    env = Environment()
    return env, Cluster(env, ClusterConfig.bic(num_nodes=2))


@pytest.fixture
def bic4():
    """A 4-node BIC cluster (24 executors)."""
    env = Environment()
    return env, Cluster(env, ClusterConfig.bic(num_nodes=4))


def make_values(n, elems=64, seed=0, sim_bytes=None):
    """One random SizedPayload per rank, plus their exact elementwise sum."""
    rng = np.random.default_rng(seed)
    values = [
        SizedPayload(rng.integers(-100, 100, size=elems).astype(float),
                     sim_bytes=sim_bytes)
        for _ in range(n)
    ]
    expected = np.sum([v.data for v in values], axis=0)
    return values, expected


def split_op(value, i, n):
    return value.split(i, n)


def reduce_op(a, b):
    return a.merge(b)


def concat_op(segments):
    return SizedPayload.concat(segments)
