#!/usr/bin/env python
"""Benchmark regression gate: diff BENCH_*.json artifacts, fail on drift.

Two modes::

    python tools/bench_regress.py --check [BENCH_*.json ...]
        Validate the *invariants* of committed artifacts (bit-identity
        flags, zero-perturbation contract, tuner tolerance). With no
        files, checks every BENCH_*.json at the repo root.

    python tools/bench_regress.py --baseline BENCH_x.json --current new.json
        Compare a fresh run against the committed baseline and exit
        non-zero if any registered metric regressed by more than its
        tolerance (default 20% relative, plus an absolute slack for
        wall-clock-ratio metrics, which are noisy on shared CI runners).

The per-benchmark metric registry below chooses *what* is worth gating:
virtual-time (simulated) metrics are deterministic, so they get the bare
relative tolerance; wall-clock ratios additionally get an absolute slack
because they measure the host, not the model. Metrics marked
``same_config`` are skipped when the two artifacts were produced with
different benchmark configurations (e.g. a ``--smoke`` run against a
full-size baseline) — ratio-shaped metrics survive that comparison,
absolute seconds do not.

Exit codes: 0 = clean, 1 = regression or invariant failure, 2 = cannot
read/parse an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: default relative tolerance: a metric may be this fraction worse than
#: the baseline before it counts as a regression (the ">20%" CI rule)
DEFAULT_REL_TOL = 0.20

#: absolute slack for wall-clock overhead *ratios* — measured round-trip
#: variance of benchmarks/obs_overhead.py on a loaded 1-CPU runner is
#: ~±0.06 in the ratio itself, so the gate allows 0.15 on top of the
#: relative rule rather than flaking on machine noise
WALL_RATIO_SLACK = 0.15


@dataclass(frozen=True)
class Metric:
    """One gated quantity inside a benchmark artifact."""

    path: str                      # dotted path, "*" matches any key
    direction: str                 # "lower" or "higher" is better
    rel_tol: float = DEFAULT_REL_TOL
    abs_slack: float = 0.0         # extra allowance in the metric's units
    same_config: bool = True       # only compare identically-configured runs

    def worse_by(self, baseline: float, current: float) -> float:
        """How far ``current`` is beyond ``baseline`` in the bad direction."""
        return (current - baseline if self.direction == "lower"
                else baseline - current)

    def allowance(self, baseline: float) -> float:
        return self.rel_tol * abs(baseline) + self.abs_slack


@dataclass(frozen=True)
class BenchSpec:
    """Registry entry: what to check for one ``benchmark`` name."""

    invariants: Tuple[Tuple[str, Any], ...] = ()
    metrics: Tuple[Metric, ...] = ()
    #: extra single-report checks: fn(report) -> (name, ok, detail)
    derived: Tuple[Callable[[dict], Tuple[str, bool, str]], ...] = ()


def _buffering_beats_sync(report: dict) -> Tuple[str, bool, str]:
    over = report.get("overhead_vs_detached", {})
    log, sync = over.get("event_log"), over.get("event_log_sync")
    if log is None or sync is None:
        return ("event_log <= event_log_sync", True, "modes absent, skipped")
    return ("event_log <= event_log_sync", log <= sync,
            f"buffered {log:.3f} vs per-event {sync:.3f}")


REGISTRY: Dict[str, BenchSpec] = {
    "obs_overhead": BenchSpec(
        invariants=(("virtual_time_identical", True),),
        metrics=(
            Metric("overhead_vs_detached.recorder", "lower",
                   abs_slack=WALL_RATIO_SLACK, same_config=False),
            Metric("overhead_vs_detached.event_log", "lower",
                   abs_slack=WALL_RATIO_SLACK, same_config=False),
        ),
        derived=(_buffering_beats_sync,),
    ),
    "sparse_agg": BenchSpec(
        invariants=(
            ("configs.*.bit_identical_weights", True),
            ("acceptance.sparse_saves_bytes", True),
            ("acceptance.all_bit_identical", True),
        ),
        metrics=(
            Metric("configs.*.wire_reduction", "higher"),
            Metric("configs.*.adaptive.agg_time", "lower"),
        ),
    ),
    "fault_recovery": BenchSpec(
        invariants=(
            ("scenarios.*.result_bit_identical", True),
            ("all_bit_identical", True),
        ),
        metrics=(
            Metric("scenarios.*.recovery_overhead_ratio", "lower"),
            Metric("baseline_virtual_seconds", "lower"),
        ),
    ),
    "resilience": BenchSpec(
        invariants=(
            ("scenarios.*.result_bit_identical", True),
            ("all_bit_identical", True),
            ("speculation.zero_perturbation", True),
            ("speculation.exactly_once", True),
        ),
        metrics=(
            Metric("scenarios.*.pipelined_seconds", "lower"),
            Metric("clean.overlap_win_seconds", "higher"),
            Metric("speculation.makespan_cut_ratio", "higher"),
        ),
    ),
    "collective_matrix": BenchSpec(
        invariants=(("all_within_tolerance", True),),
        metrics=(
            Metric("cells.*.tuner_gap_vs_best", "lower", abs_slack=0.02),
            Metric("cells.*.empirical_best.seconds", "lower"),
        ),
    ),
    "overlap": BenchSpec(
        invariants=(
            ("all_gates_passed", True),
            ("cells.*.bit_identical", True),
            ("cells.*.auto_picked_pipelined", True),
        ),
        metrics=(
            Metric("cells.*.reduction", "higher"),
            Metric("cells.*.pipelined_seconds", "lower"),
        ),
    ),
    "host_perf": BenchSpec(
        metrics=(
            Metric("pools.*.events_per_sec", "higher",
                   abs_slack=0.0, same_config=False, rel_tol=0.25),
        ),
    ),
    "flow_alloc": BenchSpec(
        metrics=(
            Metric("levels.*.events_per_sec", "higher",
                   abs_slack=0.0, same_config=False, rel_tol=0.25),
        ),
    ),
    "service": BenchSpec(
        invariants=(
            ("identity.all_match", True),
            ("acceptance.throughput_ok", True),
            ("acceptance.fairness_ok", True),
            ("acceptance.scale_ok", True),
        ),
        metrics=(
            Metric("throughput.speedup_vs_fifo", "higher"),
            Metric("latency.p99", "lower"),
            Metric("latency.p50", "lower"),
            Metric("fairness.weighted_max_min_ratio", "lower",
                   abs_slack=0.2),
        ),
    ),
}


# --------------------------------------------------------------- plumbing
def expand(report: dict, path: str) -> Iterator[Tuple[str, Any]]:
    """Yield ``(concrete_path, value)`` for a dotted path; ``*`` fans out."""
    def walk(node: Any, parts: Sequence[str], prefix: List[str]):
        if not parts:
            yield ".".join(prefix), node
            return
        head, rest = parts[0], parts[1:]
        if not isinstance(node, dict):
            return
        keys = sorted(node) if head == "*" else (
            [head] if head in node else [])
        for key in keys:
            yield from walk(node[key], rest, prefix + [key])

    yield from walk(report, path.split("."), [])


def same_configuration(baseline: dict, current: dict) -> bool:
    """True when two artifacts ran the same benchmark configuration.

    ``smoke`` and ``repeats`` are presentation knobs, not workload shape,
    except that a smoke run *does* change shape whenever any other key
    differs — which the remaining keys capture.
    """
    def essence(report: dict) -> dict:
        config = dict(report.get("configuration", {}))
        config.pop("repeats", None)
        config.pop("smoke", None)
        return config

    return essence(baseline) == essence(current)


@dataclass
class Outcome:
    """Accumulated check results with printable lines."""

    lines: List[str] = field(default_factory=list)
    failures: int = 0
    checks: int = 0

    def record(self, ok: bool, line: str, skipped: bool = False) -> None:
        if skipped:
            self.lines.append(f"  [skip] {line}")
            return
        self.checks += 1
        if ok:
            self.lines.append(f"  [ ok ] {line}")
        else:
            self.failures += 1
            self.lines.append(f"  [FAIL] {line}")


def load_report(path: Path) -> dict:
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(report, dict) or "benchmark" not in report:
        raise SystemExit(f"error: {path} is not a benchmark artifact "
                         "(no 'benchmark' key)")
    return report


def check_invariants(report: dict, spec: BenchSpec, out: Outcome) -> None:
    for path, expected in spec.invariants:
        matches = list(expand(report, path))
        if not matches:
            out.record(False, f"{path}: missing from artifact")
            continue
        for concrete, value in matches:
            out.record(value == expected,
                       f"{concrete} == {expected!r} (got {value!r})")
    for fn in spec.derived:
        name, ok, detail = fn(report)
        out.record(ok, f"{name}: {detail}")


def compare_reports(baseline: dict, current: dict, spec: BenchSpec,
                    out: Outcome) -> None:
    config_matches = same_configuration(baseline, current)
    for metric in spec.metrics:
        if metric.same_config and not config_matches:
            out.record(True, f"{metric.path}: configurations differ",
                       skipped=True)
            continue
        base_values = dict(expand(baseline, metric.path))
        curr_values = dict(expand(current, metric.path))
        shared = sorted(set(base_values) & set(curr_values))
        if not shared:
            out.record(True, f"{metric.path}: no shared entries",
                       skipped=True)
            continue
        for concrete in shared:
            base, curr = base_values[concrete], curr_values[concrete]
            if not isinstance(base, (int, float)) or \
                    not isinstance(curr, (int, float)):
                out.record(False, f"{concrete}: non-numeric "
                                  f"({base!r} vs {curr!r})")
                continue
            worse = metric.worse_by(float(base), float(curr))
            allowed = metric.allowance(float(base))
            arrow = "->"
            detail = (f"{concrete} ({metric.direction} is better): "
                      f"{base:.6g} {arrow} {curr:.6g} "
                      f"(worse by {max(worse, 0.0):.6g}, "
                      f"allowed {allowed:.6g})")
            out.record(worse <= allowed, detail)


# -------------------------------------------------------------------- CLI
def run_check(paths: Sequence[Path]) -> int:
    status = 0
    for path in paths:
        report = load_report(path)
        name = report["benchmark"]
        spec = REGISTRY.get(name)
        out = Outcome()
        print(f"{path} ({name}):")
        if spec is None:
            print("  [skip] benchmark not in registry")
            continue
        check_invariants(report, spec, out)
        print("\n".join(out.lines) or "  [skip] nothing registered")
        if out.failures:
            status = 1
    return status


def run_compare(baseline_path: Path, current_path: Path) -> int:
    baseline = load_report(baseline_path)
    current = load_report(current_path)
    if baseline["benchmark"] != current["benchmark"]:
        raise SystemExit(
            f"error: artifacts disagree on benchmark name: "
            f"{baseline['benchmark']!r} vs {current['benchmark']!r}")
    spec = REGISTRY.get(baseline["benchmark"])
    if spec is None:
        print(f"{baseline['benchmark']}: not in registry, nothing to gate")
        return 0
    out = Outcome()
    print(f"{baseline['benchmark']}: {baseline_path} (baseline) "
          f"vs {current_path} (current)")
    check_invariants(current, spec, out)
    compare_reports(baseline, current, spec, out)
    print("\n".join(out.lines))
    verdict = ("PASS" if not out.failures
               else f"FAIL ({out.failures} of {out.checks} checks)")
    print(f"result: {verdict}")
    return 1 if out.failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*", type=Path,
                        help="artifacts for --check mode (default: "
                             "all BENCH_*.json at the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="validate artifact invariants only")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed artifact to diff against")
    parser.add_argument("--current", type=Path, default=None,
                        help="freshly produced artifact to gate")
    args = parser.parse_args(argv)

    if args.check:
        if args.baseline or args.current:
            parser.error("--check takes artifact files, not "
                         "--baseline/--current")
        paths = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not paths:
            parser.error("no BENCH_*.json artifacts found")
        return run_check(paths)
    if args.baseline is None or args.current is None:
        parser.error("need --check, or both --baseline and --current")
    if args.files:
        parser.error("positional files only apply to --check mode")
    return run_compare(args.baseline, args.current)


if __name__ == "__main__":
    sys.exit(main())
