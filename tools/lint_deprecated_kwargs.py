#!/usr/bin/env python3
"""AST lint: no deprecated aggregation kwargs inside ``src/``.

The AggregationSpec redesign keeps the old per-call keywords working at
the *public* entry points (one ``DeprecationWarning`` each, see
``repro.core.spec.spec_with_legacy``), but the engine itself must be
fully migrated: internal code passes a spec, never the legacy kwargs.
This lint walks every call in the tree and flags keyword arguments from
the deprecated set, unless the callee is one of the places those names
legitimately live on (the spec type itself, the shim helpers, the
resolution functions, or a constructor that owns the field).

Since the ``SparkerSession`` redesign it also flags **direct
``SparkerContext(...)`` construction** under ``src/``: workload-running
code must go through a session (``SparkerSession.run`` / ``.submit`` /
``.context()``), so context construction is confined to the session
layer and the context module itself (``CONTEXT_ALLOWED_FILES``).

Usage::

    python tools/lint_deprecated_kwargs.py [paths...]   # default: src

Exits non-zero when any violation is found. Also invoked by
``tests/core/test_no_deprecated_kwargs.py`` so the gate runs with the
tier-1 suite, and by the ``collectives-smoke`` CI job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: legacy split_aggregate/trainer keywords that internal code must not pass
DEPRECATED_KWARGS = frozenset({
    "sparse_aggregation", "sparse_policy", "batched", "host_pool",
})

#: callees on which these names are fields/parameters, not legacy shims
ALLOWED_CALLEES = frozenset({
    "AggregationSpec",      # the spec constructor owns the fields
    "replace",              # AggregationSpec.replace / dataclasses.replace
    "spec_with_legacy",     # the shim helper receives them by design
    "warn_deprecated_kwarg",
    "resolve_sparse_policy",
    "resolve_host_pool",
    "HostPool",
    "SparkerContext",       # host_pool is a context-level resource knob
    "dict",                 # plain record building (reports, JSON)
})

#: the only ``src/`` files allowed to construct a SparkerContext directly
#: (matched by suffix so the lint works from any checkout root)
CONTEXT_ALLOWED_FILES = (
    "repro/rdd/context.py",       # the class itself (docstrings, helpers)
    "repro/service/session.py",   # SparkerSession.run / .context()
    "repro/service/server.py",    # the shared service context
)


def _callee_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return "<dynamic>"


def lint_file(path: Path) -> List[Tuple[int, str, str]]:
    """All violations in one file as ``(line, callee, kwarg)``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    out: List[Tuple[int, str, str]] = []
    posix = path.as_posix()
    context_allowed = posix.endswith(CONTEXT_ALLOWED_FILES)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node)
        if callee == "SparkerContext" and not context_allowed:
            out.append((node.lineno, callee, "<direct construction>"))
        if callee in ALLOWED_CALLEES:
            continue
        for keyword in node.keywords:
            if keyword.arg in DEPRECATED_KWARGS:
                out.append((node.lineno, callee, keyword.arg))
    return out


def lint_paths(paths: Iterable[Path]) -> List[str]:
    """Human-readable violation lines for every ``.py`` under ``paths``."""
    messages: List[str] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            for line, callee, kwarg in lint_file(path):
                if kwarg == "<direct construction>":
                    messages.append(
                        f"{path}:{line}: direct SparkerContext() "
                        f"construction — go through SparkerSession "
                        f"(.run/.submit/.context())")
                else:
                    messages.append(
                        f"{path}:{line}: deprecated kwarg {kwarg!r} passed "
                        f"to {callee}() — pass "
                        f"spec=AggregationSpec({kwarg}=...) instead")
    return messages


def main(argv: List[str]) -> int:
    repo = Path(__file__).resolve().parent.parent
    paths = ([Path(p) for p in argv] if argv else [repo / "src"])
    messages = lint_paths(paths)
    for message in messages:
        print(message)
    if messages:
        print(f"{len(messages)} deprecated-kwarg use(s) found",
              file=sys.stderr)
        return 1
    print("no deprecated aggregation kwargs found")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
