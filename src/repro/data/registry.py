"""Dataset registry: Table 2's six real-world datasets and their surrogates.

Each :class:`DatasetSpec` records the **paper-scale** shape (sample count,
feature/vocabulary dimension — these drive aggregator sizes and compute
scaling) and a **surrogate** shape that is generated synthetically at
laptop scale. Two scale factors bridge them (DESIGN.md §2):

* ``compute_scale`` — how many paper-scale samples one surrogate sample
  stands for (scales per-sample virtual compute cost),
* ``size_scale`` — paper aggregator bytes / surrogate aggregator bytes
  (scales broadcast/aggregator communication costs).

The kdd-family's huge feature counts and nytimes' large vocabulary are
exactly what makes their aggregators big, which is why LR-K, SVM-K,
SVM-K12 and LDA-N benefit most from split aggregation (paper §5.3.1) —
the registry preserves those ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .synthetic import lda_corpus, sparse_classification

__all__ = ["DatasetSpec", "DATASETS", "dataset", "PAPER_LDA_TOPICS",
           "SURROGATE_LDA_TOPICS"]

#: Table 3: LDA runs with K=100 topics at paper scale.
PAPER_LDA_TOPICS = 100
#: Surrogate topic count (scales the K x V aggregator down with the vocab).
SURROGATE_LDA_TOPICS = 10


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 2 dataset and its laptop-scale surrogate."""

    name: str
    task: str  # "classification" | "topic-model"
    source: str
    # ---- paper scale -------------------------------------------------------
    paper_samples: int
    paper_features: int  # feature dim, or vocabulary size for topic models
    paper_nnz: int  # average non-zeros (unique words) per sample
    # ---- surrogate scale ---------------------------------------------------
    surrogate_samples: int
    surrogate_features: int
    surrogate_nnz: int
    seed: int = 0

    # ------------------------------------------------------------------ scales
    @property
    def compute_scale(self) -> float:
        """Paper-scale per-core compute represented by one surrogate sample."""
        sample_ratio = self.paper_samples / self.surrogate_samples
        nnz_ratio = self.paper_nnz / self.surrogate_nnz
        if self.task == "topic-model":
            topic_ratio = PAPER_LDA_TOPICS / SURROGATE_LDA_TOPICS
            return sample_ratio * nnz_ratio * topic_ratio
        return sample_ratio * nnz_ratio

    @property
    def size_scale(self) -> float:
        """Paper aggregator bytes per surrogate aggregator byte."""
        if self.task == "topic-model":
            return ((PAPER_LDA_TOPICS * self.paper_features)
                    / (SURROGATE_LDA_TOPICS * self.surrogate_features))
        return self.paper_features / self.surrogate_features

    @property
    def paper_aggregator_bytes(self) -> float:
        """Size of one aggregator at paper scale."""
        if self.task == "topic-model":
            return PAPER_LDA_TOPICS * self.paper_features * 8.0
        return self.paper_features * 8.0

    # ---------------------------------------------------------------- generate
    def generate(self) -> Tuple[list, np.ndarray]:
        """Materialize the surrogate: ``(samples, ground_truth)``.

        Classification: ``(List[LabeledPoint], true_weights)``.
        Topic model: ``(List[SparseVector], true_topics)``.

        Generation is fully seeded, so repeated calls for the same spec
        produce byte-identical data; the result is memoized per process
        (specs are frozen/hashable) and benchmark sweeps that train the
        same workload at several cluster sizes pay for generation once.
        Callers get a fresh list (the samples themselves are shared and
        treated as immutable — the ground-truth array is marked read-only
        to catch accidental writes).
        """
        memo = _GENERATE_MEMO.get(self)
        if memo is None:
            if self.task == "classification":
                memo = sparse_classification(
                    self.surrogate_samples, self.surrogate_features,
                    self.surrogate_nnz, seed=self.seed)
            elif self.task == "topic-model":
                # doc_length is chosen so the *unique* word count per doc
                # lands near surrogate_nnz (the value compute_scale
                # normalizes by).
                memo = lda_corpus(
                    self.surrogate_samples, self.surrogate_features,
                    SURROGATE_LDA_TOPICS,
                    doc_length=max(1, int(self.surrogate_nnz * 1.15)),
                    seed=self.seed)
            else:
                raise ValueError(f"unknown task {self.task!r}")
            memo[1].setflags(write=False)
            _GENERATE_MEMO[self] = memo
        samples, truth = memo
        return list(samples), truth
        raise ValueError(f"unknown task {self.task!r}")

    def __str__(self) -> str:
        return (f"{self.name}: {self.paper_samples:,} samples x "
                f"{self.paper_features:,} features ({self.task}, "
                f"{self.source})")


#: Table 2, with surrogate shapes preserving the paper's ratios.
#: per-process memo of generated surrogates, keyed by the (frozen) spec
_GENERATE_MEMO: Dict[DatasetSpec, Tuple[list, np.ndarray]] = {}

DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec(
            name="avazu", task="classification", source="libsvm",
            paper_samples=45_006_431, paper_features=1_000_000,
            paper_nnz=15,
            surrogate_samples=3_000, surrogate_features=4_000,
            surrogate_nnz=15, seed=101),
        DatasetSpec(
            name="criteo", task="classification", source="libsvm",
            paper_samples=51_882_752, paper_features=1_000_000,
            paper_nnz=39,
            surrogate_samples=3_000, surrogate_features=4_000,
            surrogate_nnz=20, seed=102),
        DatasetSpec(
            name="kdd10", task="classification", source="libsvm",
            paper_samples=8_918_054, paper_features=20_216_830,
            paper_nnz=30,
            surrogate_samples=2_000, surrogate_features=12_000,
            surrogate_nnz=20, seed=103),
        DatasetSpec(
            name="kdd12", task="classification", source="libsvm",
            paper_samples=149_639_105, paper_features=54_686_452,
            paper_nnz=11,
            surrogate_samples=4_000, surrogate_features=16_000,
            surrogate_nnz=11, seed=104),
        DatasetSpec(
            name="enron", task="topic-model", source="uci",
            paper_samples=39_861, paper_features=28_102,
            paper_nnz=90,
            surrogate_samples=800, surrogate_features=500,
            surrogate_nnz=40, seed=105),
        DatasetSpec(
            name="nytimes", task="topic-model", source="uci",
            paper_samples=300_000, paper_features=102_660,
            paper_nnz=230,
            surrogate_samples=1_500, surrogate_features=1_200,
            surrogate_nnz=60, seed=106),
    ]
}


def dataset(name: str) -> DatasetSpec:
    """Look up a Table 2 dataset by name."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
