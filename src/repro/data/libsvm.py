"""libsvm-format readers and writers.

Table 2's classification datasets ship in libsvm format
(``label idx:val idx:val ...``, indices 1-based). The reader lets anyone
with the real avazu/criteo/kdd files run the workloads unscaled; the writer
round-trips the synthetic surrogates for external tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Tuple, Union

from ..ml.linalg import LabeledPoint, SparseVector

__all__ = ["load_libsvm", "dump_libsvm", "parse_libsvm_line",
           "format_libsvm_line"]


def parse_libsvm_line(line: str, num_features: Optional[int] = None
                      ) -> Optional[Tuple[float, List[int], List[float]]]:
    """Parse one line into ``(label, indices_0based, values)``.

    Returns ``None`` for blank/comment lines. Raises ``ValueError`` for
    malformed records (bad pairs, non-increasing indices, out of range).
    """
    body = line.split("#", 1)[0].strip()
    if not body:
        return None
    fields = body.split()
    try:
        label = float(fields[0])
    except ValueError:
        raise ValueError(f"bad label in libsvm line: {fields[0]!r}") from None
    indices: List[int] = []
    values: List[float] = []
    last = 0
    for pair in fields[1:]:
        try:
            raw_idx, raw_val = pair.split(":", 1)
            idx = int(raw_idx)
            val = float(raw_val)
        except ValueError:
            raise ValueError(f"bad feature pair {pair!r}") from None
        if idx < 1:
            raise ValueError(f"libsvm indices are 1-based, got {idx}")
        if idx <= last:
            raise ValueError(
                f"indices must be strictly increasing: {idx} after {last}")
        if num_features is not None and idx > num_features:
            raise ValueError(
                f"index {idx} exceeds declared dimension {num_features}")
        last = idx
        indices.append(idx - 1)
        values.append(val)
    return label, indices, values


def format_libsvm_line(point: LabeledPoint) -> str:
    """Render one labeled point as a libsvm record."""
    pairs = " ".join(f"{int(i) + 1}:{v:.6g}"
                     for i, v in zip(point.features.indices,
                                     point.features.values))
    label = point.label
    head = f"{int(label)}" if float(label).is_integer() else f"{label:g}"
    return f"{head} {pairs}".rstrip()


def load_libsvm(source: Union[str, Path, TextIO],
                num_features: Optional[int] = None) -> List[LabeledPoint]:
    """Load a libsvm file (path or open text handle).

    ``num_features`` fixes the dimensionality; when omitted it is inferred
    as the largest index seen.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_libsvm(handle, num_features)
    rows = []
    max_idx = 0
    for line in source:
        parsed = parse_libsvm_line(line, num_features)
        if parsed is None:
            continue
        label, indices, values = parsed
        if indices:
            max_idx = max(max_idx, indices[-1] + 1)
        rows.append((label, indices, values))
    dim = num_features if num_features is not None else max_idx
    return [
        LabeledPoint(label, SparseVector(dim, indices, values))
        for label, indices, values in rows
    ]


def dump_libsvm(points: Iterable[LabeledPoint],
                target: Union[str, Path, TextIO]) -> int:
    """Write points in libsvm format; returns the record count."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            return dump_libsvm(points, handle)
    count = 0
    for point in points:
        target.write(format_libsvm_line(point))
        target.write("\n")
        count += 1
    return count
