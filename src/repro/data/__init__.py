"""Datasets: Table 2 surrogates, synthetic generators, libsvm IO."""

from .libsvm import (
    dump_libsvm,
    format_libsvm_line,
    load_libsvm,
    parse_libsvm_line,
)
from .registry import (
    DATASETS,
    PAPER_LDA_TOPICS,
    SURROGATE_LDA_TOPICS,
    DatasetSpec,
    dataset,
)
from .synthetic import (
    concentrated_classification,
    lda_corpus,
    sparse_classification,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset",
    "PAPER_LDA_TOPICS",
    "SURROGATE_LDA_TOPICS",
    "sparse_classification",
    "concentrated_classification",
    "lda_corpus",
    "load_libsvm",
    "dump_libsvm",
    "parse_libsvm_line",
    "format_libsvm_line",
]
