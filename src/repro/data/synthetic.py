"""Synthetic data generators: sparse classification sets and text corpora.

Surrogates for the paper's real-world datasets (Table 2). Classification
data comes from a sparse linear ground truth with label noise (so LR/SVM
have something real to learn and accuracy is checkable); topic-model data
comes from an actual LDA generative process (so EM recovers planted
topics). Everything is seeded and deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..ml.linalg import LabeledPoint, SparseVector

__all__ = ["sparse_classification", "concentrated_classification",
           "lda_corpus"]


#: lognormal sigma for per-sample size variation — real libsvm datasets and
#: text corpora are heavy-tailed, and this skew is what makes per-partition
#: compute *not* scale perfectly with cores (straggler tasks), as in the
#: paper's Figure 3
SIZE_SKEW_SIGMA = 1.0


def _skewed_sizes(rng: np.random.Generator, n: int, mean: float,
                  upper: int) -> np.ndarray:
    """Heavy-tailed positive integer sizes with the requested mean."""
    mu = np.log(mean) - SIZE_SKEW_SIGMA ** 2 / 2.0
    sizes = rng.lognormal(mu, SIZE_SKEW_SIGMA, size=n)
    return np.clip(np.rint(sizes), 1, upper).astype(int)


def sparse_classification(n_samples: int, n_features: int,
                          nnz_per_sample: int, seed: int = 0,
                          noise: float = 0.05
                          ) -> Tuple[List[LabeledPoint], np.ndarray]:
    """Sparse binary classification data from a linear ground truth.

    Returns ``(points, true_weights)``. Labels are in {0, 1}:
    ``y = 1[x . w* + eps > 0]`` with Gaussian label noise ``eps``.
    Per-sample non-zero counts are heavy-tailed around ``nnz_per_sample``
    (like real libsvm datasets), which is what produces straggler tasks.
    """
    if n_samples < 1 or n_features < 1:
        raise ValueError("need n_samples >= 1 and n_features >= 1")
    if not 1 <= nnz_per_sample <= n_features:
        raise ValueError(
            f"nnz_per_sample must be in [1, {n_features}]: {nnz_per_sample}")
    rng = np.random.default_rng(seed)
    true_w = rng.standard_normal(n_features)
    sizes = _skewed_sizes(rng, n_samples, nnz_per_sample, n_features)
    points: List[LabeledPoint] = []
    for nnz in sizes:
        idx = np.sort(rng.choice(n_features, size=int(nnz), replace=False))
        vals = rng.standard_normal(int(nnz))
        margin = float(true_w[idx] @ vals) + noise * rng.standard_normal()
        label = 1.0 if margin > 0 else 0.0
        points.append(LabeledPoint(label, SparseVector(n_features, idx,
                                                       vals)))
    return points, true_w


def concentrated_classification(n_samples: int, n_features: int,
                                nnz_per_sample: int, support_size: int,
                                seed: int = 0, noise: float = 0.05
                                ) -> Tuple[List[LabeledPoint], np.ndarray]:
    """Classification data whose features live on a small fixed support.

    Real ad-click / web-scale datasets hash a huge feature space of which
    any given shard touches a tiny, heavily reused subset — the regime
    where the *summed* gradient stays sparse (density ≈ ``support_size /
    n_features``) and the density-adaptive aggregation path pays off.
    Returns ``(points, true_weights)`` like :func:`sparse_classification`.
    """
    if not 1 <= support_size <= n_features:
        raise ValueError(
            f"support_size must be in [1, {n_features}]: {support_size}")
    if not 1 <= nnz_per_sample <= support_size:
        raise ValueError(
            f"nnz_per_sample must be in [1, {support_size}]: "
            f"{nnz_per_sample}")
    rng = np.random.default_rng(seed)
    support = np.sort(rng.choice(n_features, size=support_size,
                                 replace=False))
    true_w = np.zeros(n_features)
    true_w[support] = rng.standard_normal(support_size)
    sizes = _skewed_sizes(rng, n_samples, nnz_per_sample, support_size)
    points: List[LabeledPoint] = []
    for nnz in sizes:
        idx = np.sort(rng.choice(support, size=int(nnz), replace=False))
        vals = rng.standard_normal(int(nnz))
        margin = float(true_w[idx] @ vals) + noise * rng.standard_normal()
        label = 1.0 if margin > 0 else 0.0
        points.append(LabeledPoint(label, SparseVector(n_features, idx,
                                                       vals)))
    return points, true_w


def lda_corpus(n_docs: int, vocab_size: int, n_topics: int,
               doc_length: int, seed: int = 0,
               concentration: float = 0.1
               ) -> Tuple[List[SparseVector], np.ndarray]:
    """A corpus drawn from the LDA generative process.

    Returns ``(docs, true_topics)`` where each doc is a word-count
    :class:`SparseVector` and ``true_topics`` is the planted row-stochastic
    ``K x V`` matrix. Topics are made distinguishable by giving each a
    dedicated slice of the vocabulary with boosted mass.
    """
    if n_docs < 1 or vocab_size < n_topics or n_topics < 2:
        raise ValueError(
            f"need n_docs >= 1, vocab >= topics >= 2: "
            f"docs={n_docs} vocab={vocab_size} topics={n_topics}")
    if doc_length < 1:
        raise ValueError(f"doc_length must be >= 1: {doc_length}")
    rng = np.random.default_rng(seed)
    topics = rng.random((n_topics, vocab_size)) * 0.1
    block = vocab_size // n_topics
    for k in range(n_topics):
        lo = k * block
        hi = vocab_size if k == n_topics - 1 else lo + block
        topics[k, lo:hi] += 1.0  # anchor words make topics identifiable
    topics /= topics.sum(axis=1, keepdims=True)

    lengths = _skewed_sizes(rng, n_docs, doc_length, 50 * doc_length)
    docs: List[SparseVector] = []
    for length in lengths:
        theta = rng.dirichlet(np.full(n_topics, concentration))
        word_dist = theta @ topics
        counts = rng.multinomial(int(length), word_dist)
        idx = np.flatnonzero(counts)
        docs.append(SparseVector(vocab_size, idx,
                                 counts[idx].astype(np.float64)))
    return docs, topics
