"""Structured observability for the simulated engine (``repro.obs``).

The paper's own methodology (§2.3) is observability: the authors located
MLlib's bottleneck by mining Spark history logs. This package generalizes
that from stage granularity down to tasks, messages and ring hops:

* :mod:`repro.obs.events` — the typed event vocabulary (``JobStart``,
  ``TaskEnd`` with :class:`~repro.obs.events.TaskMetrics`, ``RingHop``,
  ``ImmMerge``, ...), each serializable to one JSON object,
* :mod:`repro.obs.bus` — the :class:`EventBus` (Spark's ``ListenerBus``
  analogue) owned by every :class:`~repro.rdd.context.SparkerContext`;
  with no listeners attached every emission is a constant-time no-op and
  the simulation is bit-for-bit identical to an uninstrumented run,
* :mod:`repro.obs.log` — JSON-lines event-log export/import with a
  versioned schema (a superset of ``bench.history``'s stage log),
* :mod:`repro.obs.chrome_trace` — a Chrome ``trace_event`` / Perfetto
  exporter laying out executors×cores, the driver, and NIC lanes on the
  virtual-time axis,
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry, a
  bus-fed :class:`MetricsListener`, and a :class:`NicMonitor` process
  sampling NIC utilization,
* :mod:`repro.obs.analysis` — the Figure-2-style decomposition, straggler
  detection and driver-NIC saturation windows, recomputed from an event
  log (``python -m repro.obs events.jsonl``),
* :mod:`repro.obs.tracing` — the causal-span allocator
  (:class:`Tracer`, owned by every bus) stamping
  ``span_id``/``parent_span_id`` on traced events,
* :mod:`repro.obs.critical_path` — span-DAG reconstruction and exact
  per-job makespan attribution (compute / serde / wire / queueing /
  recovery), slowest-hop and straggler blame,
* :mod:`repro.obs.timeseries` — labeled windowed counters / gauges /
  histograms over virtual time with exact p50/p95/p99 queries.

Capture a trace::

    from repro.obs import EventLogWriter

    sc = SparkerSession(ClusterConfig.bic()).context()
    with EventLogWriter("events.jsonl").attached_to(sc.event_bus):
        ...  # run the workload

then ``python -m repro.obs events.jsonl`` for the decomposition, or
``python -m repro.obs events.jsonl --chrome trace.json`` for Perfetto.
"""

from .analysis import (
    FaultReport,
    SparseSavings,
    TraceAnalysis,
    TunerReport,
    analyze_events,
    classify_stage,
    phase_decomposition,
)
from .bus import EventBus, RecordingListener
from .chrome_trace import chrome_trace, write_chrome_trace
from .critical_path import (
    CollectiveAttribution,
    CriticalPathReport,
    CriticalTask,
    JobAttribution,
    RecoveryEpoch,
    SEGMENT_LABELS,
    Segment,
    attribute_critical_path,
)
from .events import (
    BlockEvent,
    ChunkStream,
    CollectiveChosen,
    CollectiveCompleted,
    CollectiveCostEstimate,
    CollectiveDowngraded,
    EVENT_TYPES,
    ExecutorHealth,
    FaultInjected,
    ImmMerge,
    JobEnd,
    JobStart,
    MessageDelivered,
    MessageSent,
    NicSample,
    PhaseSpan,
    PoolSample,
    RecoveryAction,
    ResidualLost,
    ResidualNorm,
    RingHop,
    SegmentRepresentation,
    ServiceJobFinished,
    ServiceJobSubmitted,
    SpeculativeAttempt,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
    TaskMetrics,
    TaskStart,
    TraceEvent,
    channel_str,
    event_from_record,
)
from .log import SCHEMA_NAME, SCHEMA_VERSION, EventLogWriter, dump_events, load_events
from .metrics import (
    Gauge,
    Histogram,
    MetricCounter,
    MetricsListener,
    MetricsRegistry,
    NicMonitor,
)
from .timeseries import (
    TimeSeriesListener,
    TimeSeriesStore,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)
from .tracing import NO_SPAN, Tracer

__all__ = [
    "EventBus",
    "RecordingListener",
    "TraceEvent",
    "EVENT_TYPES",
    "event_from_record",
    "channel_str",
    "JobStart",
    "JobEnd",
    "StageSubmitted",
    "StageCompleted",
    "TaskStart",
    "TaskEnd",
    "TaskMetrics",
    "BlockEvent",
    "MessageSent",
    "MessageDelivered",
    "RingHop",
    "ChunkStream",
    "ResidualNorm",
    "ImmMerge",
    "SegmentRepresentation",
    "PhaseSpan",
    "NicSample",
    "FaultInjected",
    "RecoveryAction",
    "CollectiveDowngraded",
    "ResidualLost",
    "SpeculativeAttempt",
    "ExecutorHealth",
    "CollectiveCostEstimate",
    "CollectiveChosen",
    "CollectiveCompleted",
    "ServiceJobSubmitted",
    "ServiceJobFinished",
    "PoolSample",
    "EventLogWriter",
    "dump_events",
    "load_events",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "chrome_trace",
    "write_chrome_trace",
    "MetricsRegistry",
    "MetricCounter",
    "Gauge",
    "Histogram",
    "MetricsListener",
    "NicMonitor",
    "FaultReport",
    "SparseSavings",
    "TraceAnalysis",
    "TunerReport",
    "analyze_events",
    "phase_decomposition",
    "classify_stage",
    "Tracer",
    "NO_SPAN",
    "SEGMENT_LABELS",
    "Segment",
    "CriticalTask",
    "JobAttribution",
    "CollectiveAttribution",
    "RecoveryEpoch",
    "CriticalPathReport",
    "attribute_critical_path",
    "TimeSeriesStore",
    "TimeSeriesListener",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
]
