"""Metrics registry: counters, gauges, histograms, and the NIC monitor.

Complements the event log with aggregate instruments, Spark's
``metrics.properties`` sinks in miniature:

* :class:`MetricsRegistry` — a flat namespace of named instruments,
* :class:`MetricsListener` — a bus listener feeding the registry from
  trace events (message-size and task-skew histograms, byte counters),
* :class:`NicMonitor` — a simulated monitor process sampling every node's
  NIC utilization from the flow network at a fixed virtual-time cadence,
  emitting :class:`~repro.obs.events.NicSample` events and gauges.

All instruments are bookkeeping only; sampling reads flow state without
touching it, so attaching metrics never changes simulated timings.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Dict, List, Optional

from .bus import EventBus
from .events import NicSample, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.placement import Cluster

__all__ = ["MetricCounter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsListener", "NicMonitor"]


class MetricCounter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"<MetricCounter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "updated_at")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updated_at: Optional[float] = None

    def set(self, value: float, at: Optional[float] = None) -> None:
        self.value = value
        self.updated_at = at

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """A streaming distribution with exact quantiles.

    Samples are kept sorted (insertion via ``bisect``), which is fine at
    this engine's event volumes and keeps quantiles exact rather than
    approximate — determinism matters more than memory here.
    """

    __slots__ = ("name", "_sorted", "count", "total")

    def __init__(self, name: str):
        self.name = name
        self._sorted: List[float] = []
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile; 0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sorted:
            return 0.0
        rank = min(int(q * len(self._sorted)), len(self._sorted) - 1)
        return self._sorted[rank]

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:.4g} p50={self.quantile(0.5):.4g} "
                f"max={self.max:.4g}>")


class MetricsRegistry:
    """A flat namespace of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, MetricCounter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> MetricCounter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = MetricCounter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    @property
    def counters(self) -> Dict[str, MetricCounter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def summary(self) -> str:
        """A plain-text dump of every instrument, sorted by name."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"counter   {name} = {self._counters[name].value:g}")
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            stamp = ("" if gauge.updated_at is None
                     else f" @ {gauge.updated_at:.6g}s")
            lines.append(f"gauge     {name} = {gauge.value:g}{stamp}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"histogram {name}: n={h.count} mean={h.mean:.6g} "
                f"p50={h.quantile(0.5):.6g} p95={h.quantile(0.95):.6g} "
                f"max={h.max:.6g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")


class MetricsListener:
    """Feeds a :class:`MetricsRegistry` from bus events.

    Maintains the distributions the paper's diagnosis leans on: message
    sizes (Figure 13's regime), task durations per stage kind (skew /
    stragglers), shuffle and result byte counters, and per-node NIC
    utilization gauges refreshed by :class:`NicMonitor` samples.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def on_event(self, event: TraceEvent) -> None:
        reg = self.registry
        reg.counter("events.total").inc()
        kind = event.kind
        if kind == "task_end":
            reg.counter(f"tasks.{event.status}").inc()
            reg.histogram("tasks.duration_seconds").observe(event.duration)
            reg.histogram(
                f"tasks.duration_seconds.stage{event.stage_id}").observe(
                    event.duration)
            reg.counter("tasks.result_bytes").inc(
                event.metrics.result_bytes)
        elif kind == "message_sent":
            reg.counter("messages.sent").inc()
            reg.counter("messages.bytes").inc(event.nbytes)
            reg.histogram("messages.size_bytes").observe(event.nbytes)
        elif kind == "message_delivered":
            reg.counter("messages.delivered").inc()
            reg.histogram("messages.queue_wait_seconds").observe(
                event.queue_wait)
        elif kind == "ring_hop":
            reg.counter("ring.hops").inc()
            reg.counter("ring.bytes").inc(event.send_bytes)
        elif kind == "imm_merge":
            reg.counter("imm.merges").inc()
            reg.histogram("imm.lock_wait_seconds").observe(event.lock_wait)
        elif kind == "block":
            reg.counter(f"blocks.{event.op}").inc()
            reg.counter(f"blocks.{event.op}_bytes").inc(event.nbytes)
        elif kind == "nic_sample":
            prefix = "driver" if event.is_driver else event.hostname
            reg.gauge(f"nic.{prefix}.in_utilization").set(
                event.in_utilization, at=event.time)
            reg.gauge(f"nic.{prefix}.out_utilization").set(
                event.out_utilization, at=event.time)
        elif kind == "stage_completed":
            reg.counter("stages.completed").inc()
        elif kind == "job_end":
            reg.counter("jobs.completed" if event.succeeded
                        else "jobs.failed").inc()


class NicMonitor:
    """A simulated monitor process sampling NIC utilization.

    Every ``interval`` virtual seconds it reads each node's aggregate NIC
    ingress/egress rate from the flow network and emits one
    :class:`NicSample` per node (driver included). Sampling is read-only
    — it observes flow allocations without perturbing them — so a run
    with a monitor attached reaches identical virtual times.

    The monitor process lives until ``stop()``; pending sample timeouts
    after the workload finishes are harmless (the context only ever runs
    the simulation up to its own job processes).
    """

    def __init__(self, cluster: "Cluster", bus: EventBus,
                 interval: float = 0.05):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.cluster = cluster
        self.bus = bus
        self.interval = interval
        self.samples = 0
        self._stopped = False
        self._proc = cluster.env.process(self._body(), name="nic-monitor")

    def _nodes(self):
        nodes = list(self.cluster.nodes)
        driver = self.cluster.driver_node
        if all(node is not driver for node in nodes):
            nodes.append(driver)
        return nodes

    def _body(self):
        env = self.cluster.env
        flows = self.cluster.network.flows
        driver = self.cluster.driver_node
        while not self._stopped:
            if self.bus.active:
                for node in self._nodes():
                    in_rate = flows.link_rate(node.nic_in)
                    out_rate = flows.link_rate(node.nic_out)
                    self.bus.emit(NicSample.fast(
                        time=env.now, node_id=node.node_id,
                        hostname=node.hostname,
                        is_driver=node is driver,
                        in_rate=in_rate, out_rate=out_rate,
                        in_utilization=in_rate / node.nic_in.capacity,
                        out_utilization=out_rate / node.nic_out.capacity,
                        span_id=self.bus.tracer.new_span()))
                    self.samples += 1
            yield env.timeout(self.interval)

    def stop(self) -> None:
        """Stop sampling after the current interval elapses."""
        self._stopped = True

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else "running"
        return f"<NicMonitor {state} samples={self.samples}>"
