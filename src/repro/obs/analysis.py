"""Event-log analysis: decompositions, stragglers, NIC saturation.

Recomputes the paper's §2.3 methodology from a recorded event stream
instead of live instrumentation:

* :func:`phase_decomposition` — sums :class:`~repro.obs.events.PhaseSpan`
  records back into the stopwatch totals (``agg.compute``,
  ``agg.reduce``, ``ml.driver``, ...); by construction this matches the
  in-process :class:`~repro.sim.Stopwatch` exactly,
* :func:`classify_stage` — the canonical stage classification (shared
  with :mod:`repro.bench.history`, which mined the same decomposition
  from stage logs before events existed),
* :func:`analyze_events` — the full :class:`TraceAnalysis`: phase and
  stage decompositions, straggler detection (tasks slower than a factor
  of their stage's median) and driver-NIC saturation windows.

``python -m repro.obs events.jsonl`` renders all of this as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import (
    CollectiveChosen,
    CollectiveCompleted,
    CollectiveCostEstimate,
    CollectiveDowngraded,
    FaultInjected,
    NicSample,
    RecoveryAction,
    ResidualLost,
    SpeculativeAttempt,
    TaskEnd,
    TraceEvent,
)

__all__ = [
    "AGG_COMPUTE_MARKERS",
    "AGG_REDUCE_MARKERS",
    "classify_stage",
    "phase_decomposition",
    "Straggler",
    "SaturationWindow",
    "SparseSavings",
    "FaultReport",
    "TunerReport",
    "TraceAnalysis",
    "analyze_events",
]

#: RDD names that mark the *first* stage of an aggregation (the seqOp
#: pass; tree level 0's map side contains the partial aggregation)
AGG_COMPUTE_MARKERS: Tuple[str, ...] = ("partialAggregate", "treeAgg:level0")
#: RDD names that mark reduction stages of an aggregation
AGG_REDUCE_MARKERS: Tuple[str, ...] = ("treeAgg:", "treeAggValues",
                                       "SpawnRDD")


def classify_stage(stage_kind: str, rdd_name: str) -> str:
    """Decomposition bucket of a stage: the authors' log-mining rule.

    The partial-aggregation pass is compute; tree levels, SpawnRDD
    launches and the aggregation's result stages are reduction;
    everything else is other work. The reduced-result (IMM) stage
    computes partials, so it counts as compute.
    """
    if stage_kind == "reduced_result":
        return "agg_compute"
    if any(rdd_name.startswith(m) for m in AGG_COMPUTE_MARKERS):
        return "agg_compute"
    if any(rdd_name.startswith(m) for m in AGG_REDUCE_MARKERS):
        return "agg_reduce"
    return "other"


def phase_decomposition(events: Iterable[TraceEvent]) -> Dict[str, float]:
    """Total seconds per stopwatch phase key, from ``PhaseSpan`` events."""
    totals: Dict[str, float] = {}
    for event in events:
        if event.kind == "phase":
            totals[event.key] = totals.get(event.key, 0.0) + event.seconds
    return totals


@dataclass(frozen=True)
class Straggler:
    """A task attempt that ran slower than its stage's typical task."""

    stage_id: int
    stage_attempt: int
    partition: int
    executor_id: int
    duration: float
    stage_median: float

    @property
    def slowdown(self) -> float:
        return (self.duration / self.stage_median
                if self.stage_median > 0 else float("inf"))


@dataclass
class SparseSavings:
    """Bytes-on-wire effect of the density-adaptive aggregation path.

    Accumulated from :class:`~repro.obs.events.RingHop` spans that carry
    the dense-equivalent size of each send, plus the representation
    switch points (:class:`~repro.obs.events.SegmentRepresentation`).
    ``dense_send_bytes - wire_send_bytes`` is the total saving the
    SparCML-style per-send format switch achieved.
    """

    sparse_hops: int = 0
    dense_hops: int = 0
    #: bytes that actually crossed the ring wire
    wire_send_bytes: float = 0.0
    #: what the same sends would have cost in the dense format (only hops
    #: that recorded their dense-equivalent size contribute)
    dense_send_bytes: float = 0.0
    #: representation switch points, in event order
    switches: List["TraceEvent"] = field(default_factory=list)
    #: imm merges observed while the shared value was still sparse
    sparse_imm_merges: int = 0

    @property
    def bytes_saved(self) -> float:
        return max(self.dense_send_bytes - self.wire_send_bytes, 0.0)

    @property
    def savings_ratio(self) -> float:
        """Fraction of dense-format ring traffic that never hit the wire."""
        if self.dense_send_bytes <= 0:
            return 0.0
        return self.bytes_saved / self.dense_send_bytes

    @property
    def observed(self) -> bool:
        """Whether any hop ran in the sparse wire format."""
        return self.sparse_hops > 0 or bool(self.switches)


@dataclass
class FaultReport:
    """What the fault controller injected and how the engine answered.

    ``detection_latency`` pairs each *detectable* injected fault (crashes
    and message drops) with the virtual seconds between injection and the
    first recovery action at or after it; ``recovery_by_job`` maps job id
    to the total virtual-time cost reported by that job's ``recovered``
    actions (first detection to completed aggregation).
    """

    #: every FaultInjected, in event order
    injected: List[FaultInjected] = field(default_factory=list)
    #: every RecoveryAction, in event order
    actions: List[RecoveryAction] = field(default_factory=list)
    #: (fault, latency_seconds) for faults a recovery action answered
    detection_latency: List[Tuple[FaultInjected, float]] = \
        field(default_factory=list)
    #: job id -> recovery virtual-time cost (from "recovered" actions)
    recovery_by_job: Dict[int, float] = field(default_factory=dict)
    #: fast-path downgrades (pipelined -> phased), in event order
    downgrades: List[CollectiveDowngraded] = field(default_factory=list)
    #: error-feedback residual state lost to executor deaths
    residual_losses: List[ResidualLost] = field(default_factory=list)
    #: speculative-execution decisions, in event order
    speculation: List[SpeculativeAttempt] = field(default_factory=list)

    @property
    def observed(self) -> bool:
        return bool(self.injected or self.actions or self.downgrades
                    or self.residual_losses or self.speculation)

    @property
    def residual_norm_lost(self) -> float:
        """Total L2 norm of error-feedback residuals lost to deaths."""
        return sum(loss.residual_norm for loss in self.residual_losses)

    def finalize(self) -> None:
        """Derive latencies and per-job costs from the raw event lists."""
        detectable = ("executor_crash", "message_drop")
        for fault in self.injected:
            if fault.fault not in detectable:
                continue
            answer = next((a for a in self.actions
                           if a.time >= fault.time), None)
            if answer is not None:
                self.detection_latency.append(
                    (fault, answer.time - fault.time))
        for action in self.actions:
            if action.action == "recovered":
                self.recovery_by_job[action.job_id] = (
                    self.recovery_by_job.get(action.job_id, 0.0)
                    + action.seconds)


@dataclass
class TunerReport:
    """How the collective engine chose, and how well it predicted.

    Collects every :class:`~repro.obs.events.CollectiveChosen` /
    :class:`~repro.obs.events.CollectiveCompleted` pair (joined on
    ``collective_id``) plus the candidate estimates of each tuned
    decision. ``rows`` is the CLI table: one line per dispatched
    collective with its predicted and measured reduce+gather seconds and
    the relative model error (tuned decisions only — pinned specs carry
    no prediction).
    """

    chosen: List[CollectiveChosen] = field(default_factory=list)
    completed: List[CollectiveCompleted] = field(default_factory=list)
    estimates: List[CollectiveCostEstimate] = field(default_factory=list)
    #: (chosen, completed-or-None, relative_error-or-None), decision order
    rows: List[Tuple[CollectiveChosen, Optional[CollectiveCompleted],
                     Optional[float]]] = field(default_factory=list)

    @property
    def observed(self) -> bool:
        return bool(self.chosen)

    @property
    def tuned_count(self) -> int:
        return sum(1 for c in self.chosen if c.source == "auto")

    @property
    def mean_abs_error(self) -> float:
        """Mean |predicted - measured| / measured over tuned decisions."""
        errors = [e for _, _, e in self.rows if e is not None]
        if not errors:
            return 0.0
        return sum(abs(e) for e in errors) / len(errors)

    def finalize(self) -> None:
        """Join decisions with their measured spans into ``rows``."""
        done = {c.collective_id: c for c in self.completed}
        for decision in self.chosen:
            completion = done.get(decision.collective_id)
            error: Optional[float] = None
            if (completion is not None and decision.source == "auto"
                    and completion.seconds > 0):
                error = ((completion.predicted - completion.seconds)
                         / completion.seconds)
            self.rows.append((decision, completion, error))


@dataclass(frozen=True)
class SaturationWindow:
    """A contiguous run of NIC samples at or above the threshold."""

    node_id: int
    hostname: str
    direction: str  # "in" | "out"
    start: float
    end: float
    peak_utilization: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceAnalysis:
    """Everything the CLI reports, computed from one event log."""

    span: Tuple[float, float]  # first / last event time
    phases: Dict[str, float] = field(default_factory=dict)
    stage_totals: Dict[str, float] = field(default_factory=dict)
    stage_count: int = 0
    unfinished_stages: int = 0
    job_count: int = 0
    task_count: int = 0
    task_failures: int = 0
    message_count: int = 0
    message_bytes: float = 0.0
    ring_hop_count: int = 0
    imm_merge_count: int = 0
    stragglers: List[Straggler] = field(default_factory=list)
    saturation: List[SaturationWindow] = field(default_factory=list)
    sparse: SparseSavings = field(default_factory=SparseSavings)
    faults: FaultReport = field(default_factory=FaultReport)
    tuner: TunerReport = field(default_factory=TunerReport)

    @property
    def total_time(self) -> float:
        return self.span[1] - self.span[0]

    @property
    def aggregation_share(self) -> float:
        """Share of classified stage time inside aggregation (Figure 2)."""
        total = sum(self.stage_totals.values())
        if not total:
            return 0.0
        return (self.stage_totals.get("agg_compute", 0.0)
                + self.stage_totals.get("agg_reduce", 0.0)) / total


def _median(sorted_values: Sequence[float]) -> float:
    n = len(sorted_values)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return 0.5 * (sorted_values[mid - 1] + sorted_values[mid])


def _find_stragglers(task_ends: Sequence[TaskEnd],
                     factor: float) -> List[Straggler]:
    by_stage: Dict[Tuple[int, int], List[TaskEnd]] = {}
    for event in task_ends:
        by_stage.setdefault((event.stage_id, event.stage_attempt),
                            []).append(event)
    found: List[Straggler] = []
    for (stage_id, attempt), tasks in sorted(by_stage.items()):
        if len(tasks) < 2:
            continue  # a single task has no peers to straggle behind
        median = _median(sorted(t.duration for t in tasks))
        if median <= 0:
            continue
        for t in tasks:
            if t.duration > factor * median:
                found.append(Straggler(
                    stage_id=stage_id, stage_attempt=attempt,
                    partition=t.partition, executor_id=t.executor_id,
                    duration=t.duration, stage_median=median))
    found.sort(key=lambda s: -s.slowdown)
    return found


def _saturation_windows(samples: Sequence[NicSample],
                        threshold: float) -> List[SaturationWindow]:
    """Contiguous ≥-threshold runs per (node, direction), sample-aligned."""
    windows: List[SaturationWindow] = []
    by_node: Dict[int, List[NicSample]] = {}
    for s in samples:
        by_node.setdefault(s.node_id, []).append(s)
    for node_id, series in sorted(by_node.items()):
        series.sort(key=lambda s: s.time)
        for direction in ("in", "out"):
            start: Optional[float] = None
            end = 0.0
            peak = 0.0
            for s in series:
                util = (s.in_utilization if direction == "in"
                        else s.out_utilization)
                if util >= threshold:
                    if start is None:
                        start = s.time
                        peak = util
                    end = s.time
                    peak = max(peak, util)
                elif start is not None:
                    windows.append(SaturationWindow(
                        node_id=node_id, hostname=series[0].hostname,
                        direction=direction, start=start, end=end,
                        peak_utilization=peak))
                    start = None
            if start is not None:
                windows.append(SaturationWindow(
                    node_id=node_id, hostname=series[0].hostname,
                    direction=direction, start=start, end=end,
                    peak_utilization=peak))
    windows.sort(key=lambda w: (w.start, w.node_id, w.direction))
    return windows


def analyze_events(events: Iterable[TraceEvent], *,
                   straggler_factor: float = 2.0,
                   saturation_threshold: float = 0.9,
                   driver_only_saturation: bool = True) -> TraceAnalysis:
    """Compute the full analysis over one event stream.

    ``straggler_factor`` flags tasks slower than that multiple of their
    stage's median duration; ``saturation_threshold`` is the NIC
    utilization level that counts as saturated. By default only the
    *driver's* NIC is scanned for saturation — the paper's bottleneck —
    pass ``driver_only_saturation=False`` to scan every node.
    """
    events = list(events)
    if not events:
        return TraceAnalysis(span=(0.0, 0.0))
    analysis = TraceAnalysis(
        span=(min(e.time for e in events), max(e.time for e in events)))
    analysis.phases = phase_decomposition(events)

    task_ends: List[TaskEnd] = []
    nic_samples: List[NicSample] = []
    open_stages = 0
    for event in events:
        kind = event.kind
        if kind == "stage_submitted":
            analysis.stage_count += 1
            open_stages += 1
        elif kind == "stage_completed":
            open_stages -= 1
            bucket = classify_stage(event.stage_kind, event.rdd_name)
            analysis.stage_totals[bucket] = (
                analysis.stage_totals.get(bucket, 0.0)
                + (event.time - event.began))
        elif kind == "job_end":
            analysis.job_count += 1
        elif kind == "task_end":
            analysis.task_count += 1
            if event.status != "ok":
                analysis.task_failures += 1
            else:
                task_ends.append(event)
        elif kind == "message_sent":
            analysis.message_count += 1
            analysis.message_bytes += event.nbytes
        elif kind == "ring_hop":
            analysis.ring_hop_count += 1
            sparse = analysis.sparse
            if event.send_repr == "sparse":
                sparse.sparse_hops += 1
            else:
                sparse.dense_hops += 1
            if event.send_dense_bytes > 0:
                sparse.wire_send_bytes += event.send_bytes
                sparse.dense_send_bytes += event.send_dense_bytes
        elif kind == "segment_repr":
            analysis.sparse.switches.append(event)
        elif kind == "imm_merge":
            analysis.imm_merge_count += 1
            if event.representation == "sparse":
                analysis.sparse.sparse_imm_merges += 1
        elif kind == "fault_injected":
            analysis.faults.injected.append(event)
        elif kind == "recovery_action":
            analysis.faults.actions.append(event)
        elif kind == "collective_downgraded":
            analysis.faults.downgrades.append(event)
        elif kind == "residual_lost":
            analysis.faults.residual_losses.append(event)
        elif kind == "speculative_attempt":
            analysis.faults.speculation.append(event)
        elif kind == "collective_chosen":
            analysis.tuner.chosen.append(event)
        elif kind == "collective_completed":
            analysis.tuner.completed.append(event)
        elif kind == "collective_cost":
            analysis.tuner.estimates.append(event)
        elif kind == "nic_sample":
            if event.is_driver or not driver_only_saturation:
                nic_samples.append(event)
    analysis.unfinished_stages = max(open_stages, 0)
    analysis.faults.finalize()
    analysis.tuner.finalize()
    analysis.stragglers = _find_stragglers(task_ends, straggler_factor)
    analysis.saturation = _saturation_windows(nic_samples,
                                              saturation_threshold)
    return analysis
