"""CLI: analyze a recorded event log.

``python -m repro.obs events.jsonl`` prints the Figure-2-style time
decomposition (phase and stage buckets), straggler tasks (slower than a
factor of their stage's median), the fault report (injected faults with
detection latency, recovery actions, per-job recovery cost), and
driver-NIC saturation windows.
``--chrome trace.json`` additionally writes a Perfetto-loadable Chrome
trace, and ``--metrics`` dumps the full metrics registry fed from the
log.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import TraceAnalysis, analyze_events
from .chrome_trace import write_chrome_trace
from .critical_path import (
    SEGMENT_LABELS,
    CriticalPathReport,
    attribute_critical_path,
)
from .log import load_events
from .metrics import MetricsListener
from .timeseries import TimeSeriesListener

_BUCKET_LABELS = {
    "agg_compute": "Aggregation / compute",
    "agg_reduce": "Aggregation / reduce",
    "other": "Other stages",
}


def render_analysis(analysis: TraceAnalysis) -> str:
    """Render a :class:`TraceAnalysis` as the CLI's text report."""
    from ..bench.harness import format_seconds, format_table

    out: List[str] = []
    out.append(f"trace span: {format_seconds(analysis.total_time)} "
               f"virtual ({analysis.job_count} jobs, "
               f"{analysis.stage_count} stages, "
               f"{analysis.task_count} tasks)")
    if analysis.task_failures:
        out.append(f"task failures: {analysis.task_failures}")
    if analysis.unfinished_stages:
        out.append(f"unfinished stages: {analysis.unfinished_stages} "
                   "(submitted but never completed)")

    if analysis.phases:
        total = sum(analysis.phases.values())
        rows = [[key, format_seconds(seconds),
                 f"{100.0 * seconds / total:.1f}%"]
                for key, seconds in sorted(analysis.phases.items(),
                                           key=lambda kv: -kv[1])]
        out.append("")
        out.append(format_table(["phase", "time", "share"], rows,
                                title="Phase decomposition (stopwatch)"))

    if analysis.stage_totals:
        total = sum(analysis.stage_totals.values())
        rows = [[_BUCKET_LABELS.get(bucket, bucket),
                 format_seconds(seconds),
                 f"{100.0 * seconds / total:.1f}%"]
                for bucket, seconds in sorted(analysis.stage_totals.items(),
                                              key=lambda kv: -kv[1])]
        out.append("")
        out.append(format_table(
            ["bucket", "time", "share"], rows,
            title="Stage decomposition (Figure 2 buckets)"))
        out.append(f"aggregation share of stage time: "
                   f"{100.0 * analysis.aggregation_share:.1f}%")

    if analysis.message_count:
        out.append("")
        out.append(f"messages: {analysis.message_count} "
                   f"({analysis.message_bytes / 1e6:.2f} MB), "
                   f"ring hops: {analysis.ring_hop_count}, "
                   f"imm merges: {analysis.imm_merge_count}")

    sparse = analysis.sparse
    if sparse.observed:
        out.append("")
        out.append(
            f"sparse aggregation: {sparse.sparse_hops} sparse / "
            f"{sparse.dense_hops} dense ring hops, "
            f"{sparse.sparse_imm_merges} sparse imm merges; "
            f"wire {sparse.wire_send_bytes / 1e6:.2f} MB vs dense "
            f"{sparse.dense_send_bytes / 1e6:.2f} MB "
            f"(saved {sparse.bytes_saved / 1e6:.2f} MB, "
            f"{100.0 * sparse.savings_ratio:.1f}%)")
        if sparse.switches:
            rows = [[s.site, f"{s.time:.4f}s", s.channel, s.hop,
                     f"{s.from_repr}->{s.to_repr}",
                     f"{100.0 * s.density:.1f}%",
                     f"{s.wire_bytes / 1e3:.1f}kB",
                     f"{s.dense_bytes / 1e3:.1f}kB"]
                    for s in sparse.switches]
            out.append(format_table(
                ["site", "time", "chan", "hop", "switch", "density",
                 "wire", "dense"],
                rows, title="Representation switch points"))

    tuner = analysis.tuner
    if tuner.observed:
        out.append("")
        rows = []
        for decision, completion, error in tuner.rows:
            rows.append([
                decision.collective_id, decision.algorithm,
                f"P={decision.parallelism}", decision.source,
                f"{decision.ranks}x{decision.hosts}h",
                f"{decision.value_bytes / 1e6:.1f}MB",
                (f"{decision.predicted:.4f}s"
                 if decision.source == "auto" else "-"),
                (f"{completion.seconds:.4f}s"
                 if completion is not None else "-"),
                (f"{100.0 * error:+.1f}%" if error is not None else "-"),
            ])
        out.append(format_table(
            ["id", "algorithm", "chan", "source", "ranks", "value",
             "predicted", "measured", "error"],
            rows, title="Collective tuner decisions"))
        if tuner.tuned_count:
            out.append(
                f"tuned decisions: {tuner.tuned_count} of "
                f"{len(tuner.chosen)}; mean |model error| "
                f"{100.0 * tuner.mean_abs_error:.1f}% over "
                f"{len(tuner.estimates)} candidate estimates")

    out.append("")
    if analysis.stragglers:
        rows = [[f"s{s.stage_id}.{s.stage_attempt}", s.partition,
                 s.executor_id, format_seconds(s.duration),
                 format_seconds(s.stage_median), f"{s.slowdown:.2f}x"]
                for s in analysis.stragglers]
        out.append(format_table(
            ["stage", "part", "executor", "duration", "median", "slowdown"],
            rows, title="Stragglers (duration > 2x stage median)"))
    else:
        out.append("stragglers: none")

    faults = analysis.faults
    if faults.observed:
        out.append("")
        latency = {id(f): lat for f, lat in faults.detection_latency}
        rows = [[f"{f.time:.4f}s", f.fault, f.trigger, f.target,
                 (f"{latency[id(f)]:.4f}s" if id(f) in latency else "-"),
                 f.detail]
                for f in faults.injected]
        out.append(format_table(
            ["time", "fault", "trigger", "target", "detect", "detail"],
            rows, title="Injected faults"))
        if faults.actions:
            rows = [[f"{a.time:.4f}s", a.action, a.site,
                     (a.job_id if a.job_id >= 0 else "-"),
                     (a.executor_id if a.executor_id >= 0 else "-"),
                     a.attempt, a.detail]
                    for a in faults.actions]
            out.append(format_table(
                ["time", "action", "site", "job", "executor", "attempt",
                 "detail"],
                rows, title="Recovery actions"))
        if faults.recovery_by_job:
            cost = ", ".join(
                f"job {job_id}: {format_seconds(seconds)}"
                for job_id, seconds in sorted(faults.recovery_by_job.items()))
            out.append(f"recovery virtual-time cost: {cost}")
        for down in faults.downgrades:
            out.append(
                f"collective downgraded at {down.time:.4f}s: "
                f"{down.requested} -> {down.actual} ({down.reason})"
                + (f" [{down.detail}]" if down.detail else ""))
        if faults.residual_losses:
            out.append(
                f"error-feedback residuals lost: "
                f"{sum(r.num_residuals for r in faults.residual_losses)} "
                f"buffer(s) on "
                f"{len(faults.residual_losses)} dead executor(s), "
                f"total L2 norm {faults.residual_norm_lost:.6g}")
        if faults.speculation:
            launched = sum(1 for s in faults.speculation
                           if s.action == "launched")
            won = sum(1 for s in faults.speculation
                      if s.action == "speculative_won")
            out.append(f"speculative attempts: {launched} launched, "
                       f"{won} won the commit race")

    out.append("")
    if analysis.saturation:
        rows = [[w.hostname, w.direction, f"{w.start:.4f}s",
                 f"{w.end:.4f}s", format_seconds(w.duration),
                 f"{100.0 * w.peak_utilization:.0f}%"]
                for w in analysis.saturation]
        out.append(format_table(
            ["node", "dir", "start", "end", "duration", "peak"],
            rows, title="Driver-NIC saturation windows"))
    else:
        out.append("driver-NIC saturation: none observed "
                   "(no samples at/above threshold)")
    return "\n".join(out)


def render_critical_path(report: CriticalPathReport) -> str:
    """Render a critical-path report as the CLI's attribution tables."""
    from ..bench.harness import format_seconds, format_table

    out: List[str] = []
    if report.jobs:
        rows = []
        for job in report.jobs:
            totals = job.totals()
            makespan = job.makespan or 1.0
            rows.append(
                [job.job_id, job.job_kind,
                 format_seconds(job.makespan)]
                + [f"{100.0 * totals.get(label, 0.0) / makespan:.1f}%"
                   for label in SEGMENT_LABELS]
                + ["yes" if job.recovery else ""])
        out.append(format_table(
            ["job", "kind", "makespan"] + list(SEGMENT_LABELS) + ["recov"],
            rows, title="Critical path (per-job makespan attribution)"))
        blames = [(job.job_id, ct) for job in report.jobs
                  for ct in job.critical_tasks if ct.blame]
        for job_id, ct in blames:
            out.append(f"  job {job_id} s{ct.stage_id}.{ct.stage_attempt}"
                       f" straggler blame: {ct.blame}")
    if report.unfinished:
        for job in report.unfinished:
            out.append(f"unfinished job {job.job_id} ({job.job_kind}, "
                       f"{job.rdd_name}) started {job.began:.4f}s: "
                       f"{job.note}")
    if report.collectives:
        rows = []
        for coll in report.collectives:
            hop = coll.slowest_hop
            rows.append([
                coll.collective_id, coll.algorithm,
                f"P={coll.parallelism}", format_seconds(coll.seconds),
                coll.hop_count,
                (f"{hop.channel} hop {hop.hop} rank {hop.rank} "
                 f"({format_seconds(hop.seconds)})" if hop else "-"),
                (f"{coll.chain_channel} rank {coll.chain_rank}: "
                 f"{format_seconds(coll.chain_merge_seconds)} merge + "
                 f"{format_seconds(coll.chain_wire_seconds)} wire"
                 if coll.chain_rank >= 0 else "-"),
                (format_seconds(coll.recovery_seconds)
                 if coll.recovery_seconds else "-"),
            ])
        out.append(format_table(
            ["id", "algorithm", "chan", "seconds", "hops", "slowest hop",
             "slowest chain", "recovery"],
            rows, title="Collective attribution"))
    if report.recovery_epochs:
        for epoch in report.recovery_epochs:
            state = "recovered" if epoch.recovered else "UNRECOVERED"
            out.append(f"recovery epoch {epoch.began:.4f}s -> "
                       f"{epoch.ended:.4f}s ({state}, "
                       f"{epoch.actions} actions, "
                       f"{format_seconds(epoch.seconds)})")
    if not out:
        out.append("critical path: no finished jobs in the log")
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze a repro.obs JSON-lines event log.")
    parser.add_argument("events", help="path to the events.jsonl file")
    parser.add_argument("--chrome", metavar="TRACE.json", default=None,
                        help="also write a Chrome/Perfetto trace here")
    parser.add_argument("--metrics", action="store_true",
                        help="also print the metrics-registry summary")
    parser.add_argument("--timeseries", action="store_true",
                        help="also print the windowed time-series summary")
    parser.add_argument("--window", type=float, default=0.01,
                        help="time-series window width in virtual seconds "
                             "(default: 0.01)")
    parser.add_argument("--straggler-factor", type=float, default=2.0,
                        help="flag tasks slower than this multiple of "
                             "their stage median (default: 2.0)")
    parser.add_argument("--saturation-threshold", type=float, default=0.9,
                        help="NIC utilization that counts as saturated "
                             "(default: 0.9)")
    args = parser.parse_args(argv)

    try:
        events = load_events(args.events)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.events}: {exc}", file=sys.stderr)
        return 2

    analysis = analyze_events(
        events, straggler_factor=args.straggler_factor,
        saturation_threshold=args.saturation_threshold)
    print(render_analysis(analysis))
    print()
    print(render_critical_path(attribute_critical_path(
        events, straggler_factor=args.straggler_factor)))

    if args.metrics:
        listener = MetricsListener()
        for event in events:
            listener.on_event(event)
        print()
        print(listener.registry.summary())

    if args.timeseries:
        ts = TimeSeriesListener(window=args.window).replay(events)
        print()
        print(ts.store.summary())

    if args.chrome:
        count = write_chrome_trace(events, args.chrome)
        print(f"\nwrote {count} trace events to {args.chrome}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
