"""Critical-path reconstruction and makespan attribution.

Rebuilds the span DAG of a recorded run and answers *where the time
went*: every finished job's makespan is partitioned into contiguous,
non-overlapping segments labelled

* ``compute``  — task user code and IMM merge CPU,
* ``serde``    — serialization / deserialization CPU,
* ``wire``     — network time on the critical path (shuffle fetch minus
  its CPU share, result shipping),
* ``queueing`` — waiting for an executor core or the IMM merge lock,
* ``overhead`` — task launch bookkeeping,
* ``driver``   — scheduler gaps, task dispatch, stage wrap-up, and
  driver-side result handling,
* ``other``    — windows the log cannot explain (e.g. a stage with no
  task events in a partial log).

The partition is exact *by construction*: segment boundaries are laid
out cumulatively from task metrics and the final boundary of every
window is forced onto the window's true endpoint, so per-job segment
seconds always sum to the job's virtual makespan (modulo float
summation dust). That invariant is what the acceptance tests pin.

The analyzer is span-aware but does not require spans: when events
carry ``span_id``/``parent_span_id`` (a traced run) they are used to
bind recovery epochs to recompute jobs and ring hops to collectives;
detached-mode logs fall back to virtual-time windows keyed by
``job_id`` / ``collective_id``. Degenerate logs (empty, truncated,
unfinished jobs) produce a report with notes instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import TaskEnd, TraceEvent

__all__ = [
    "Segment",
    "CriticalTask",
    "JobAttribution",
    "HopBlame",
    "CollectiveAttribution",
    "RecoveryEpoch",
    "UnfinishedJob",
    "CriticalPathReport",
    "attribute_critical_path",
    "SEGMENT_LABELS",
]

#: every label a Segment may carry, in report order
SEGMENT_LABELS = ("compute", "serde", "wire", "queueing", "overhead",
                  "driver", "recovery", "other")

_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """One contiguous slice of a job's critical-path timeline."""

    label: str
    began: float
    ended: float
    detail: str = ""

    @property
    def seconds(self) -> float:
        return self.ended - self.began


@dataclass(frozen=True)
class CriticalTask:
    """The last-finishing task of one stage — the stage's critical task."""

    stage_id: int
    stage_attempt: int
    partition: int
    attempt: int
    executor_id: int
    began: float
    ended: float
    #: non-empty when this task is also a straggler vs its stage median
    blame: str = ""

    @property
    def duration(self) -> float:
        return self.ended - self.began


@dataclass
class JobAttribution:
    """One finished job's exact makespan partition."""

    job_id: int
    job_kind: str
    rdd_name: str
    began: float
    ended: float
    succeeded: bool
    #: True when this job ran inside a fault-recovery epoch (a lineage
    #: recompute or a post-rebuild retry)
    recovery: bool = False
    segments: List[Segment] = field(default_factory=list)
    critical_tasks: List[CriticalTask] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.ended - self.began

    def totals(self) -> Dict[str, float]:
        """Seconds per segment label; sums to :attr:`makespan`."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.label] = out.get(seg.label, 0.0) + seg.seconds
        return out


@dataclass(frozen=True)
class HopBlame:
    """One ring/HD hop identified as slowest in its collective."""

    channel: str
    rank: int
    executor_id: int
    hop: int
    began: float
    ended: float
    merge_time: float

    @property
    def seconds(self) -> float:
        return self.ended - self.began


@dataclass
class CollectiveAttribution:
    """Where one dispatched collective's window went."""

    collective_id: int
    algorithm: str
    parallelism: int
    began: float
    ended: float
    seconds: float
    hop_count: int = 0
    #: the single longest hop span (None for hop-free algorithms)
    slowest_hop: Optional[HopBlame] = None
    #: the (channel, rank) whose summed hop time is largest — the rank
    #: chain the collective actually waited for
    chain_channel: str = ""
    chain_rank: int = -1
    chain_seconds: float = 0.0
    chain_merge_seconds: float = 0.0
    #: sum of "recovered" epochs that closed inside this window
    recovery_seconds: float = 0.0
    #: chunk-stream spans bound to this collective (pipelined_ring only)
    chunk_streams: int = 0
    #: hop seconds that ran concurrently with another hop: the sum of all
    #: hop durations minus the length of their busy union. Parallel ring
    #: channels already overlap; ``pipelined_ring``'s chunk columns add
    #: the wire time hidden under other columns' merges, so this is the
    #: overlapped wire/merge time the makespan never saw.
    overlapped_hop_seconds: float = 0.0

    @property
    def chain_wire_seconds(self) -> float:
        return max(self.chain_seconds - self.chain_merge_seconds, 0.0)


@dataclass
class RecoveryEpoch:
    """One detection -> recovered window of the fault-tolerant engine."""

    began: float
    ended: float
    actions: int
    recovered: bool
    seconds: float
    #: span ids belonging to this epoch (empty on detached logs)
    span_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class UnfinishedJob:
    """A job the log opens but never closes (truncated / crashed run)."""

    job_id: int
    job_kind: str
    rdd_name: str
    began: float
    note: str = "no job_end record"


@dataclass
class CriticalPathReport:
    """Everything :func:`attribute_critical_path` reconstructed."""

    jobs: List[JobAttribution] = field(default_factory=list)
    collectives: List[CollectiveAttribution] = field(default_factory=list)
    recovery_epochs: List[RecoveryEpoch] = field(default_factory=list)
    unfinished: List[UnfinishedJob] = field(default_factory=list)

    def totals(self) -> Dict[str, float]:
        """Aggregate seconds per label across jobs.

        Jobs flagged ``recovery`` contribute their whole makespan under
        ``recovery`` — from the workload's point of view a lineage
        recompute *is* recovery cost, whatever it spent inside.
        """
        out: Dict[str, float] = {}
        for job in self.jobs:
            if job.recovery:
                out["recovery"] = out.get("recovery", 0.0) + job.makespan
                continue
            for label, seconds in job.totals().items():
                out[label] = out.get(label, 0.0) + seconds
        return out


# ---------------------------------------------------------------- helpers
def _critical_task(task_ends: List[TaskEnd]) -> Optional[TaskEnd]:
    """The stage's last-finishing attempt (ties: highest partition)."""
    if not task_ends:
        return None
    return max(task_ends, key=lambda e: (e.time, e.partition, e.attempt))


def _blame(ct: TaskEnd, task_ends: List[TaskEnd],
           straggler_factor: float) -> str:
    durations = [e.duration for e in task_ends]
    if len(durations) < 2:
        return ""
    stage_median = median(durations)
    if stage_median <= 0 or ct.duration <= straggler_factor * stage_median:
        return ""
    return (f"partition {ct.partition} on executor {ct.executor_id}: "
            f"{ct.duration / stage_median:.2f}x stage median")


def _recovery_epochs(events: List[TraceEvent]) -> List[RecoveryEpoch]:
    actions = sorted((e for e in events if e.kind == "recovery_action"),
                     key=lambda e: e.time)
    epochs: List[RecoveryEpoch] = []
    open_began: Optional[float] = None
    open_count = 0
    open_spans: List[int] = []
    for action in actions:
        if open_began is None:
            open_began = action.time
            open_count = 0
            open_spans = []
        open_count += 1
        # the "recovered" action carries the epoch span itself; every
        # other action is parented to it
        if action.action == "recovered":
            if action.span_id >= 0:
                open_spans.append(action.span_id)
            began = open_began
            if action.seconds > 0:
                began = min(began, action.time - action.seconds)
            epochs.append(RecoveryEpoch(
                began=began, ended=action.time, actions=open_count,
                recovered=True, seconds=action.seconds,
                span_ids=tuple(sorted(set(open_spans)))))
            open_began = None
        elif action.parent_span_id >= 0:
            open_spans.append(action.parent_span_id)
    if open_began is not None and open_count:
        last = actions[-1].time
        epochs.append(RecoveryEpoch(
            began=open_began, ended=last, actions=open_count,
            recovered=False, seconds=last - open_began,
            span_ids=tuple(sorted(set(open_spans)))))
    return epochs


def _job_in_recovery(job_start: TraceEvent,
                     epochs: List[RecoveryEpoch]) -> bool:
    parent = getattr(job_start, "parent_span_id", -1)
    for epoch in epochs:
        if parent >= 0 and parent in epoch.span_ids:
            return True
        if epoch.began - _EPS <= job_start.time <= epoch.ended + _EPS:
            return True
    return False


# ---------------------------------------------------------------- analyzer
def attribute_critical_path(events: Iterable[TraceEvent],
                            straggler_factor: float = 2.0
                            ) -> CriticalPathReport:
    """Partition every finished job's makespan along its critical path.

    Never raises on degenerate input: empty iterables, logs truncated
    mid-job, detached-mode streams with no job events, and stages with
    missing task records all land in the report as ``unfinished`` notes
    or ``other``-labelled segments.
    """
    events = list(events)
    report = CriticalPathReport()

    job_starts: Dict[int, TraceEvent] = {}
    job_ends: Dict[int, TraceEvent] = {}
    stages_by_job: Dict[int, List[TraceEvent]] = {}
    stage_done: Dict[Tuple[int, int], TraceEvent] = {}
    tasks_by_stage: Dict[Tuple[int, int], List[TaskEnd]] = {}
    imm_by_key: Dict[Tuple[int, int, int], List[TraceEvent]] = {}
    for event in events:
        kind = event.kind
        if kind == "job_start":
            job_starts[event.job_id] = event
        elif kind == "job_end":
            job_ends[event.job_id] = event
        elif kind == "stage_submitted":
            stages_by_job.setdefault(event.job_id, []).append(event)
        elif kind == "stage_completed":
            stage_done[(event.stage_id, event.attempt)] = event
        elif kind == "task_end":
            tasks_by_stage.setdefault(
                (event.stage_id, event.stage_attempt), []).append(event)
        elif kind == "imm_merge":
            imm_by_key.setdefault(
                (event.job_id, event.stage_id, event.executor_id),
                []).append(event)

    report.recovery_epochs = _recovery_epochs(events)

    for job_id in sorted(job_starts):
        js = job_starts[job_id]
        je = job_ends.get(job_id)
        if je is None:
            report.unfinished.append(UnfinishedJob(
                job_id=job_id, job_kind=js.job_kind,
                rdd_name=js.rdd_name, began=js.time))
            continue
        job = JobAttribution(
            job_id=job_id, job_kind=je.job_kind, rdd_name=js.rdd_name,
            began=js.time, ended=je.time, succeeded=je.succeeded,
            recovery=_job_in_recovery(js, report.recovery_epochs))

        cursor = js.time

        def emit(label: str, until: float, detail: str = "") -> None:
            nonlocal cursor
            if until > cursor:
                job.segments.append(Segment(label, cursor, until, detail))
                cursor = until

        for sub in sorted(stages_by_job.get(job_id, []),
                          key=lambda e: (e.time, e.stage_id)):
            comp = stage_done.get((sub.stage_id, sub.attempt))
            if comp is None:
                # truncated log / crashed stage: everything from here to
                # the job end is unexplained
                emit("other", je.time,
                     f"stage {sub.stage_id} never completed")
                break
            emit("driver", sub.time, "scheduling")
            stage_tasks = tasks_by_stage.get(
                (sub.stage_id, sub.attempt), [])
            ct = _critical_task(stage_tasks)
            if ct is None:
                emit("other", comp.time,
                     f"stage {sub.stage_id}: no task events")
                continue
            job.critical_tasks.append(CriticalTask(
                stage_id=ct.stage_id, stage_attempt=ct.stage_attempt,
                partition=ct.partition, attempt=ct.attempt,
                executor_id=ct.executor_id, began=ct.began, ended=ct.time,
                blame=_blame(ct, stage_tasks, straggler_factor)))
            m = ct.metrics
            emit("driver", ct.began - m.slot_wait, "task dispatch")
            emit("queueing", ct.began, "executor slot wait")
            # inside the task window: cumulative boundaries from the
            # metrics decomposition, final boundary pinned to the task's
            # true end so the partition stays exact
            overhead = max(ct.duration - m.fetch_wait - m.compute_time
                           - m.serialize_time - m.output_wait, 0.0)
            chunks: List[Tuple[str, float, str]] = [
                ("overhead", overhead, "task launch"),
                ("wire", max(m.fetch_wait - m.deserialize_time, 0.0),
                 "shuffle fetch"),
                ("serde", m.deserialize_time, "shuffle deserialize"),
                ("compute", m.compute_time, ""),
                ("serde", m.serialize_time, "result serialize"),
            ]
            merge = None
            if sub.stage_kind == "reduced_result":
                window = [e for e in imm_by_key.get(
                              (job_id, ct.stage_id, ct.executor_id), [])
                          if ct.began - _EPS <= e.time <= ct.time + _EPS]
                if window:
                    merge = max(window, key=lambda e: e.time)
            if merge is not None:
                ship = max(m.output_wait - merge.lock_wait
                           - merge.merge_time, 0.0)
                chunks += [
                    ("queueing", merge.lock_wait, "imm lock wait"),
                    ("compute", merge.merge_time, "imm merge"),
                    ("wire", ship, "result ship"),
                ]
            else:
                chunks.append(("wire", m.output_wait, "result ship"))
            boundary = ct.began
            for i, (label, dur, detail) in enumerate(chunks):
                boundary = (ct.time if i == len(chunks) - 1
                            else min(boundary + max(dur, 0.0), ct.time))
                emit(label, boundary, detail)
            emit("driver", comp.time, "stage wrap-up")
        emit("driver", je.time, "result handling")
        report.jobs.append(job)

    _attribute_collectives(events, report)
    return report


def _attribute_collectives(events: List[TraceEvent],
                           report: CriticalPathReport) -> None:
    chosen = {e.collective_id: e for e in events
              if e.kind == "collective_chosen"}
    completed = {e.collective_id: e for e in events
                 if e.kind == "collective_completed"}
    ring_hops = [e for e in events if e.kind == "ring_hop"]
    streams = [e for e in events if e.kind == "chunk_stream"]
    recovered = [e for e in events
                 if e.kind == "recovery_action" and e.action == "recovered"]
    for cid in sorted(completed):
        comp = completed[cid]
        decision = chosen.get(cid)
        span = getattr(decision, "span_id", -1) if decision else -1
        if span >= 0:
            hops = [h for h in ring_hops if h.parent_span_id == span]
            bound_streams = [s for s in streams if s.parent_span_id == span]
        else:  # detached log: bind by the collective's time window
            hops = [h for h in ring_hops
                    if comp.began - _EPS <= h.began
                    and h.time <= comp.time + _EPS]
            bound_streams = [s for s in streams
                             if comp.began - _EPS <= s.began
                             and s.time <= comp.time + _EPS]
        attribution = CollectiveAttribution(
            collective_id=cid, algorithm=comp.algorithm,
            parallelism=comp.parallelism, began=comp.began,
            ended=comp.time, seconds=comp.seconds, hop_count=len(hops),
            chunk_streams=len(bound_streams))
        if hops:
            intervals = sorted((h.began, h.time) for h in hops)
            busy = 0.0
            lo, hi = intervals[0]
            for b, e in intervals[1:]:
                if b > hi:
                    busy += hi - lo
                    lo, hi = b, e
                else:
                    hi = max(hi, e)
            busy += hi - lo
            attribution.overlapped_hop_seconds = max(
                sum(h.time - h.began for h in hops) - busy, 0.0)
            slowest = max(hops, key=lambda h: (h.time - h.began, h.hop))
            attribution.slowest_hop = HopBlame(
                channel=slowest.channel, rank=slowest.rank,
                executor_id=slowest.executor_id, hop=slowest.hop,
                began=slowest.began, ended=slowest.time,
                merge_time=slowest.merge_time)
            chains: Dict[Tuple[str, int], Tuple[float, float]] = {}
            for h in hops:
                key = (h.channel, h.rank)
                total, merge = chains.get(key, (0.0, 0.0))
                chains[key] = (total + (h.time - h.began),
                               merge + h.merge_time)
            (channel, rank), (total, merge) = max(
                chains.items(), key=lambda kv: kv[1][0])
            attribution.chain_channel = channel
            attribution.chain_rank = rank
            attribution.chain_seconds = total
            attribution.chain_merge_seconds = merge
        attribution.recovery_seconds = sum(
            a.seconds for a in recovered
            if comp.began - _EPS <= a.time <= comp.time + _EPS)
        report.collectives.append(attribution)
