"""Chrome ``trace_event`` / Perfetto export.

Lays a recorded event stream out on the virtual-time axis in the JSON
format Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
natively:

* one *process* per executor, with one *thread lane per core* — task
  spans are packed greedily onto core lanes (an executor never runs more
  concurrent tasks than cores, so the packing is exact) — plus extra
  lanes for ring-hop spans (one per ring channel) and IMM merges,
* a *driver* process with a job lane and a phase lane
  (``agg.compute`` / ``ml.driver`` / ... spans from the stopwatch);
  injected faults and recovery actions appear as instant markers on the
  job lane, and each detection->recovered epoch is a span on a
  dedicated *recovery* lane,
* a *NIC* process carrying per-node utilization counter tracks sampled
  by :class:`~repro.obs.metrics.NicMonitor`.

Critical paths are drawn as flow arrows (``ph: s/t/f``): each job's
slice chains through its stages' critical tasks, and each collective's
slice points at its slowest hop — load the trace in Perfetto and the
arrows show exactly which task/hop the makespan waited on.

Timestamps are microseconds of virtual time (the ``trace_event`` unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .critical_path import attribute_critical_path
from .events import TraceEvent

__all__ = ["chrome_trace", "write_chrome_trace"]

#: process ids of the fixed lanes
DRIVER_PID = 1
NIC_PID = 2
#: executors start here: pid = EXECUTOR_PID_BASE + executor_id
EXECUTOR_PID_BASE = 10
#: driver-process thread id of the recovery-epoch lane
RECOVERY_TID = 40

_US = 1e6  # seconds -> trace_event microseconds


def _meta(pid: int, name: str, tid: Optional[int] = None,
          sort_index: Optional[int] = None) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    if tid is None:
        out.append({"ph": "M", "pid": pid, "name": "process_name",
                    "args": {"name": name}})
        if sort_index is not None:
            out.append({"ph": "M", "pid": pid, "name": "process_sort_index",
                        "args": {"sort_index": sort_index}})
    else:
        out.append({"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                    "args": {"name": name}})
        if sort_index is not None:
            out.append({"ph": "M", "pid": pid, "tid": tid,
                        "name": "thread_sort_index",
                        "args": {"sort_index": sort_index}})
    return out


def _span(pid: int, tid: int, name: str, began: float, ended: float,
          cat: str, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"ph": "X", "pid": pid, "tid": tid, "name": name, "cat": cat,
            "ts": began * _US, "dur": max(ended - began, 0.0) * _US,
            "args": args}


def _pack_lanes(spans: Sequence[Tuple[float, float, Any]]
                ) -> List[Tuple[int, Any]]:
    """Greedy interval packing: assign each (begin, end, item) a lane.

    Spans are laid onto the first lane whose previous span has ended;
    processing in begin order makes the packing deterministic and uses
    the minimum number of lanes.
    """
    lane_free: List[float] = []  # lane index -> time it frees up
    out: List[Tuple[int, Any]] = []
    eps = 1e-12
    for began, ended, item in sorted(spans, key=lambda s: (s[0], s[1])):
        for lane, free_at in enumerate(lane_free):
            if free_at <= began + eps:
                lane_free[lane] = ended
                out.append((lane, item))
                break
        else:
            lane_free.append(ended)
            out.append((len(lane_free) - 1, item))
    return out


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Convert a trace-event stream into a Chrome trace JSON object."""
    events = list(events)
    out: List[Dict[str, Any]] = []
    out += _meta(DRIVER_PID, "driver", sort_index=0)
    out += _meta(DRIVER_PID, "jobs", tid=0, sort_index=0)
    out += _meta(DRIVER_PID, "phases", tid=1, sort_index=1)
    collective_tid = 50  # after however many packed phase lanes appear

    # ------------------------------------------------------------- driver
    job_starts: Dict[int, TraceEvent] = {}
    for event in events:
        if event.kind == "job_start":
            job_starts[event.job_id] = event
        elif event.kind == "job_end":
            start = job_starts.pop(event.job_id, None)
            began = start.time if start is not None else event.time
            name = (start.rdd_name if start is not None
                    else f"job {event.job_id}")
            out.append(_span(
                DRIVER_PID, 0, f"{event.job_kind}:{name}", began,
                event.time, "job",
                {"job_id": event.job_id, "succeeded": event.succeeded}))
    phase_spans = [(e.began, e.time, e) for e in events
                   if e.kind == "phase"]
    for lane, e in _pack_lanes(phase_spans):
        out.append(_span(DRIVER_PID, 1 + lane, e.key, e.began, e.time,
                         "phase", {"seconds": e.seconds}))

    # -------------------------------------------------------- collectives
    # One driver lane for the collective engine: each dispatched
    # reduce+gather is a span (measured seconds), the tuner's decision and
    # its per-candidate cost estimates are instant markers at decision
    # time, so prediction vs reality lines up on one axis.
    collective_events = [e for e in events if e.kind in
                         ("collective_chosen", "collective_completed",
                          "collective_cost")]
    if collective_events:
        out += _meta(DRIVER_PID, "collectives", tid=collective_tid,
                     sort_index=collective_tid)
        for event in collective_events:
            if event.kind == "collective_completed":
                out.append(_span(
                    DRIVER_PID, collective_tid,
                    f"{event.algorithm} P{event.parallelism}",
                    event.began, event.time, "collective",
                    {"collective_id": event.collective_id,
                     "seconds": event.seconds,
                     "predicted": event.predicted}))
            elif event.kind == "collective_chosen":
                out.append({"ph": "i", "pid": DRIVER_PID,
                            "tid": collective_tid, "s": "t",
                            "name": (f"chose {event.algorithm} "
                                     f"P{event.parallelism}"),
                            "cat": "collective", "ts": event.time * _US,
                            "args": {"collective_id": event.collective_id,
                                     "source": event.source,
                                     "ranks": event.ranks,
                                     "hosts": event.hosts,
                                     "value_bytes": event.value_bytes,
                                     "segment_bytes": event.segment_bytes,
                                     "predicted": event.predicted}})
            else:  # collective_cost: one estimate per candidate
                out.append({"ph": "i", "pid": DRIVER_PID,
                            "tid": collective_tid, "s": "t",
                            "name": (f"est {event.algorithm} "
                                     f"P{event.parallelism}"),
                            "cat": "collective", "ts": event.time * _US,
                            "args": {"collective_id": event.collective_id,
                                     "predicted": event.predicted,
                                     "chosen": event.chosen}})

    # ------------------------------------------------------------- faults
    # Instant markers on the job lane: faults pin where the controller
    # struck, recovery actions show the engine's answer on the same axis.
    # Each detection->recovered epoch also gets a span on its own driver
    # lane so recovery cost is visible as a width, not just ticks.
    recovered = [e for e in events if e.kind == "recovery_action"
                 and e.action == "recovered" and e.seconds > 0]
    if recovered:
        out += _meta(DRIVER_PID, "recovery", tid=RECOVERY_TID,
                     sort_index=RECOVERY_TID)
        for event in recovered:
            out.append(_span(
                DRIVER_PID, RECOVERY_TID,
                f"recovery (attempt {event.attempt})",
                event.time - event.seconds, event.time, "recovery",
                {"site": event.site, "job_id": event.job_id,
                 "seconds": event.seconds, "detail": event.detail}))
    for event in events:
        if event.kind == "fault_injected":
            out.append({"ph": "i", "pid": DRIVER_PID, "tid": 0, "s": "g",
                        "name": f"fault:{event.fault}", "cat": "fault",
                        "ts": event.time * _US,
                        "args": {"target": event.target,
                                 "trigger": event.trigger,
                                 "detail": event.detail}})
        elif event.kind == "recovery_action":
            out.append({"ph": "i", "pid": DRIVER_PID, "tid": 0, "s": "t",
                        "name": f"recovery:{event.action}", "cat": "fault",
                        "ts": event.time * _US,
                        "args": {"site": event.site, "job_id": event.job_id,
                                 "attempt": event.attempt,
                                 "detail": event.detail}})

    # ---------------------------------------------------------- executors
    task_ends = [e for e in events if e.kind == "task_end"]
    ring_hops = [e for e in events if e.kind == "ring_hop"]
    imm_merges = [e for e in events if e.kind == "imm_merge"]
    executor_ids = sorted(
        {e.executor_id for e in task_ends}
        | {e.executor_id for e in ring_hops}
        | {e.executor_id for e in imm_merges})
    # slice coordinates, for the critical-path flow arrows below
    task_coords: Dict[Tuple[int, int, int, int], Tuple[int, int]] = {}
    hop_coords: Dict[Tuple[int, str, int, float], Tuple[int, int]] = {}
    for executor_id in executor_ids:
        pid = EXECUTOR_PID_BASE + executor_id
        host = next((e.host for e in task_ends
                     if e.executor_id == executor_id), "")
        label = (f"executor {executor_id} ({host})" if host
                 else f"executor {executor_id}")
        out += _meta(pid, label, sort_index=EXECUTOR_PID_BASE + executor_id)

        mine = [(e.began, e.time, e) for e in task_ends
                if e.executor_id == executor_id]
        core_lanes = 0
        for lane, e in _pack_lanes(mine):
            core_lanes = max(core_lanes, lane + 1)
            task_coords[(e.stage_id, e.stage_attempt, e.partition,
                         e.attempt)] = (pid, lane)
            out.append(_span(
                pid, lane, f"s{e.stage_id}.p{e.partition}", e.began,
                e.time, "task",
                {"status": e.status, "locality": e.metrics.locality,
                 "compute": e.metrics.compute_time,
                 "fetch_wait": e.metrics.fetch_wait,
                 "result_bytes": e.metrics.result_bytes}))
        for lane in range(core_lanes):
            out += _meta(pid, f"core {lane}", tid=lane, sort_index=lane)

        channels = sorted({e.channel for e in ring_hops
                           if e.executor_id == executor_id})
        for offset, channel in enumerate(channels):
            tid = 100 + offset
            out += _meta(pid, f"ring {channel}", tid=tid,
                         sort_index=tid)
            for e in ring_hops:
                if e.executor_id == executor_id and e.channel == channel:
                    hop_coords[(e.executor_id, e.channel, e.hop,
                                e.began)] = (pid, tid)
                    out.append(_span(
                        pid, tid, f"hop {e.hop}", e.began, e.time, "ring",
                        {"rank": e.rank, "send_bytes": e.send_bytes,
                         "recv_bytes": e.recv_bytes,
                         "merge_time": e.merge_time}))
        merges = [e for e in imm_merges if e.executor_id == executor_id]
        if merges:
            out += _meta(pid, "imm", tid=200, sort_index=200)
            for e in merges:
                out.append(_span(
                    pid, 200, f"merge {e.merge_index}",
                    e.time - e.merge_time - e.lock_wait, e.time, "imm",
                    {"job_id": e.job_id, "stage_id": e.stage_id,
                     "nbytes": e.nbytes, "lock_wait": e.lock_wait}))

    # ------------------------------------------------ critical-path flows
    # Flow arrows chain each job slice through its stages' critical
    # tasks, and each collective slice to its slowest hop, so "what did
    # the makespan wait on" reads straight off the Perfetto timeline.
    report = attribute_critical_path(events)
    flow_id = 1

    def _flow(ph: str, fid: int, pid: int, tid: int, ts: float,
              name: str) -> Dict[str, Any]:
        rec = {"ph": ph, "id": fid, "pid": pid, "tid": tid,
               "ts": ts * _US, "name": name, "cat": "critical_path"}
        if ph == "f":
            rec["bp"] = "e"
        return rec

    for job in report.jobs:
        stops = [(DRIVER_PID, 0, job.began)]
        for ct in job.critical_tasks:
            coords = task_coords.get((ct.stage_id, ct.stage_attempt,
                                      ct.partition, ct.attempt))
            if coords is not None:
                stops.append((coords[0], coords[1], ct.began))
        if len(stops) < 2:
            continue
        name = f"critical path job {job.job_id}"
        for index, (pid, tid, ts) in enumerate(stops):
            ph = ("s" if index == 0
                  else "f" if index == len(stops) - 1 else "t")
            out.append(_flow(ph, flow_id, pid, tid, ts, name))
        flow_id += 1
    if collective_events:
        for coll in report.collectives:
            hop = coll.slowest_hop
            if hop is None:
                continue
            coords = hop_coords.get((hop.executor_id, hop.channel,
                                     hop.hop, hop.began))
            if coords is None:
                continue
            name = f"slowest hop collective {coll.collective_id}"
            out.append(_flow("s", flow_id, DRIVER_PID, collective_tid,
                             coll.began, name))
            out.append(_flow("f", flow_id, coords[0], coords[1],
                             hop.began, name))
            flow_id += 1

    # ---------------------------------------------------------------- NIC
    nic_samples = [e for e in events if e.kind == "nic_sample"]
    if nic_samples:
        out += _meta(NIC_PID, "NIC", sort_index=1)
        hosts = sorted({(e.node_id, e.hostname, e.is_driver)
                        for e in nic_samples})
        tids = {node_id: tid for tid, (node_id, _h, _d) in enumerate(hosts)}
        for tid, (node_id, hostname, is_driver) in enumerate(hosts):
            label = f"{hostname} (driver)" if is_driver else hostname
            out += _meta(NIC_PID, label, tid=tid, sort_index=tid)
        for e in nic_samples:
            out.append({"ph": "C", "pid": NIC_PID,
                        "tid": tids[e.node_id],
                        "name": f"{e.hostname}.nic", "ts": e.time * _US,
                        "args": {"in": e.in_utilization,
                                 "out": e.out_utilization}})

    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs", "time_unit": "virtual"}}


def write_chrome_trace(events: Iterable[TraceEvent],
                       target: Union[str, Path]) -> int:
    """Write a Chrome trace JSON file; returns the trace-event count."""
    trace = chrome_trace(events)
    Path(target).write_text(json.dumps(trace), encoding="utf-8")
    return len(trace["traceEvents"])
