"""The typed event vocabulary of the observability layer.

Every event is a frozen dataclass with a ``time`` field (virtual seconds)
and a class-level ``kind`` discriminator, serializable to one flat JSON
object via :meth:`TraceEvent.to_record` and back via
:func:`event_from_record`. Span-like events (tasks, ring hops, phases)
carry their *start* in a ``began`` field and stamp ``time`` at the end, so
a JSON-lines log is naturally ordered by completion time.

The vocabulary mirrors Spark's listener events where an analogue exists
(``SparkListenerJobStart``/``TaskEnd``/...) and extends below task
granularity where the paper's analysis needs it: per-message transport
events, per-hop ring spans, and in-memory-merge events.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional, Type

__all__ = [
    "TraceEvent",
    "JobStart",
    "JobEnd",
    "StageSubmitted",
    "StageCompleted",
    "TaskStart",
    "TaskEnd",
    "TaskMetrics",
    "BlockEvent",
    "MessageSent",
    "MessageDelivered",
    "RingHop",
    "ChunkStream",
    "ResidualNorm",
    "ImmMerge",
    "SegmentRepresentation",
    "PhaseSpan",
    "NicSample",
    "FaultInjected",
    "RecoveryAction",
    "CollectiveDowngraded",
    "ResidualLost",
    "SpeculativeAttempt",
    "ExecutorHealth",
    "CollectiveCostEstimate",
    "CollectiveChosen",
    "CollectiveCompleted",
    "ServiceJobSubmitted",
    "ServiceJobFinished",
    "PoolSample",
    "EVENT_TYPES",
    "event_from_record",
    "channel_str",
]


def channel_str(channel: Any) -> str:
    """Normalize an arbitrary channel/tag value to a stable string key."""
    if isinstance(channel, str):
        return channel
    if isinstance(channel, (tuple, list)):
        return "/".join(channel_str(part) for part in channel)
    return str(channel)


@dataclass(frozen=True)
class TraceEvent:
    """Base class: one observed occurrence at one virtual time.

    ``span_id`` / ``parent_span_id`` are the causal-tracing hooks: every
    event emitted by a traced run carries the span it belongs to and the
    span that caused it (job -> stage -> task -> collective -> hop/merge).
    Both default to -1 ("untraced") and are omitted from serialized
    records in that case, so logs written without a tracer are unchanged.
    """

    kind: ClassVar[str] = "event"

    time: float
    span_id: int = field(default=-1, kw_only=True)
    parent_span_id: int = field(default=-1, kw_only=True)

    def to_record(self) -> Dict[str, Any]:
        """A flat JSON-ready dict with an ``event`` discriminator.

        Copies ``__dict__`` directly rather than ``dataclasses.asdict``
        (whose recursive deep-copy dominates event-log write cost);
        subclasses with nested dataclass fields override this.
        """
        record = dict(self.__dict__)
        record["event"] = self.kind
        if record["span_id"] < 0:
            del record["span_id"]
            if record["parent_span_id"] < 0:
                del record["parent_span_id"]
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TraceEvent":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})

    @classmethod
    def fast(cls, **values: Any) -> "TraceEvent":
        """Construct without the generated ``__init__``.

        A frozen dataclass ``__init__`` routes every field through
        ``object.__setattr__``, which is ~3x the cost of filling
        ``__dict__`` directly — measurable on the per-message/per-hop
        emit paths that dominate traced runs. This builds an identical
        instance (defaults applied, ``==``/``to_record`` equal) by
        writing the instance dict in one go. No field validation is
        performed; hot emitters pass every non-default field.
        """
        event = object.__new__(cls)
        defaults = cls.__dict__.get("_fast_defaults")
        if defaults is None:
            defaults = {}
            factories = {}
            for f in fields(cls):
                if f.default is not MISSING:
                    defaults[f.name] = f.default
                elif f.default_factory is not MISSING:
                    factories[f.name] = f.default_factory
            cls._fast_defaults = defaults
            cls._fast_factories = factories
        factories = cls._fast_factories
        if factories:
            state = dict(defaults)
            for name, factory in factories.items():
                if name not in values:
                    state[name] = factory()
            state.update(values)
        else:
            state = {**defaults, **values}
        object.__setattr__(event, "__dict__", state)
        return event


# ------------------------------------------------------------------- jobs
@dataclass(frozen=True)
class JobStart(TraceEvent):
    """A driver job entered the scheduler."""

    kind: ClassVar[str] = "job_start"

    job_id: int
    job_kind: str  # "result" | "reduced_result"
    rdd_name: str
    num_partitions: int


@dataclass(frozen=True)
class JobEnd(TraceEvent):
    """A driver job finished (successfully or not)."""

    kind: ClassVar[str] = "job_end"

    job_id: int
    job_kind: str
    succeeded: bool


# ------------------------------------------------------------------ stages
@dataclass(frozen=True)
class StageSubmitted(TraceEvent):
    kind: ClassVar[str] = "stage_submitted"

    stage_id: int
    attempt: int
    stage_kind: str  # "shuffle_map" | "result" | "reduced_result"
    rdd_name: str
    num_tasks: int
    job_id: int


@dataclass(frozen=True)
class StageCompleted(TraceEvent):
    kind: ClassVar[str] = "stage_completed"

    stage_id: int
    attempt: int
    stage_kind: str
    rdd_name: str
    num_tasks: int
    job_id: int
    began: float


# ------------------------------------------------------------------- tasks
@dataclass(frozen=True)
class TaskMetrics:
    """Per-attempt timings, Spark's ``TaskMetrics`` at this engine's grain.

    All times are virtual seconds. ``slot_wait`` is the queueing delay for
    an executor core; ``fetch_wait`` is the end-to-end shuffle-fetch window
    (network included) of which ``deserialize_time`` is the CPU share.
    """

    slot_wait: float = 0.0
    fetch_wait: float = 0.0
    deserialize_time: float = 0.0
    compute_time: float = 0.0
    serialize_time: float = 0.0
    #: wall of the task's output step minus ``serialize_time``: shipping a
    #: result/map-status to the driver, or the IMM lock+merge window.
    #: A task's ``duration`` (which starts after the slot was acquired, so
    #: excludes ``slot_wait``) decomposes exactly into launch overhead +
    #: ``fetch_wait`` + ``compute_time`` + ``serialize_time`` + this.
    output_wait: float = 0.0
    result_bytes: float = 0.0
    locality: str = "ANY"


@dataclass(frozen=True)
class TaskStart(TraceEvent):
    """A task attempt acquired a core and began running."""

    kind: ClassVar[str] = "task_start"

    stage_id: int
    stage_attempt: int
    partition: int
    attempt: int
    executor_id: int
    host: str


@dataclass(frozen=True)
class TaskEnd(TraceEvent):
    """A task attempt finished; carries its metrics and outcome."""

    kind: ClassVar[str] = "task_end"

    stage_id: int
    stage_attempt: int
    partition: int
    attempt: int
    executor_id: int
    host: str
    began: float
    status: str  # "ok" | "failed" | "killed" | "fetch_failed"
    metrics: TaskMetrics = field(default_factory=TaskMetrics)

    @property
    def duration(self) -> float:
        return self.time - self.began

    def to_record(self) -> Dict[str, Any]:
        record = dict(self.__dict__)
        record["event"] = self.kind
        record["metrics"] = dict(self.metrics.__dict__)
        if record["span_id"] < 0:
            del record["span_id"]
            if record["parent_span_id"] < 0:
                del record["parent_span_id"]
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TaskEnd":
        record = dict(record)
        metrics = record.get("metrics")
        if isinstance(metrics, dict):
            record["metrics"] = TaskMetrics(**metrics)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})


# ------------------------------------------------------------------ blocks
@dataclass(frozen=True)
class BlockEvent(TraceEvent):
    """A block-store operation on one executor."""

    kind: ClassVar[str] = "block"

    executor_id: int
    op: str  # "put" | "fetch" | "evict"
    rdd_id: int
    partition: int
    nbytes: float


# --------------------------------------------------------------- messaging
@dataclass(frozen=True)
class MessageSent(TraceEvent):
    """A fabric message left its sender (before transfer)."""

    kind: ClassVar[str] = "message_sent"

    transport: str
    src: int
    dst: int
    channel: str
    hop: Optional[int]
    nbytes: float


@dataclass(frozen=True)
class MessageDelivered(TraceEvent):
    """A fabric message was consumed by ``recv`` at its destination.

    ``queue_wait`` is the mailbox dwell (arrival → recv); ``flight_time``
    the wire time (send → arrival). ``time - queue_wait - flight_time``
    recovers the send instant.
    """

    kind: ClassVar[str] = "message_delivered"

    transport: str
    src: int
    dst: int
    channel: str
    hop: Optional[int]
    nbytes: float
    queue_wait: float
    flight_time: float


@dataclass(frozen=True)
class RingHop(TraceEvent):
    """One iteration of one rank's ring channel (paper Figure 11).

    The span runs from the hop's send-off to the point where both the
    incoming segment is merged and the outgoing send has fully left the
    channel; ``merge_time`` is the CPU share of that window.
    """

    kind: ClassVar[str] = "ring_hop"

    rank: int
    executor_id: int
    channel: str
    hop: int
    send_bytes: float
    recv_bytes: float
    began: float
    merge_time: float
    #: wire representation of the outgoing / incoming segment ("sparse"
    #: when the SparCML-style switch picked the (index, value) format)
    send_repr: str = "dense"
    recv_repr: str = "dense"
    #: dense-equivalent bytes of the outgoing segment (0 when unrecorded);
    #: ``send_dense_bytes - send_bytes`` is the hop's bytes-on-wire saving
    send_dense_bytes: float = 0.0


@dataclass(frozen=True)
class ChunkStream(TraceEvent):
    """One rank's chunked segment stream on one pipelined-ring channel.

    The span runs from the moment the rank's aggregator became available
    (its last seqOp partial merged — ``began``) to the completion of every
    chunk column of the channel; ``num_chunks`` columns of at most
    ``chunk_bytes`` simulated bytes each ran as concurrent sub-rings, so
    wire and merge time inside the window overlap instead of adding.
    """

    kind: ClassVar[str] = "chunk_stream"

    rank: int
    executor_id: int
    channel: str
    num_chunks: int
    chunk_bytes: float
    value_bytes: float
    began: float


@dataclass(frozen=True)
class ResidualNorm(TraceEvent):
    """Top-k compression gauge for one executor's outgoing aggregator.

    Emitted by the opt-in approximate tier each time a holder is
    sparsified: ``k`` of ``payload_size`` coordinates were sent,
    ``sent_norm`` / ``residual_norm`` are the L2 norms of the transmitted
    part and of the error-feedback remainder kept on the executor
    (0 when ``error_feedback`` is off — the remainder is dropped).
    """

    kind: ClassVar[str] = "residual_norm"

    executor_id: int
    job_id: int
    k: int
    payload_size: int
    sent_norm: float
    residual_norm: float
    error_feedback: bool = True


# --------------------------------------------------------------------- imm
@dataclass(frozen=True)
class ImmMerge(TraceEvent):
    """One in-memory merge into an executor's shared object (paper §3.2)."""

    kind: ClassVar[str] = "imm_merge"

    executor_id: int
    job_id: int
    stage_id: int
    merge_index: int
    nbytes: float
    lock_wait: float
    merge_time: float
    #: representation of the merged value after this merge
    representation: str = "dense"
    #: nnz/size density of the merged value (1.0 once dense)
    density: float = 1.0


@dataclass(frozen=True)
class SegmentRepresentation(TraceEvent):
    """A reduction operand switched representation (sparse -> dense).

    Emitted by the adaptive aggregation path when a merge result crosses
    the density threshold mid-reduction — ``site`` is ``"ring"`` for a
    mid-ring switch (channel/hop identify where) and ``"imm"`` for an
    executor-local merge. ``wire_bytes`` / ``dense_bytes`` are the
    operand's two candidate wire sizes at the switch point.
    """

    kind: ClassVar[str] = "segment_repr"

    site: str  # "ring" | "imm"
    executor_id: int
    rank: int
    channel: str
    hop: int
    from_repr: str
    to_repr: str
    nnz: int
    length: int
    density: float
    wire_bytes: float
    dense_bytes: float


# ------------------------------------------------------------------ phases
@dataclass(frozen=True)
class PhaseSpan(TraceEvent):
    """A stopwatch span closed (``agg.compute``, ``ml.driver``, ...).

    Ground truth for the live time decompositions: the CLI's Figure-2
    reconstruction sums these and must agree with the in-process
    :class:`~repro.sim.Stopwatch` exactly.
    """

    kind: ClassVar[str] = "phase"

    key: str
    seconds: float

    @property
    def began(self) -> float:
        return self.time - self.seconds


# ------------------------------------------------------------------ faults
@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The fault controller fired one planned fault.

    ``fault`` names the fault class (``executor_crash``, ``message_drop``,
    ``message_delay``, ``straggler``, ``nic_degradation``,
    ``nic_restored``, ``straggler_end``); ``trigger`` records what armed
    it (``at_time``, ``stage_boundary``, ``ring_hop``, ``window``,
    ``link``). ``src``/``dst`` are ring ranks for link faults, -1
    otherwise.
    """

    kind: ClassVar[str] = "fault_injected"

    fault: str
    target: str
    trigger: str = ""
    executor_id: int = -1
    src: int = -1
    dst: int = -1
    channel: str = ""
    detail: str = ""


@dataclass(frozen=True)
class RecoveryAction(TraceEvent):
    """One step the engine took to survive an injected (or real) fault.

    ``action`` is one of ``ring_abort`` (a collective was torn down after
    failure detection), ``partial_recompute`` (lost partitions re-ran
    through lineage), ``ring_rebuild`` (a new ring over the survivors),
    ``tree_fallback`` (ring attempts exhausted, switched to
    treeAggregate), or ``recovered`` (the aggregation completed;
    ``seconds`` carries the virtual-time cost from first detection to
    completion). ``site`` is ``"ring"`` or ``"tree"``.
    """

    kind: ClassVar[str] = "recovery_action"

    action: str
    site: str = "ring"
    job_id: int = -1
    executor_id: int = -1
    attempt: int = 0
    ranks: int = 0
    seconds: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class CollectiveDowngraded(TraceEvent):
    """A requested fast collective fell back to a slower path.

    Emitted whenever the engine cannot (or can no longer) run the
    collective the spec or tuner asked for — today that means the
    overlapped ``pipelined_ring`` path handing the aggregation to the
    phased fault-tolerant loop. ``reason`` explains why
    (``placement_deviation`` — the IMM stage landed tasks off the
    planned executors; ``streamed_abort`` — a fault tore down the
    overlapped attempt mid-stream). The downgrade preserves
    correctness; this event is the visibility the tuner report and
    users previously lacked.
    """

    kind: ClassVar[str] = "collective_downgraded"

    requested: str
    actual: str
    reason: str
    job_id: int = -1
    detail: str = ""


@dataclass(frozen=True)
class ResidualLost(TraceEvent):
    """An executor died holding top-k error-feedback residuals.

    The approximate tier keeps each executor's unsent remainder in
    ``executor.residuals`` so later rounds can re-inject it; a crash
    drops that state silently. This gauge records what was lost:
    ``num_residuals`` buffered arrays with total L2 norm
    ``residual_norm`` (the accumulated error-feedback mass that will
    never be transmitted).
    """

    kind: ClassVar[str] = "residual_lost"

    executor_id: int
    num_residuals: int
    residual_norm: float
    reason: str = ""


@dataclass(frozen=True)
class SpeculativeAttempt(TraceEvent):
    """One speculative-execution decision on a straggling task.

    ``action`` is ``launched`` (the monitor cloned the attempt onto a
    backup executor), ``speculative_won`` (the backup finished first
    and committed; the original was cancelled), ``original_won`` (the
    original committed first; the backup lost the commit race or was
    cancelled) or ``backup_failed`` (the backup attempt itself
    errored). ``executor_id`` is the original attempt's executor,
    ``backup_executor_id`` the clone's.
    """

    kind: ClassVar[str] = "speculative_attempt"

    action: str
    stage_id: int
    partition: int
    executor_id: int
    backup_executor_id: int = -1
    attempt: int = 0
    threshold: float = 0.0
    elapsed: float = 0.0


@dataclass(frozen=True)
class ExecutorHealth(TraceEvent):
    """An executor's health score changed state.

    ``status`` is ``failure``, ``straggle``, ``quarantined``,
    ``probation`` (the quarantine window expired; the executor may be
    tried again) or ``cleared`` (a probation success reset the score).
    ``score`` is the registry's current weighted strike count,
    ``until`` the quarantine expiry time (0 when not quarantined).
    """

    kind: ClassVar[str] = "executor_health"

    executor_id: int
    status: str
    score: float
    strikes: int = 0
    until: float = 0.0


# ------------------------------------------------------------- collectives
@dataclass(frozen=True)
class CollectiveCostEstimate(TraceEvent):
    """The tuner's predicted cost for one candidate configuration.

    One per candidate per tuned aggregation: ``algorithm`` and
    ``parallelism`` identify the candidate, ``predicted`` its modelled
    reduce+gather seconds (calibration correction applied), ``chosen``
    whether the tuner picked it. ``collective_id`` groups the candidates
    of one decision with its :class:`CollectiveChosen` /
    :class:`CollectiveCompleted` pair.
    """

    kind: ClassVar[str] = "collective_cost"

    collective_id: int
    algorithm: str
    parallelism: int
    predicted: float
    chosen: bool = False


@dataclass(frozen=True)
class CollectiveChosen(TraceEvent):
    """One split-aggregation's collective configuration was decided.

    Emitted for every aggregation that runs through the strategy
    dispatch — ``source`` is ``"auto"`` when the cost-model tuner chose,
    ``"spec"`` when the spec pinned the algorithm. ``segment_bytes`` is
    the mean per-segment wire size the decision saw; ``ranks`` / ``hosts``
    describe the placement.
    """

    kind: ClassVar[str] = "collective_chosen"

    collective_id: int
    algorithm: str
    parallelism: int
    source: str  # "auto" | "spec"
    ranks: int
    hosts: int
    value_bytes: float
    segment_bytes: float
    predicted: float = 0.0


@dataclass(frozen=True)
class CollectiveCompleted(TraceEvent):
    """The reduce+gather window of one dispatched collective closed.

    ``seconds`` is the measured virtual-time span; with ``predicted`` from
    the matching :class:`CollectiveChosen` this is the model's
    prediction-vs-measurement residual, which both the online calibrator
    and the CLI tuner report consume.
    """

    kind: ClassVar[str] = "collective_completed"

    collective_id: int
    algorithm: str
    parallelism: int
    began: float
    seconds: float
    predicted: float = 0.0


# ---------------------------------------------------------------- service
@dataclass(frozen=True)
class ServiceJobSubmitted(TraceEvent):
    """A tenant job entered the job service (see :mod:`repro.service`)."""

    kind: ClassVar[str] = "service_job_submitted"

    service_job_id: int
    tenant: str
    pool: str
    workload: str
    queued: bool = False


@dataclass(frozen=True)
class ServiceJobFinished(TraceEvent):
    """A tenant job left the job service (any terminal status).

    ``latency`` is submission-to-completion in virtual seconds — the
    quantity the service benchmark reports p50/p99 over.
    """

    kind: ClassVar[str] = "service_job_finished"

    service_job_id: int
    tenant: str
    pool: str
    workload: str
    status: str  # "succeeded" | "failed" | "cancelled"
    submitted: float
    latency: float


@dataclass(frozen=True)
class PoolSample(TraceEvent):
    """One FAIR-arbiter accounting sample for one pool."""

    kind: ClassVar[str] = "pool_sample"

    pool: str
    weight: float
    running: int
    task_seconds: float
    queued_tickets: int


# --------------------------------------------------------------- sampling
@dataclass(frozen=True)
class NicSample(TraceEvent):
    """One NIC utilization sample from a monitor process."""

    kind: ClassVar[str] = "nic_sample"

    node_id: int
    hostname: str
    is_driver: bool
    in_rate: float
    out_rate: float
    in_utilization: float
    out_utilization: float


#: discriminator -> event class, for deserialization
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        JobStart, JobEnd, StageSubmitted, StageCompleted, TaskStart,
        TaskEnd, BlockEvent, MessageSent, MessageDelivered, RingHop,
        ChunkStream, ResidualNorm, ImmMerge, SegmentRepresentation,
        PhaseSpan, NicSample, FaultInjected, RecoveryAction,
        CollectiveDowngraded, ResidualLost, SpeculativeAttempt,
        ExecutorHealth, CollectiveCostEstimate, CollectiveChosen,
        CollectiveCompleted, ServiceJobSubmitted, ServiceJobFinished,
        PoolSample,
    )
}


def event_from_record(record: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its JSON record."""
    try:
        cls = EVENT_TYPES[record["event"]]
    except KeyError:
        raise ValueError(
            f"unknown event kind {record.get('event')!r}") from None
    return cls.from_record(record)
