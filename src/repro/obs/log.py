"""JSON-lines event-log export and import.

The event log is the durable superset of ``bench.history``'s stage log:
one JSON object per event, preceded by a schema header record. It is what
the paper's authors mined (Spark writes the same shape to its history
server), extended below stage granularity.

Schema versioning: the header carries ``{"schema": SCHEMA_NAME,
"version": SCHEMA_VERSION}``; :func:`load_events` rejects logs written by
a newer major schema rather than misreading them. Unknown *event kinds*
in a known schema are skipped with a warning counter, so old readers
survive new emitters. Version history: 1 = the original vocabulary,
2 = optional ``span_id``/``parent_span_id`` causal-tracing fields
(additive — version-1 readers that ignore unknown fields still work).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional, Sequence, Union

from .bus import EventBus
from .events import TraceEvent, event_from_record

__all__ = ["SCHEMA_NAME", "SCHEMA_VERSION", "EventLogWriter",
           "dump_events", "load_events"]

SCHEMA_NAME = "sparker.events"
SCHEMA_VERSION = 2

#: shared encoder — json.dumps(..., sort_keys=True) builds a fresh
#: JSONEncoder per call, which dominates streaming-write cost
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


def _header() -> str:
    return json.dumps({"schema": SCHEMA_NAME, "version": SCHEMA_VERSION})


class EventLogWriter:
    """A bus listener streaming every event to a JSON-lines file.

    Events are *buffered as objects* on the hot emit path and only
    serialized when ``buffer_events`` of them have accumulated (or on
    :meth:`flush`/:meth:`close`): one emission costs a list append, and
    JSON encoding is paid in batches with a single file write each —
    which is what keeps event-log overhead near the in-memory recorder's.
    The file therefore trails the simulation by up to one buffer; call
    :meth:`flush` for an up-to-date file mid-run. Events are frozen
    dataclasses, so late serialization sees exactly the emitted values.

    Usage (explicit)::

        writer = EventLogWriter("events.jsonl")
        sc.event_bus.subscribe(writer)
        ...
        sc.event_bus.unsubscribe(writer)
        writer.close()

    or scoped::

        with EventLogWriter("events.jsonl").attached_to(sc.event_bus):
            ...
    """

    def __init__(self, target: Union[str, Path], buffer_events: int = 8192):
        if buffer_events < 1:
            raise ValueError(
                f"buffer_events must be >= 1, got {buffer_events}")
        self.path = Path(target)
        self._handle: Optional[IO[str]] = self.path.open("w",
                                                         encoding="utf-8")
        self._handle.write(_header() + "\n")
        #: events accepted (buffered or flushed)
        self.written = 0
        self._buffer: List[TraceEvent] = []
        self._buffer_events = buffer_events
        self._bus: Optional[EventBus] = None

    def on_event(self, event: TraceEvent) -> None:
        if self._handle is None:
            raise RuntimeError(f"event log {self.path} is closed")
        self._buffer.append(event)
        self.written += 1
        if len(self._buffer) >= self._buffer_events:
            self.flush()

    def flush(self) -> None:
        """Serialize and write every buffered event (one file write)."""
        if self._handle is None or not self._buffer:
            return
        encode = _ENCODER.encode
        self._handle.write(
            "".join([encode(event.to_record()) + "\n"
                     for event in self._buffer]))
        self._buffer.clear()

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    # ----------------------------------------------------------- scoping
    def attached_to(self, bus: EventBus) -> "EventLogWriter":
        """Subscribe to ``bus`` and arm ``with``-scoped detach+close."""
        bus.subscribe(self)
        self._bus = bus
        return self

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *_exc) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle is None else "open"
        return f"<EventLogWriter {str(self.path)!r} {state} n={self.written}>"


def dump_events(events: Sequence[TraceEvent],
                target: Union[str, Path]) -> int:
    """Write an in-memory event list as a JSON-lines log; returns count."""
    path = Path(target)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(_header() + "\n")
        for event in events:
            handle.write(_ENCODER.encode(event.to_record()) + "\n")
    return len(events)


def load_events(source: Union[str, Path]) -> List[TraceEvent]:
    """Read a JSON-lines event log back into typed events.

    Accepts logs with or without the header line (Spark history files have
    none); rejects logs from a newer schema version. Lines that are not
    valid JSON — the torn tail of a log whose writer died mid-line — are
    skipped, so a truncated log still loads its complete prefix;
    well-formed records with *invalid fields* still raise (that is
    corruption, not truncation).
    """
    events: List[TraceEvent] = []
    for lineno, line in enumerate(
            Path(source).read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        if "schema" in record and "event" not in record:
            if record.get("schema") != SCHEMA_NAME:
                raise ValueError(
                    f"{source}: unknown schema {record.get('schema')!r}")
            if int(record.get("version", 0)) > SCHEMA_VERSION:
                raise ValueError(
                    f"{source}: schema version {record['version']} is newer "
                    f"than this reader ({SCHEMA_VERSION})")
            continue
        try:
            events.append(event_from_record(record))
        except ValueError:
            # Unknown event kind from a newer minor emitter: skip.
            continue
        except TypeError as exc:
            raise ValueError(
                f"{source}:{lineno}: malformed event record: {exc}") from None
    return events
