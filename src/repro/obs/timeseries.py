"""Windowed time-series metrics: labeled instruments over virtual time.

:mod:`repro.obs.metrics` answers *how much, overall*; this module
answers *how much, when, and where*. A :class:`TimeSeriesStore` holds
labeled counters, gauges and histograms whose observations land in
fixed-width virtual-time windows (``bucket = floor(time / window)``),
so a run's behaviour can be queried per job, per node, per collective,
and per time slice after the fact:

* :class:`WindowedCounter` — per-window sums (bytes, event counts),
  queried as totals or per-second rates,
* :class:`WindowedGauge` — last-write-wins per window (NIC utilization),
* :class:`WindowedHistogram` — per-window sample lists with *exact*
  p50/p95/p99 quantiles (samples are merged and sorted at query time;
  exactness over approximation, matching the registry's philosophy).

Labels are free-form ``str -> str|int`` pairs. Queries match by label
*subset*: ``store.total("ring.bytes", channel="0")`` sums every series
of that name whose labels include ``channel="0"``, whatever else they
carry. :class:`TimeSeriesListener` feeds a store from the event bus
(or from a replayed log) and is bookkeeping-only: attaching it never
changes simulated timings.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import TraceEvent

__all__ = [
    "LabelSet",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "TimeSeriesStore",
    "TimeSeriesListener",
]

#: canonical label form: sorted (key, value-as-str) pairs
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Windowed:
    """Shared bucket arithmetic for every instrument kind."""

    __slots__ = ("name", "labels", "window")

    def __init__(self, name: str, labels: LabelSet, window: float):
        self.name = name
        self.labels = labels
        self.window = window

    def bucket(self, time: float) -> int:
        return int(math.floor(time / self.window))

    def window_start(self, bucket: int) -> float:
        return bucket * self.window

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def _matches(self, subset: LabelSet) -> bool:
        mine = dict(self.labels)
        return all(mine.get(k) == v for k, v in subset)


class WindowedCounter(_Windowed):
    """Per-window monotone sums."""

    __slots__ = ("buckets",)

    def __init__(self, name: str, labels: LabelSet, window: float):
        super().__init__(name, labels, window)
        self.buckets: Dict[int, float] = {}

    def inc(self, time: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        bucket = self.bucket(time)
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + amount

    @property
    def total(self) -> float:
        return sum(self.buckets.values())


class WindowedGauge(_Windowed):
    """Per-window last-write-wins values."""

    __slots__ = ("buckets", "_stamp")

    def __init__(self, name: str, labels: LabelSet, window: float):
        super().__init__(name, labels, window)
        self.buckets: Dict[int, float] = {}
        self._stamp: Dict[int, float] = {}

    def set(self, time: float, value: float) -> None:
        bucket = self.bucket(time)
        if time >= self._stamp.get(bucket, -math.inf):
            self.buckets[bucket] = value
            self._stamp[bucket] = time

    @property
    def last(self) -> float:
        if not self.buckets:
            return 0.0
        return self.buckets[max(self.buckets)]


class WindowedHistogram(_Windowed):
    """Per-window sample lists with exact quantiles."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self, name: str, labels: LabelSet, window: float):
        super().__init__(name, labels, window)
        self.buckets: Dict[int, List[float]] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, time: float, value: float) -> None:
        self.buckets.setdefault(self.bucket(time), []).append(value)
        self.count += 1
        self.total += value

    def samples(self, t0: Optional[float] = None,
                t1: Optional[float] = None) -> List[float]:
        """All samples whose window overlaps ``[t0, t1]`` (None = open)."""
        out: List[float] = []
        for bucket, values in self.buckets.items():
            start = self.window_start(bucket)
            if t0 is not None and start + self.window <= t0:
                continue
            if t1 is not None and start > t1:
                continue
            out.extend(values)
        return out


class TimeSeriesStore:
    """Labeled windowed instruments plus the query surface over them.

    ``window`` is the bucket width in virtual seconds; every instrument
    created by this store shares it, so buckets from different series
    line up and merge cleanly.
    """

    def __init__(self, window: float = 0.01):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._counters: Dict[Tuple[str, LabelSet], WindowedCounter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], WindowedGauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], WindowedHistogram] = {}

    # ------------------------------------------------------------ create
    def counter(self, name: str, **labels: Any) -> WindowedCounter:
        key = (name, _labelset(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = WindowedCounter(
                name, key[1], self.window)
        return inst

    def gauge(self, name: str, **labels: Any) -> WindowedGauge:
        key = (name, _labelset(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = WindowedGauge(
                name, key[1], self.window)
        return inst

    def histogram(self, name: str, **labels: Any) -> WindowedHistogram:
        key = (name, _labelset(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = WindowedHistogram(
                name, key[1], self.window)
        return inst

    # ------------------------------------------------------------- query
    def counters(self, name: str, **labels: Any) -> List[WindowedCounter]:
        """Every counter series of ``name`` whose labels ⊇ ``labels``."""
        subset = _labelset(labels)
        return [inst for (n, _ls), inst in sorted(self._counters.items())
                if n == name and inst._matches(subset)]

    def gauges(self, name: str, **labels: Any) -> List[WindowedGauge]:
        subset = _labelset(labels)
        return [inst for (n, _ls), inst in sorted(self._gauges.items())
                if n == name and inst._matches(subset)]

    def histograms(self, name: str,
                   **labels: Any) -> List[WindowedHistogram]:
        subset = _labelset(labels)
        return [inst for (n, _ls), inst in sorted(self._histograms.items())
                if n == name and inst._matches(subset)]

    def total(self, name: str, **labels: Any) -> float:
        """Summed counter total across matching series."""
        return sum(inst.total for inst in self.counters(name, **labels))

    def rate(self, name: str, **labels: Any) -> List[Tuple[float, float]]:
        """Merged counter buckets as ``(window_start, per_second)`` rows."""
        merged: Dict[int, float] = {}
        for inst in self.counters(name, **labels):
            for bucket, amount in inst.buckets.items():
                merged[bucket] = merged.get(bucket, 0.0) + amount
        return [(bucket * self.window, amount / self.window)
                for bucket, amount in sorted(merged.items())]

    def quantile(self, name: str, q: float, t0: Optional[float] = None,
                 t1: Optional[float] = None, **labels: Any) -> float:
        """Exact nearest-rank quantile over merged histogram samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        samples: List[float] = []
        for inst in self.histograms(name, **labels):
            samples.extend(inst.samples(t0, t1))
        if not samples:
            return 0.0
        samples.sort()
        rank = min(int(q * len(samples)), len(samples) - 1)
        return samples[rank]

    def percentiles(self, name: str,
                    qs: Sequence[float] = (0.5, 0.95, 0.99),
                    **labels: Any) -> Dict[float, float]:
        """p50/p95/p99 (by default) in one sorted pass."""
        samples: List[float] = []
        for inst in self.histograms(name, **labels):
            samples.extend(inst.samples())
        out: Dict[float, float] = {}
        if not samples:
            return {q: 0.0 for q in qs}
        samples.sort()
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
            rank = min(int(q * len(samples)), len(samples) - 1)
            out[q] = samples[rank]
        return out

    def names(self) -> List[Tuple[str, str]]:
        """Every ``(kind, name)`` with at least one series, sorted."""
        out = {("counter", n) for n, _ls in self._counters}
        out |= {("gauge", n) for n, _ls in self._gauges}
        out |= {("histogram", n) for n, _ls in self._histograms}
        return sorted(out)

    def summary(self) -> str:
        """A plain-text dump: one line per name, series merged."""
        lines: List[str] = []
        for kind, name in self.names():
            if kind == "counter":
                series = self.counters(name)
                windows = {b for inst in series for b in inst.buckets}
                lines.append(
                    f"counter   {name}: total={self.total(name):g} "
                    f"series={len(series)} windows={len(windows)}")
            elif kind == "gauge":
                series = self.gauges(name)
                last = series[-1].last if series else 0.0
                lines.append(f"gauge     {name}: last={last:g} "
                             f"series={len(series)}")
            else:
                series = self.histograms(name)
                count = sum(inst.count for inst in series)
                pct = self.percentiles(name)
                lines.append(
                    f"histogram {name}: n={count} "
                    f"p50={pct[0.5]:.6g} p95={pct[0.95]:.6g} "
                    f"p99={pct[0.99]:.6g} series={len(series)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<TimeSeriesStore window={self.window:g}s "
                f"counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")


class TimeSeriesListener:
    """Feeds a :class:`TimeSeriesStore` from bus (or replayed) events.

    Carries a ``stage_id -> job_id`` map built from ``stage_submitted``
    events so per-task series get a ``job`` label even though
    :class:`~repro.obs.events.TaskEnd` does not name its job.
    """

    def __init__(self, store: Optional[TimeSeriesStore] = None,
                 window: float = 0.01):
        self.store = store if store is not None \
            else TimeSeriesStore(window=window)
        self._stage_job: Dict[int, int] = {}

    def replay(self, events: Iterable[TraceEvent]) -> "TimeSeriesListener":
        """Feed a recorded log through the same mapping."""
        for event in events:
            self.on_event(event)
        return self

    def on_event(self, event: TraceEvent) -> None:
        store = self.store
        kind = event.kind
        t = event.time
        if kind == "stage_submitted":
            self._stage_job[event.stage_id] = event.job_id
        elif kind == "task_end":
            job = self._stage_job.get(event.stage_id, -1)
            store.counter("tasks.finished", status=event.status,
                          job=job).inc(t)
            store.histogram("tasks.duration_seconds", job=job,
                            stage=event.stage_id,
                            executor=event.executor_id).observe(
                                t, event.duration)
            store.counter("tasks.result_bytes", job=job,
                          executor=event.executor_id).inc(
                              t, event.metrics.result_bytes)
        elif kind == "job_start":
            store.counter("jobs.started", kind=event.job_kind).inc(t)
        elif kind == "job_end":
            store.counter("jobs.finished", kind=event.job_kind,
                          succeeded=event.succeeded).inc(t)
        elif kind == "message_sent":
            store.counter("messages.bytes",
                          transport=event.transport).inc(t, event.nbytes)
        elif kind == "message_delivered":
            store.histogram("messages.queue_wait_seconds",
                            transport=event.transport).observe(
                                t, event.queue_wait)
        elif kind == "ring_hop":
            store.counter("ring.bytes", channel=event.channel,
                          executor=event.executor_id).inc(
                              t, event.send_bytes)
            store.histogram("ring.hop_seconds",
                            channel=event.channel).observe(
                                t, event.time - event.began)
        elif kind == "imm_merge":
            store.histogram("imm.merge_seconds",
                            executor=event.executor_id).observe(
                                t, event.merge_time)
            store.histogram("imm.lock_wait_seconds",
                            executor=event.executor_id).observe(
                                t, event.lock_wait)
        elif kind == "nic_sample":
            node = "driver" if event.is_driver else event.hostname
            store.gauge("nic.utilization", node=node,
                        direction="in").set(t, event.in_utilization)
            store.gauge("nic.utilization", node=node,
                        direction="out").set(t, event.out_utilization)
        elif kind == "collective_completed":
            store.histogram("collective.seconds",
                            algorithm=event.algorithm,
                            collective=event.collective_id).observe(
                                t, event.seconds)
        elif kind == "fault_injected":
            store.counter("faults.injected", fault=event.fault).inc(t)
        elif kind == "recovery_action":
            store.counter("recovery.actions", action=event.action).inc(t)
            if event.action == "recovered":
                store.histogram("recovery.seconds",
                                site=event.site).observe(t, event.seconds)
