"""Causal span allocation for the observability layer.

A *span* is just a deterministic integer id stamped onto emitted events
(``TraceEvent.span_id`` / ``parent_span_id``); the span "tree" is never
materialized at runtime — analyzers rebuild it from the log. Ids are
allocated from a per-bus counter that only advances while the bus is
active, in simulation order, so two identically-seeded traced runs
produce byte-identical logs and an untraced run allocates nothing.

Parent/child rules (documented in DESIGN.md §12):

* job -> stage -> task form the scheduler chain; stages parent to their
  job, tasks to their stage attempt.
* collective decisions (cost estimates / chosen / completed) share one
  collective span; ring & hypercube hops and gather messages parent to
  it; fabric messages inherit the fabric's ``parent_span``.
* IMM merges parent to the merging task's span.
* fault injections open their own root spans; recovery actions parent to
  a *recovery epoch* span opened at first failure detection, and
  recompute jobs launched during recovery parent to that epoch too (via
  the driver parent stack).

The driver parent stack (:meth:`Tracer.push_parent`) is per-submitter:
each thread that runs driver code (the main thread for the classic
blocking API, one worker thread per job under :mod:`repro.service`) gets
its own stack, so concurrent submissions cannot interleave parents.
Driver entry points capture ``current_parent`` on the submitting thread
and pass it explicitly into scheduler process bodies, which execute on
the reactor thread.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

__all__ = ["Tracer", "NO_SPAN"]

#: sentinel for "no span" — events keep their default ids and serialize
#: without span fields.
NO_SPAN = -1


class Tracer:
    """Deterministic span-id allocator with scheduler-keyed registries.

    Owned by an :class:`~repro.obs.EventBus` (``bus.tracer``) so every
    instrumented component that already holds the bus can reach it
    without extra plumbing. All allocation methods return :data:`NO_SPAN`
    while the bus is inactive; the zero-perturbation contract therefore
    extends to span ids — tracing allocates no state unless someone is
    listening.
    """

    def __init__(self, bus) -> None:
        self._bus = bus
        self._next_id = 0
        self._jobs: Dict[int, int] = {}
        self._stages: Dict[Tuple[int, int], int] = {}
        self._collectives: Dict[int, int] = {}
        self._parents = threading.local()

    # ----------------------------------------------------------- allocation
    @property
    def active(self) -> bool:
        return self._bus.active

    def new_span(self, parent: int = NO_SPAN) -> int:
        """Allocate a fresh span id (parent is recorded by the caller on
        the emitted event, not here)."""
        if not self._bus.active:
            return NO_SPAN
        self._next_id += 1
        return self._next_id

    # -------------------------------------------------- driver parent stack
    def _stack(self) -> list:
        stack = getattr(self._parents, "stack", None)
        if stack is None:
            stack = self._parents.stack = []
        return stack

    @property
    def current_parent(self) -> int:
        stack = self._stack()
        return stack[-1] if stack else NO_SPAN

    def push_parent(self, span: int) -> None:
        """Make ``span`` the default parent for driver-side openings
        (jobs, collectives) on this thread until :meth:`pop_parent`."""
        self._stack().append(span)

    def pop_parent(self) -> int:
        stack = self._stack()
        return stack.pop() if stack else NO_SPAN

    # ---------------------------------------------------------------- jobs
    def open_job(self, job_id: int) -> int:
        span = self.new_span()
        if span != NO_SPAN:
            self._jobs[job_id] = span
        return span

    def job_span(self, job_id: int) -> int:
        return self._jobs.get(job_id, NO_SPAN)

    def close_job(self, job_id: int) -> int:
        return self._jobs.pop(job_id, NO_SPAN)

    # -------------------------------------------------------------- stages
    def open_stage(self, stage_id: int, attempt: int, job_id: int) -> int:
        span = self.new_span()
        if span != NO_SPAN:
            self._stages[(stage_id, attempt)] = span
        return span

    def stage_span(self, stage_id: int, attempt: int) -> int:
        return self._stages.get((stage_id, attempt), NO_SPAN)

    def close_stage(self, stage_id: int, attempt: int) -> int:
        return self._stages.pop((stage_id, attempt), NO_SPAN)

    # --------------------------------------------------------- collectives
    def open_collective(self, collective_id: int) -> int:
        span = self.new_span()
        if span != NO_SPAN:
            self._collectives[collective_id] = span
        return span

    def collective_span(self, collective_id: int) -> int:
        return self._collectives.get(collective_id, NO_SPAN)

    def close_collective(self, collective_id: int) -> int:
        return self._collectives.pop(collective_id, NO_SPAN)
