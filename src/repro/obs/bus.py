"""The engine-wide event bus (Spark ``ListenerBus`` analogue).

A :class:`EventBus` fans typed :class:`~repro.obs.events.TraceEvent`
objects out to attached listeners, synchronously, in subscription order.
Listeners are plain callables or objects with an ``on_event(event)``
method. Emission never creates simulation events — attaching a listener
can therefore never perturb virtual time; with no listener attached,
:meth:`EventBus.emit` is a single attribute check.

Instrumentation call sites should guard expensive field computation with
:attr:`EventBus.active` so a detached bus costs ~nothing in wall-clock
time either.
"""

from __future__ import annotations

from typing import Any, Callable, List, Union

from .events import TraceEvent
from .tracing import Tracer

__all__ = ["EventBus", "Listener", "RecordingListener"]

#: anything the bus can deliver to
Listener = Union[Callable[[TraceEvent], Any], "object"]


def _delivery(listener: Listener) -> Callable[[TraceEvent], Any]:
    on_event = getattr(listener, "on_event", None)
    if callable(on_event):
        return on_event
    if callable(listener):
        return listener
    raise TypeError(
        f"listener must be callable or have on_event(), got {listener!r}")


class EventBus:
    """Synchronous fan-out of trace events to subscribed listeners."""

    def __init__(self) -> None:
        self._listeners: List[Listener] = []
        self._deliveries: List[Callable[[TraceEvent], Any]] = []
        #: events emitted while at least one listener was attached
        self.emitted = 0
        #: causal span allocator; only advances while the bus is active
        self.tracer = Tracer(self)

    @property
    def active(self) -> bool:
        """True when at least one listener is attached.

        Instrumentation uses this as its fast-path guard: when False, no
        event objects are constructed at all.
        """
        return bool(self._deliveries)

    def subscribe(self, listener: Listener) -> Listener:
        """Attach ``listener``; returns it (for unsubscribe)."""
        delivery = _delivery(listener)
        self._listeners.append(listener)
        self._deliveries.append(delivery)
        return listener

    def unsubscribe(self, listener: Listener) -> None:
        """Detach a previously subscribed listener."""
        try:
            index = self._listeners.index(listener)
        except ValueError:
            raise ValueError(f"{listener!r} is not subscribed") from None
        del self._listeners[index]
        del self._deliveries[index]

    def close(self) -> None:
        """Detach every listener (idempotent).

        Context teardown calls this so a job that raised mid-stage (or a
        caller that forgot to unsubscribe) cannot leave listeners
        attached — on a shared bus each leaked listener keeps receiving
        (and retaining) every later event.
        """
        self._listeners.clear()
        self._deliveries.clear()

    def emit(self, event: TraceEvent) -> None:
        """Deliver ``event`` to every listener, in subscription order."""
        if not self._deliveries:
            return
        self.emitted += 1
        for delivery in self._deliveries:
            delivery(event)

    def __len__(self) -> int:
        return len(self._listeners)

    def __repr__(self) -> str:
        return f"<EventBus listeners={len(self._listeners)} emitted={self.emitted}>"


class RecordingListener:
    """Collects every event in memory (tests, in-process analysis).

    Usage::

        rec = RecordingListener()
        sc.event_bus.subscribe(rec)
        ...
        analysis = analyze_events(rec.events)
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events with the given ``kind`` discriminator."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<RecordingListener events={len(self.events)}>"
