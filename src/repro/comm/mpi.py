"""Reference MPI-style collectives (the paper's comparison baseline).

The paper measures MPICH 3.2 as "closest to optimal network performance"
(Figures 12/13/15) and notes that for Figure 15 "this MPI implementation
chooses to use a sub-optimal algorithm, leading to worse scalability even
with MPI's advantage in point-to-point communication bandwidth". This
module reproduces that baseline:

* :class:`MpiCommunicator` with ``reduce_scatter`` in three algorithms —
  **ring** (Patarasuk & Yuan), **recursive halving** (MPICH's choice for
  short commutative reductions) and **pairwise exchange** (MPICH's choice
  for long ones) — plus **binomial-tree reduce** and **allreduce**
  (recursive doubling for short messages, Rabenseifner-style
  reduce-scatter + allgather for long ones; Thakur et al. 2005).
* ``algorithm="auto"`` applies MPICH's size-based selection rule, which is
  exactly what produces the baseline's sub-optimal large-message behaviour
  on a multi-executor-per-node cluster: both halving and pairwise pair
  *strided* ranks, so nearly every byte crosses a NIC, while the scalable
  communicator's hostname-sorted ring keeps most hops on the memory bus.

Rank placement follows ``mpirun`` hostfile convention: ranks fill node
after node (hostname-sorted), one rank per executor slot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..cluster.placement import Cluster, ExecutorSlot
from ..serde import sim_sizeof
from ..sim import Environment
from .fabric import CommFabric
from .ring import ring_allgather_rank, ring_reduce_scatter_rank
from .transport import TransportSpec, mpi_transport

__all__ = ["MpiCommunicator", "MPICH_RS_SHORT_THRESHOLD"]

ReduceOp = Callable[[Any, Any], Any]
SplitOp = Callable[[Any, int, int], Any]
ConcatOp = Callable[[Sequence[Any]], Any]

#: MPICH switches reduce_scatter from recursive halving to pairwise
#: exchange above 512 KB of total data (commutative case).
MPICH_RS_SHORT_THRESHOLD = 512 * 1024


def _largest_power_of_two_leq(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


class MpiCommunicator:
    """MPI-grade collectives over the simulated cluster."""

    def __init__(self, cluster: Cluster,
                 slots: Optional[Sequence[ExecutorSlot]] = None,
                 transport: Optional[TransportSpec] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.transport = transport or mpi_transport(cluster.config)
        chosen = list(slots) if slots is not None else list(cluster.executors)
        if not chosen:
            raise ValueError("communicator needs at least one rank")
        # mpirun hostfile order: node by node.
        chosen.sort(key=lambda s: (s.hostname, s.executor_id))
        self.ranked: List[ExecutorSlot] = chosen
        self.size = len(chosen)
        self.fabric = CommFabric(cluster.network, self.transport)
        for rank, slot in enumerate(self.ranked):
            self.fabric.register(rank, slot.node)
        self.merge_bandwidth = cluster.config.merge_bandwidth

    # ------------------------------------------------------------------ utils
    def _merge_cost(self, value: Any) -> float:
        return sim_sizeof(value) / self.merge_bandwidth

    def select_reduce_scatter_algorithm(self, total_bytes: float) -> str:
        """MPICH's size-based algorithm selection for reduce_scatter."""
        if total_bytes < MPICH_RS_SHORT_THRESHOLD:
            return "recursive_halving"
        return "pairwise"

    # ---------------------------------------------------------- reduce_scatter
    def reduce_scatter(self, values: Sequence[Any], split_op: SplitOp,
                       reduce_op: ReduceOp,
                       algorithm: str = "auto") -> Generator:
        """Process body: reduce-scatter with the chosen algorithm.

        Returns ``{rank: {segment_index: reduced_segment}}``. Depending on
        the algorithm a rank may own zero segments (recursive halving
        removes ``N - 2^k`` ranks in its pre-phase) or exactly one.
        """
        if len(values) != self.size:
            raise ValueError(
                f"expected {self.size} values, got {len(values)}"
            )
        if algorithm == "auto":
            algorithm = self.select_reduce_scatter_algorithm(
                sim_sizeof(values[0]))
        if algorithm == "ring":
            return (yield from self._ring_rs(values, split_op, reduce_op))
        if algorithm == "recursive_halving":
            return (yield from self._halving_rs(values, split_op, reduce_op))
        if algorithm == "pairwise":
            return (yield from self._pairwise_rs(values, split_op, reduce_op))
        raise ValueError(f"unknown reduce_scatter algorithm {algorithm!r}")

    def _ring_rs(self, values, split_op, reduce_op) -> Generator:
        env = self.env
        n = self.size

        def rank_proc(rank: int):
            segments = {j: split_op(values[rank], j, n) for j in range(n)}
            idx, segment = yield from ring_reduce_scatter_rank(
                self.fabric, rank, n, segments, reduce_op,
                self.merge_bandwidth, channel="mpi-ring")
            return rank, {idx: segment}

        procs = [env.process(rank_proc(r)) for r in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in procs:
            rank, result = yield proc
            owned[rank] = result
        return owned

    def _pairwise_rs(self, values, split_op, reduce_op) -> Generator:
        """Pairwise exchange: step ``i`` pairs rank ``r`` with ``r ± i``."""
        env = self.env
        n = self.size
        if n == 1:
            return {0: {0: split_op(values[0], 0, 1)}}

        def rank_proc(rank: int):
            contributions = {j: split_op(values[rank], j, n)
                             for j in range(n)}
            accum = contributions[rank]
            for i in range(1, n):
                to = (rank + i) % n
                frm = (rank - i) % n
                tag = ("pw", i)
                in_flight = self.fabric.isend(rank, to,
                                              contributions[to], tag=tag)
                incoming = yield from self.fabric.recv(rank, tag=tag)
                accum = reduce_op(accum, incoming)
                yield env.timeout(self._merge_cost(accum))
                yield in_flight
            return rank, {rank: accum}

        procs = [env.process(rank_proc(r)) for r in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in procs:
            rank, result = yield proc
            owned[rank] = result
        return owned

    def _halving_rs(self, values, split_op, reduce_op) -> Generator:
        """Recursive halving with the MPICH non-power-of-two pre-phase."""
        env = self.env
        n = self.size
        p2 = _largest_power_of_two_leq(n)
        rem = n - p2
        if n == 1:
            return {0: {0: split_op(values[0], 0, 1)}}

        def rank_proc(rank: int):
            segments = {j: split_op(values[rank], j, p2) for j in range(p2)}
            # --- pre-phase: fold the first `rem` odd ranks into their even
            # neighbours so a power-of-two group remains.
            if rank < 2 * rem:
                if rank % 2 == 1:
                    yield from self.fabric.send(rank, rank - 1, segments,
                                                tag=("rh-pre", rank))
                    return rank, {}
                incoming = yield from self.fabric.recv(
                    rank, tag=("rh-pre", rank + 1))
                for j in range(p2):
                    segments[j] = reduce_op(segments[j], incoming[j])
                yield env.timeout(sum(
                    self._merge_cost(segments[j]) for j in range(p2)))
                group_rank = rank // 2
            else:
                group_rank = rank - rem
            # --- recursive halving among the 2^k group.
            lo, hi = 0, p2
            while hi - lo > 1:
                half = (hi - lo) // 2
                mid = lo + half
                step = ("rh", hi - lo)
                if (group_rank - lo) < half:
                    partner_group = group_rank + half
                    send_rng = range(mid, hi)
                    keep_rng = range(lo, mid)
                else:
                    partner_group = group_rank - half
                    send_rng = range(lo, mid)
                    keep_rng = range(mid, hi)
                partner = self._ungroup(partner_group, rem)
                outgoing = {j: segments[j] for j in send_rng}
                in_flight = self.fabric.isend(rank, partner, outgoing,
                                              tag=step)
                incoming = yield from self.fabric.recv(rank, tag=step)
                merge_cost = 0.0
                for j, seg in incoming.items():
                    segments[j] = reduce_op(segments[j], seg)
                    merge_cost += self._merge_cost(segments[j])
                yield env.timeout(merge_cost)
                yield in_flight
                if (group_rank - lo) < half:
                    hi = mid
                else:
                    lo = mid
            return rank, {lo: segments[lo]}

        procs = [env.process(rank_proc(r)) for r in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in procs:
            rank, result = yield proc
            owned[rank] = result
        return owned

    @staticmethod
    def _ungroup(group_rank: int, rem: int) -> int:
        """Inverse of the pre-phase relabelling: group rank -> real rank."""
        if group_rank < rem:
            return group_rank * 2
        return group_rank + rem

    # ------------------------------------------------------------------ reduce
    def reduce(self, values: Sequence[Any], split_op: SplitOp,
               reduce_op: ReduceOp, root: int = 0) -> Generator:
        """Process body: binomial-tree reduce of whole values to ``root``.

        Returns the fully reduced value (held at ``root``).
        """
        if len(values) != self.size:
            raise ValueError(
                f"expected {self.size} values, got {len(values)}")
        env = self.env
        n = self.size
        result_box: Dict[str, Any] = {}

        def rank_proc(rank: int):
            # Relative rank so any root works with the same binomial tree.
            rel = (rank - root) % n
            value = split_op(values[rank], 0, 1)
            mask = 1
            while mask < n:
                if rel & mask:
                    dest = ((rel - mask) + root) % n
                    yield from self.fabric.send(rank, dest, value,
                                                tag=("bt", mask))
                    return
                src_rel = rel + mask
                if src_rel < n:
                    incoming = yield from self.fabric.recv(
                        rank, tag=("bt", mask))
                    value = reduce_op(value, incoming)
                    yield env.timeout(self._merge_cost(value))
                mask <<= 1
            result_box["value"] = value

        procs = [env.process(rank_proc(r)) for r in range(n)]
        for proc in procs:
            yield proc
        return result_box["value"]

    # --------------------------------------------------------------- allreduce
    def allreduce(self, values: Sequence[Any], split_op: SplitOp,
                  reduce_op: ReduceOp, concat_op: ConcatOp,
                  algorithm: str = "auto") -> Generator:
        """Process body: allreduce; returns a per-rank list of full results.

        ``auto`` follows Thakur et al.: recursive doubling for short
        messages, reduce-scatter + allgather (Rabenseifner) for long ones.
        """
        if algorithm == "auto":
            algorithm = ("recursive_doubling"
                         if sim_sizeof(values[0]) < MPICH_RS_SHORT_THRESHOLD
                         else "rabenseifner")
        if algorithm == "recursive_doubling":
            return (yield from self._doubling_allreduce(
                values, split_op, reduce_op, concat_op))
        if algorithm == "rabenseifner":
            return (yield from self._rabenseifner_allreduce(
                values, split_op, reduce_op, concat_op))
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}")

    def _doubling_allreduce(self, values, split_op, reduce_op,
                            concat_op) -> Generator:
        env = self.env
        n = self.size
        p2 = _largest_power_of_two_leq(n)
        rem = n - p2
        out: List[Any] = [None] * n

        def rank_proc(rank: int):
            value = split_op(values[rank], 0, 1)
            # Pre-phase identical to recursive halving's.
            group_rank = None
            if rank < 2 * rem:
                if rank % 2 == 1:
                    yield from self.fabric.send(rank, rank - 1, value,
                                                tag=("rd-pre", rank))
                else:
                    incoming = yield from self.fabric.recv(
                        rank, tag=("rd-pre", rank + 1))
                    value = reduce_op(value, incoming)
                    yield env.timeout(self._merge_cost(value))
                    group_rank = rank // 2
            else:
                group_rank = rank - rem
            if group_rank is not None:
                mask = 1
                while mask < p2:
                    partner = self._ungroup(group_rank ^ mask, rem)
                    tag = ("rd", mask)
                    in_flight = self.fabric.isend(rank, partner, value,
                                                  tag=tag)
                    incoming = yield from self.fabric.recv(rank, tag=tag)
                    value = reduce_op(value, incoming)
                    yield env.timeout(self._merge_cost(value))
                    yield in_flight
                    mask <<= 1
            # Post-phase: evens send the final value back to their odds.
            if rank < 2 * rem:
                if rank % 2 == 0:
                    yield from self.fabric.send(rank, rank + 1, value,
                                                tag=("rd-post", rank))
                else:
                    value = yield from self.fabric.recv(
                        rank, tag=("rd-post", rank - 1))
            out[rank] = concat_op([value])

        procs = [env.process(rank_proc(r)) for r in range(n)]
        for proc in procs:
            yield proc
        return out

    def _rabenseifner_allreduce(self, values, split_op, reduce_op,
                                concat_op) -> Generator:
        env = self.env
        n = self.size
        owned = yield env.process(
            self.reduce_scatter(values, split_op, reduce_op,
                                algorithm="ring"))
        out: List[Any] = [None] * n

        def rank_proc(rank: int):
            (idx, value), = owned[rank].items()
            have = yield from ring_allgather_rank(
                self.fabric, rank, n, idx, value, channel="rab-ag")
            ordered = [have[i] for i in sorted(have)]
            out[rank] = concat_op(ordered)

        procs = [env.process(rank_proc(r)) for r in range(n)]
        for proc in procs:
            yield proc
        return out
