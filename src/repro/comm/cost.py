"""Alpha-beta cost model and auto-tuner for the collective registry.

The paper picks its reduction constants by hand: one topology (the PDR
ring) and one parallelism (P=4, after the Figure 14 sweep). This module
turns both into *decisions*: an LogGP-flavoured alpha-beta model
(:class:`CollectiveCostModel`) predicts the reduce+gather time of every
``(algorithm, parallelism)`` candidate from the platform constants the
cluster config already declares — per-message overhead + link latency
(alpha), per-stream and NIC-shared bandwidth (beta), and the merge
bandwidth — and :func:`choose_collective` picks the cheapest.

Two feedback loops calibrate the model online, both fed by the obs layer:

* :class:`CostCalibrator` is an :class:`~repro.obs.EventBus` listener
  that refines alpha from small-message flight times, beta from
  large-message flight times and the achieved NIC rate from
  :class:`~repro.obs.NicSample` readings,
* :meth:`CollectiveCostModel.observe` folds each collective's *measured*
  reduce+gather span (``CollectiveCompleted``) into a per-algorithm EWMA
  correction, so systematic model bias cancels out of the ranking after
  the first few aggregations.

The predictions steer scheduling only — simulated time is always charged
by the actual message/merge machinery — so a wrong estimate can cost
performance, never correctness (every registered algorithm is
bit-identical, see :mod:`repro.comm.collectives`).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster.config import ClusterConfig
from ..core.spec import DEFAULT_CHUNK_BYTES
from ..obs import MessageDelivered, NicSample
from .transport import TransportSpec, sc_transport

__all__ = [
    "CollectivePlan",
    "CollectiveCostModel",
    "CostCalibrator",
    "choose_collective",
    "cost_model_for",
]

#: messages at or below this size calibrate alpha; above, beta
SMALL_MESSAGE_BYTES = 4096.0

#: EWMA weight for per-algorithm prediction corrections
CORRECTION_WEIGHT = 0.5

#: EWMA weight for link-sample calibration (alpha / beta / NIC rate)
SAMPLE_WEIGHT = 0.2


@dataclass(frozen=True)
class CollectivePlan:
    """One candidate configuration the tuner prices.

    ``hosts`` is the executor count per host (any order); ``value_bytes``
    the wire size of one rank's full aggregator (the ``__sim_size__``
    probe, so the density-adaptive sparse format is priced at its actual
    encoded size).
    """

    algorithm: str
    parallelism: int
    ranks: int
    hosts: Tuple[int, ...]
    value_bytes: float
    #: target chunk size for ``pipelined_ring`` (ignored elsewhere)
    chunk_bytes: float = DEFAULT_CHUNK_BYTES
    #: slowdown multiplier on executor-side merge CPU (>= 1.0): the
    #: health registry's price for placing the collective on degraded
    #: nodes (straggling or strike-laden executors). 1.0 = all healthy.
    compute_penalty: float = 1.0

    @property
    def segment_bytes(self) -> float:
        """Mean wire size of one of the ``N * P`` segments."""
        return self.value_bytes / (self.ranks * self.parallelism)

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)


def _host_profile(slots: Sequence[Any]) -> Tuple[int, ...]:
    """Executors per host for a slot sequence (order irrelevant)."""
    counts = Counter(slot.hostname for slot in slots)
    return tuple(sorted(counts.values(), reverse=True))


class CollectiveCostModel:
    """Alpha-beta predictor for the registered reduce-scatter strategies.

    All rates are bytes/second, all times seconds. The base constants
    come straight from :class:`~repro.cluster.config.ClusterConfig` (via
    :meth:`from_config`); :class:`CostCalibrator` and :meth:`observe`
    refine them online.
    """

    def __init__(self, alpha_inter: float, alpha_intra: float,
                 stream_bandwidth: float, nic_bandwidth: float,
                 loopback_stream: float, loopback_bandwidth: float,
                 merge_bandwidth: float, ser_bandwidth: float,
                 deser_bandwidth: float):
        self.alpha_inter = alpha_inter
        self.alpha_intra = alpha_intra
        self.stream_bandwidth = stream_bandwidth
        self.nic_bandwidth = nic_bandwidth
        self.loopback_stream = loopback_stream
        self.loopback_bandwidth = loopback_bandwidth
        self.merge_bandwidth = merge_bandwidth
        self.ser_bandwidth = ser_bandwidth
        self.deser_bandwidth = deser_bandwidth
        #: measured/predicted EWMA per algorithm (1.0 = model exact)
        self.corrections: Dict[str, float] = {}
        #: observations folded in per algorithm, for the tuner report
        self.observations: Dict[str, int] = {}

    @classmethod
    def from_config(cls, config: ClusterConfig,
                    transport: Optional[TransportSpec] = None
                    ) -> "CollectiveCostModel":
        transport = transport or sc_transport(config)
        return cls(
            alpha_inter=transport.overhead + config.inter_node_latency,
            alpha_intra=transport.overhead + config.intra_node_latency,
            stream_bandwidth=(transport.stream_bandwidth
                              or config.tcp_stream_bandwidth),
            nic_bandwidth=config.nic_bandwidth,
            loopback_stream=(transport.loopback_stream_bandwidth
                             or config.loopback_stream_bandwidth),
            loopback_bandwidth=config.loopback_bandwidth,
            merge_bandwidth=config.merge_bandwidth,
            ser_bandwidth=config.ser_bandwidth,
            deser_bandwidth=config.deser_bandwidth,
        )

    # ----------------------------------------------------------- link rates
    def _inter_rate(self, streams_per_nic: float) -> float:
        """Per-stream rate with ``streams_per_nic`` sharing one NIC."""
        return min(self.stream_bandwidth,
                   self.nic_bandwidth / max(1.0, streams_per_nic))

    def _intra_rate(self, streams: float) -> float:
        """Per-stream loopback rate with ``streams`` sharing the path."""
        return min(self.loopback_stream,
                   self.loopback_bandwidth / max(1.0, streams))

    def _merge_rate(self, plan: CollectivePlan) -> float:
        """Executor-side merge bandwidth, slowed by the health penalty.

        A lock-step ring is paced by its slowest rank, so one degraded
        executor stretches *every* merge term; ``compute_penalty = 1.0``
        divides exactly and leaves healthy predictions bit-identical.
        """
        return self.merge_bandwidth / max(plan.compute_penalty, 1.0)

    # ----------------------------------------------------------- prediction
    def predict(self, plan: CollectivePlan) -> float:
        """Calibrated reduce+gather seconds for ``plan``."""
        raw = self.predict_raw(plan)
        return raw * self.corrections.get(plan.algorithm, 1.0)

    def predict_raw(self, plan: CollectivePlan) -> float:
        """Uncalibrated model time for ``plan``'s reduce + driver gather."""
        if plan.algorithm == "ring":
            reduce_time = self._ring_time(plan)
            owners = plan.ranks
        elif plan.algorithm == "pipelined_ring":
            reduce_time = self._pipelined_time(plan)
            owners = plan.ranks
        elif plan.algorithm == "hd":
            reduce_time = self._hd_time(plan)
            owners = 1 << max(0, plan.ranks.bit_length() - 1)
        elif plan.algorithm == "hierarchical":
            reduce_time = self._hier_time(plan)
            owners = min(plan.num_hosts, plan.ranks)
        else:
            raise ValueError(f"no cost formula for {plan.algorithm!r}")
        return reduce_time + self._gather_time(plan, owners)

    def _ring_hop(self, plan: CollectivePlan,
                  seg: float) -> Tuple[float, float]:
        """``(hop_time, alpha)`` for one ring hop carrying ``seg`` bytes.

        One boundary rank per host crosses the NIC; the other E-1 hops
        ride loopback. P channels stream concurrently on each. The
        returned alpha is the per-message overhead of the pacing link.
        """
        p = plan.parallelism
        e_max = max(plan.hosts)
        inter_hop = self.alpha_inter + seg / self._inter_rate(p)
        if e_max > 1:
            intra_hop = (self.alpha_intra
                         + seg / self._intra_rate((e_max - 1) * p))
        else:
            intra_hop = 0.0
        if plan.num_hosts == 1:
            return intra_hop, self.alpha_intra
        if inter_hop >= intra_hop:
            return inter_hop, self.alpha_inter
        return intra_hop, self.alpha_intra

    def _ring_time(self, plan: CollectivePlan) -> float:
        """(N-1) lock-step hops; slowest link type paces every hop."""
        n = plan.ranks
        if n <= 1:
            return 0.0
        seg = plan.segment_bytes
        hop, _alpha = self._ring_hop(plan, seg)
        return (n - 1) * (hop + seg / self._merge_rate(plan))

    def _pipelined_time(self, plan: CollectivePlan) -> float:
        """Chunked ring: wire and merge overlap across chunk columns.

        With ``C`` columns in flight, each of the ``N - 1`` hop steps
        pays the dominant side in full but hides all of the cheaper side
        except one column's pipeline fill::

            max(hop, merge) + min(hop, merge) / C + (C - 1) * alpha

        The alpha surcharge prices the extra per-chunk message overhead,
        so the tuner keeps plain ``ring`` on tiny segments where chunking
        cannot pay for its own headers. ``C = 1`` reduces exactly to
        :meth:`_ring_time`; ``C → ∞`` approaches ``max(hop, merge)``.
        """
        n = plan.ranks
        if n <= 1:
            return 0.0
        seg = plan.segment_bytes
        columns = self._columns(plan)
        hop, alpha = self._ring_hop(plan, seg)
        merge = seg / self._merge_rate(plan)
        step = (max(hop, merge) + min(hop, merge) / columns
                + (columns - 1) * alpha)
        return (n - 1) * step

    @staticmethod
    def _columns(plan: CollectivePlan) -> int:
        """Chunk columns the pipelined ring would use for ``plan``."""
        if plan.chunk_bytes <= 0:
            return 1
        return max(1, int(math.ceil(plan.segment_bytes / plan.chunk_bytes)))

    def _hd_time(self, plan: CollectivePlan) -> float:
        """Pre-fold + log2(N) exchange rounds + the deferred final fold.

        Deferral keeps the wire at ~S/2 per round (each halving doubles
        contributions per state while halving the states shipped), and
        every rank exchanges at once, so E*P streams share each NIC.
        """
        n, p = plan.ranks, plan.parallelism
        if n <= 1:
            return 0.0
        s_chan = plan.value_bytes / p
        m = n.bit_length() - 1
        n2 = 1 << m
        e_max = max(plan.hosts)
        total = 0.0
        extras = n - n2
        if extras:
            streams = max(1.0, extras * p / plan.num_hosts)
            total += (self.alpha_inter
                      + s_chan / self._inter_rate(streams))
        round_bytes = s_chan / 2.0
        round_rate = self._inter_rate(e_max * p)
        total += m * (self.alpha_inter + round_bytes / round_rate)
        # Deferred contributions fold at the end: ~one full channel pass.
        total += (n / n2) * s_chan / self._merge_rate(plan)
        return total

    def _hier_time(self, plan: CollectivePlan) -> float:
        """Loopback leader gather, then H inter-host hops per segment."""
        n, p = plan.ranks, plan.parallelism
        if n <= 1:
            return 0.0
        seg = plan.segment_bytes
        s_chan = plan.value_bytes / p
        e_max = max(plan.hosts)
        h = plan.num_hosts
        total = 0.0
        if e_max > 1:
            rate = self._intra_rate((e_max - 1) * p)
            total += self.alpha_intra + s_chan / rate
        if h > 1:
            # n*P accumulator walks share the H leader NICs.
            rate = self._inter_rate(n * p / h)
            total += h * (self.alpha_inter + seg / rate)
        # Each walk folds all n contributions of its segment in sequence.
        total += (n - 1) * seg / self._merge_rate(plan)
        return total

    def _gather_time(self, plan: CollectivePlan, owners: int) -> float:
        """Owners ship their reduced segments to the driver, concurrently."""
        owners = max(1, owners)
        per_owner = plan.value_bytes / owners
        transfer = plan.value_bytes / min(self.nic_bandwidth,
                                          owners * self.stream_bandwidth)
        return (per_owner / self.ser_bandwidth
                + self.alpha_inter + transfer
                + per_owner / self.deser_bandwidth
                + plan.value_bytes / self.merge_bandwidth)

    # ---------------------------------------------------------- calibration
    def observe(self, algorithm: str, predicted: float,
                measured: float) -> None:
        """Fold one measured reduce+gather span into the correction EWMA."""
        if predicted <= 0.0 or measured <= 0.0:
            return
        raw = predicted / self.corrections.get(algorithm, 1.0)
        if raw <= 0.0:
            return
        ratio = measured / raw
        prior = self.corrections.get(algorithm)
        if prior is None:
            self.corrections[algorithm] = ratio
        else:
            self.corrections[algorithm] = (
                (1.0 - CORRECTION_WEIGHT) * prior
                + CORRECTION_WEIGHT * ratio)
        self.observations[algorithm] = (
            self.observations.get(algorithm, 0) + 1)


class CostCalibrator:
    """Bus listener refining the model's link constants from obs samples.

    Subscribes like any listener (``bus.subscribe(CostCalibrator(model))``)
    and updates the model in place:

    * small :class:`~repro.obs.MessageDelivered` flight times → alpha
      (per-message overhead + latency),
    * large ones → beta (the achieved per-stream rate),
    * :class:`~repro.obs.NicSample` readings → the NIC ceiling, ratcheted
      up to the highest rate actually observed.

    Never touches merge/serde constants — those are CPU-side and the obs
    layer measures them elsewhere.
    """

    def __init__(self, model: CollectiveCostModel):
        self.model = model
        self.alpha_samples = 0
        self.beta_samples = 0
        self.nic_samples = 0

    def on_event(self, event: Any) -> None:
        if isinstance(event, MessageDelivered):
            if event.flight_time <= 0.0:
                return
            if event.nbytes <= SMALL_MESSAGE_BYTES:
                self.model.alpha_inter = (
                    (1.0 - SAMPLE_WEIGHT) * self.model.alpha_inter
                    + SAMPLE_WEIGHT * event.flight_time)
                self.alpha_samples += 1
            else:
                wire = event.flight_time - self.model.alpha_inter
                if wire > 0.0:
                    rate = event.nbytes / wire
                    if rate <= self.model.nic_bandwidth:
                        self.model.stream_bandwidth = (
                            (1.0 - SAMPLE_WEIGHT)
                            * self.model.stream_bandwidth
                            + SAMPLE_WEIGHT * rate)
                        self.beta_samples += 1
        elif isinstance(event, NicSample):
            observed = max(event.in_rate, event.out_rate)
            if observed > self.model.nic_bandwidth:
                self.model.nic_bandwidth = observed
            self.nic_samples += 1


def choose_collective(
    model: CollectiveCostModel,
    value_bytes: float,
    slots: Sequence[Any],
    algorithms: Sequence[str],
    parallelism_candidates: Sequence[int],
    chunk_bytes: float = DEFAULT_CHUNK_BYTES,
    compute_penalty: float = 1.0,
) -> Tuple[CollectivePlan, List[Tuple[CollectivePlan, float]]]:
    """Price every ``(algorithm, parallelism)`` candidate; pick cheapest.

    Returns ``(winner, estimates)`` where ``estimates`` lists every
    candidate with its calibrated prediction (winner included), in the
    deterministic candidate order. Ties break toward the earlier
    candidate, so listing ``"ring"`` first keeps the seed behaviour
    whenever the model sees no advantage elsewhere. ``compute_penalty``
    is the health registry's merge-CPU slowdown for the degraded nodes
    in ``slots`` (1.0 = all healthy, predictions unchanged).
    """
    hosts = _host_profile(slots)
    ranks = len(slots)
    if ranks < 1:
        raise ValueError("choose_collective needs at least one slot")
    estimates: List[Tuple[CollectivePlan, float]] = []
    best: Optional[Tuple[CollectivePlan, float]] = None
    for algorithm in algorithms:
        for p in parallelism_candidates:
            plan = CollectivePlan(algorithm=algorithm, parallelism=p,
                                  ranks=ranks, hosts=hosts,
                                  value_bytes=value_bytes,
                                  chunk_bytes=chunk_bytes,
                                  compute_penalty=compute_penalty)
            predicted = model.predict(plan)
            estimates.append((plan, predicted))
            if best is None or predicted < best[1]:
                best = (plan, predicted)
    assert best is not None
    return best[0], estimates


def cost_model_for(sc: Any) -> CollectiveCostModel:
    """The context's cached cost model, built (and wired) on first use.

    Creates one :class:`CollectiveCostModel` from the context's cluster
    config, subscribes a :class:`CostCalibrator` to the context's event
    bus (when it has one), and caches both on the context so every
    aggregation of a job shares one calibration state.
    """
    model = getattr(sc, "collective_costs", None)
    if model is None:
        model = CollectiveCostModel.from_config(sc.cluster.config)
        sc.collective_costs = model
        bus = getattr(sc, "event_bus", None)
        if bus is not None:
            calibrator = CostCalibrator(model)
            bus.subscribe(calibrator)
            sc.collective_calibrator = calibrator
    return model
