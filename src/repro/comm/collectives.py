"""Pluggable collective algorithms for the split-aggregation reduce step.

The paper hard-codes one reduction topology — the parallel directed ring
reduce-scatter of §4.2 — but its own Figure 14/15 sweeps show the best
collective depends on segment size, executor count and host topology.
This module makes the algorithm a *registry entry* so
:func:`~repro.core.sai.split_aggregate` (via
:class:`~repro.core.spec.AggregationSpec`'s ``collective`` field, or the
cost-model tuner in :mod:`repro.comm.cost`) can pick per call:

* ``"ring"`` — the existing PDR ring
  (:meth:`~repro.comm.ring.ScalableCommunicator.reduce_scatter`),
* ``"hd"`` — recursive halving(-doubling): ``log2(N)`` exchange rounds
  over power-of-two rank blocks, with a pre-fold round absorbing the
  ranks beyond the largest power of two. Fewer, larger messages — wins
  when per-message overhead dominates (small segments, few ranks).
* ``"hierarchical"`` — a two-level reduce: every member ships its
  split segments to its *host leader* over loopback in parallel (the
  intra-host merge, priced like the IMM merge path at
  ``merge_bandwidth``), then each segment's accumulator walks an
  inter-host ring over one leader per host. Sequential depth drops from
  ``N - 1`` hops to ``H`` inter-host hops — wins with many executors
  per host.

**The bit-identity contract.** The seed ring reduces every global
segment ``g`` (local index ``j = g mod N`` on channel ``p``) as one
left-deep chain in rank order starting at rank ``j``::

    acc = v[j]
    for r in (j+1, j+2, ..., j-1 mod N):
        acc = reduce_op(v[r], acc)      # contribution first, acc second

Float addition is not associative, so *every* algorithm here realizes
exactly this association — hierarchical folds member contributions one
at a time in rank order as the accumulator passes each host, and
halving-doubling defers contributions (shipping ordered
``(origin_rank, value)`` lists, honestly sized on the wire) and folds
only the canonical prefix chain. All three therefore produce
bit-identical final values; they differ only in message schedule, wire
bytes and virtual time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..cluster.placement import host_blocks
from ..obs import ChunkStream, EventBus, RingHop, channel_str
from ..rdd.executor import ExecutorLost
from ..serde import sim_sizeof
from .fabric import CommFabric, RecvTimeout
from .ring import chunk_columns_for, pipelined_ring_reduce_scatter_rank

__all__ = [
    "CollectiveAlgorithm",
    "RingCollective",
    "PipelinedRingCollective",
    "HalvingDoublingCollective",
    "HierarchicalCollective",
    "register_collective",
    "get_collective",
    "available_collectives",
    "hd_reduce_scatter_channel",
]

ReduceOp = Callable[[Any, Any], Any]
SplitOp = Callable[[Any, int, int], Any]


class CollectiveAlgorithm:
    """One registered reduce-scatter strategy.

    ``reduce_scatter`` is a process body taking the communicator, the
    per-rank aggregators and the split/reduce callbacks, returning
    ``{rank: {global_segment_index: reduced_segment}}`` — the same shape
    :meth:`~repro.comm.ring.ScalableCommunicator.gather_concat`
    consumes, so every algorithm composes with the driver gather.
    """

    name: str = "?"

    def validate(self, comm: Any) -> None:
        """Raise ``ValueError`` when ``comm`` cannot run this algorithm."""

    def reduce_scatter(self, comm: Any, values: Sequence[Any],
                       split_op: SplitOp,
                       reduce_op: ReduceOp) -> Generator:
        raise NotImplementedError


_REGISTRY: Dict[str, CollectiveAlgorithm] = {}


def register_collective(algo: CollectiveAlgorithm) -> CollectiveAlgorithm:
    """Register ``algo`` under ``algo.name`` (last registration wins)."""
    if not algo.name or algo.name == "?":
        raise ValueError(f"collective algorithm needs a name: {algo!r}")
    _REGISTRY[algo.name] = algo
    return algo


def get_collective(name: str) -> CollectiveAlgorithm:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown collective {name!r}; registered: {known}") from None


def available_collectives() -> Tuple[str, ...]:
    """Names of all registered algorithms, sorted."""
    return tuple(sorted(_REGISTRY))


# --------------------------------------------------------------------- ring
class RingCollective(CollectiveAlgorithm):
    """The seed PDR ring, delegated to the communicator itself."""

    name = "ring"

    def reduce_scatter(self, comm: Any, values: Sequence[Any],
                       split_op: SplitOp,
                       reduce_op: ReduceOp) -> Generator:
        result = yield from comm.reduce_scatter(values, split_op, reduce_op)
        return result


# ---------------------------------------------------------- pipelined ring
class PipelinedRingCollective(CollectiveAlgorithm):
    """Chunk-pipelined PDR ring: overlap merge CPU with wire time.

    Each channel's segments split further into ``C`` elementwise *chunk
    columns* (:meth:`chunk_split` on the segment), and every column runs
    the unchanged classic ring on its own fabric channel. While column
    ``c``'s hop is on the wire, column ``c'``'s merge runs on the CPU, so
    per hop the rank pays ``max(wire, merge)`` plus one column's
    pipeline-fill instead of ``wire + merge``. Because a chunk is an
    elementwise slice and every column folds in exact ring order, the
    concatenated result is bit-identical to ``"ring"``.

    Two optional communicator attributes extend the contract without
    changing the registry signature (read via ``getattr``, absent on the
    stock :class:`~repro.comm.ring.ScalableCommunicator`):

    * ``comm.pipeline`` — per-rank ``(ready_event, fetch)`` pairs. When
      set, rank ``r`` waits on its event and calls ``fetch()`` for its
      value instead of reading ``values[r]``; this is how
      ``split_aggregate`` streams each executor's aggregator into the
      ring as soon as its last partition merges, overlapping *seqOp
      compute* with other ranks' communication.
    * ``comm.num_chunks`` / ``comm.chunk_bytes`` — explicit column count,
      or the target chunk size used to derive one (defaulting to
      :data:`repro.core.spec.DEFAULT_CHUNK_BYTES`). With one column this
      algorithm is hop-for-hop the classic ring.
    * ``comm.ledger`` — a :class:`~repro.comm.ring.ChunkLedger` delivery
      fence. Completed chunk columns are recorded as they finish, and
      columns the whole topology already acknowledged (on a previous,
      aborted attempt of the same aggregation) are skipped instead of
      replayed — the fault-tolerant path's partial-replay hook.
    """

    name = "pipelined_ring"

    def reduce_scatter(self, comm: Any, values: Sequence[Any],
                       split_op: SplitOp,
                       reduce_op: ReduceOp) -> Generator:
        pipeline = getattr(comm, "pipeline", None)
        if pipeline is None and len(values) != comm.size:
            raise ValueError(
                f"expected {comm.size} values (one per rank), "
                f"got {len(values)}")
        env = comm.env
        n, p_total = comm.size, comm.parallelism
        num = comm.num_segments
        merge_bw = comm.cluster.config.merge_bandwidth
        forced_chunks = getattr(comm, "num_chunks", None)
        chunk_bytes = getattr(comm, "chunk_bytes", None)
        ledger = getattr(comm, "ledger", None)
        if not chunk_bytes or chunk_bytes <= 0:
            from ..core.spec import DEFAULT_CHUNK_BYTES
            chunk_bytes = DEFAULT_CHUNK_BYTES

        def rank_proc(rank: int):
            if pipeline is not None:
                ready, fetch = pipeline[rank]
                yield ready
                value = fetch()
            else:
                value = values[rank]
            began = env.now
            channel_procs = []
            chunk_counts: List[int] = []
            for p in range(p_total):
                local_segments = {
                    j: split_op(value, p * n + j, num) for j in range(n)
                }
                # Every rank holds an equally-shaped aggregator, so the
                # probe segment (global index p*n) yields the same column
                # count on all ranks — no agreement round needed.
                chunks = (int(forced_chunks) if forced_chunks
                          else chunk_columns_for(local_segments[0],
                                                 chunk_bytes))
                chunk_counts.append(chunks)
                channel_procs.append(comm._track(env.process(
                    pipelined_ring_reduce_scatter_rank(
                        comm.fabric, rank, n, local_segments, reduce_op,
                        merge_bw, chunks, channel=p, bus=comm.bus,
                        executor_id=comm.ranked[rank].executor_id,
                        recv_timeout=comm.recv_timeout,
                        parent_span=comm.span_id, track=comm._track,
                        ledger=ledger),
                    name=f"pring:r{rank}c{p}")))
            results: Dict[int, Any] = {}
            for p, proc in enumerate(channel_procs):
                local_idx, segment = yield proc
                results[p * n + local_idx] = segment
            bus = comm.bus
            if bus is not None and bus.active:
                for p, chunks in enumerate(chunk_counts):
                    bus.emit(ChunkStream.fast(
                        time=env.now, rank=rank,
                        executor_id=comm.ranked[rank].executor_id,
                        channel=channel_str(p), num_chunks=chunks,
                        chunk_bytes=float(chunk_bytes),
                        value_bytes=sim_sizeof(value), began=began,
                        span_id=bus.tracer.new_span(),
                        parent_span_id=comm.span_id))
            return rank, results

        procs = [comm._track(env.process(rank_proc(r),
                                         name=f"pring:rank{r}"))
                 for r in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in procs:
            rank, results = yield proc
            owned[rank] = results
        return owned


# ------------------------------------------------------- chain-order state
class _ChainState:
    """Deferred reduction state of one segment: fold only in chain order.

    Holds the folded canonical prefix (``acc`` covers origin ranks
    ``start .. start+count-1`` mod ``size``) plus unordered pending
    contributions by origin rank. Because contributions are globally
    disjoint and folding only ever extends the prefix, merging two
    partial states and folding opportunistically reproduces the ring's
    exact left-deep chain no matter how contributions travelled.
    """

    __slots__ = ("start", "size", "acc", "count", "pending")

    def __init__(self, start: int, size: int):
        self.start = start
        self.size = size
        self.acc: Any = None
        self.count = 0
        self.pending: Dict[int, Any] = {}

    def add(self, origin: int, value: Any) -> None:
        self.pending[origin] = value

    def fold(self, reduce_op: ReduceOp) -> float:
        """Fold every prefix-extending contribution; returns merge bytes."""
        if self.acc is None:
            value = self.pending.pop(self.start, None)
            if value is None:
                return 0.0
            self.acc = value
            self.count = 1
        merged_bytes = 0.0
        while self.count < self.size and self.pending:
            nxt = (self.start + self.count) % self.size
            value = self.pending.pop(nxt, None)
            if value is None:
                break
            self.acc = reduce_op(value, self.acc)
            merged_bytes += sim_sizeof(self.acc)
            self.count += 1
        return merged_bytes

    @property
    def complete(self) -> bool:
        return self.count == self.size

    def wire_size(self) -> float:
        total = sim_sizeof(self.acc) if self.acc is not None else 0.0
        for value in self.pending.values():
            total += sim_sizeof(value)
        return total

    def export(self) -> Tuple[Any, int, List[Tuple[int, Any]]]:
        return (self.acc, self.count, list(self.pending.items()))

    def absorb(self, exported: Tuple[Any, int, List[Tuple[int, Any]]]) -> None:
        acc, count, items = exported
        if acc is not None:
            if self.acc is not None:  # pragma: no cover - disjointness guard
                raise RuntimeError(
                    f"two folded prefixes for segment {self.start}")
            self.acc = acc
            self.count = count
        self.pending.update(items)


def _owner_block(n: int, n2: int, owner: int) -> Tuple[int, int]:
    """Contiguous local-segment range ``[lo, hi)`` owned by ``owner``."""
    return (owner * n) // n2, ((owner + 1) * n) // n2


# --------------------------------------------------- recursive halving (hd)
def hd_reduce_scatter_channel(
    fabric: CommFabric,
    rank: int,
    size: int,
    segments: Dict[int, Any],
    reduce_op: ReduceOp,
    merge_bandwidth: float,
    channel: Any = 0,
    bus: Optional[EventBus] = None,
    executor_id: int = -1,
    recv_timeout: Optional[float] = None,
    parent_span: int = -1,
) -> Generator:
    """Per-rank recursive-halving reduce-scatter over one channel.

    ``segments`` maps local index ``0..size-1`` to this rank's raw
    contribution. Rounds: an optional pre-fold (rank ``r >= 2^m`` ships
    its whole contribution set to rank ``r - 2^m``), then ``m`` pairwise
    exchanges at distances ``2^(m-1) .. 1`` in which each rank sends the
    chain states of the half it gives up and absorbs its kept half.
    States carry deferred ``(origin, value)`` contributions and fold
    eagerly only along the canonical prefix chain, so the result is
    bit-identical to the ring (see module docstring); wire sizes price
    the deferred payloads honestly.

    Returns ``{local_index: reduced_segment}`` for this rank's final
    owner block — empty for the pre-folded extra ranks.
    """
    env = fabric.env
    n = size
    if n == 1:
        return {0: segments[0]}
    m = n.bit_length() - 1
    n2 = 1 << m
    channel_key = channel_str(("hd", channel))

    states: Dict[int, _ChainState] = {}
    for j in range(n):
        state = _ChainState(j, n)
        state.add(rank, segments[j])
        state.fold(reduce_op)  # seats rank j's own prefix; merges nothing
        states[j] = state

    def _recv(hop: int) -> Generator:
        try:
            payload = yield from fabric.recv(rank, tag=(channel_key, hop),
                                             timeout=recv_timeout)
        except RecvTimeout as exc:
            raise ExecutorLost(
                f"hd rank {rank} heard nothing on channel {channel_key} "
                f"round {hop} for {recv_timeout:g}s") from exc
        return payload

    def _emit_hop(hop: int, began: float, send_bytes: float,
                  recv_bytes: float, merge_time: float) -> None:
        if bus is not None and bus.active:
            bus.emit(RingHop.fast(time=env.now, rank=rank,
                             executor_id=executor_id, channel=channel_key,
                             hop=hop, send_bytes=send_bytes,
                             recv_bytes=recv_bytes, began=began,
                             merge_time=merge_time,
                             span_id=bus.tracer.new_span(),
                             parent_span_id=parent_span))

    # ---- round 0: fold the ranks beyond the largest power of two ----------
    if rank >= n2:
        partner = rank - n2
        payload = [(j, states[j].export()) for j in range(n)]
        nbytes = sum(states[j].wire_size() for j in range(n))
        began = env.now
        yield from fabric.send(rank, partner, payload, tag=(channel_key, 0),
                               nbytes=nbytes)
        _emit_hop(0, began, nbytes, 0.0, 0.0)
        return {}
    if rank + n2 < n:
        began = env.now
        incoming = yield from _recv(0)
        merged_bytes = 0.0
        recv_bytes = 0.0
        for j, exported in incoming:
            state = states[j]
            state.absorb(exported)
            merged_bytes += state.fold(reduce_op)
            recv_bytes += state.wire_size()
        merge_time = merged_bytes / merge_bandwidth
        if merge_time > 0:
            yield env.timeout(merge_time)
        _emit_hop(0, began, 0.0, recv_bytes, merge_time)

    # ---- rounds 1..m: pairwise halving over the power-of-two core ---------
    block_lo, block_hi = 0, n2
    for t in range(1, m + 1):
        half = (block_hi - block_lo) // 2
        mid = block_lo + half
        if rank < mid:
            partner = rank + half
            send_lo, send_hi = mid, block_hi
            block_hi = mid
        else:
            partner = rank - half
            send_lo, send_hi = block_lo, mid
            block_lo = mid
        seg_lo = _owner_block(n, n2, send_lo)[0]
        seg_hi = _owner_block(n, n2, send_hi - 1)[1]
        payload = []
        nbytes = 0.0
        for j in range(seg_lo, seg_hi):
            state = states[j]
            if state.acc is None and not state.pending:
                continue
            nbytes += state.wire_size()
            payload.append((j, state.export()))
            states[j] = _ChainState(j, n)
        began = env.now
        in_flight = fabric.isend(rank, partner, payload,
                                 tag=(channel_key, t), nbytes=nbytes)
        incoming = yield from _recv(t)
        merged_bytes = 0.0
        recv_bytes = 0.0
        for j, exported in incoming:
            state = states[j]
            state.absorb(exported)
            merged_bytes += state.fold(reduce_op)
            recv_bytes += state.wire_size()
        merge_time = merged_bytes / merge_bandwidth
        if merge_time > 0:
            yield env.timeout(merge_time)
        yield in_flight
        _emit_hop(t, began, nbytes, recv_bytes, merge_time)

    # ---- final fold: every contribution of the owned block is local -------
    results: Dict[int, Any] = {}
    merged_bytes = 0.0
    lo, hi = _owner_block(n, n2, rank)
    for j in range(lo, hi):
        state = states[j]
        merged_bytes += state.fold(reduce_op)
        if not state.complete:  # pragma: no cover - algorithm invariant
            raise RuntimeError(
                f"hd rank {rank} segment {j}: only {state.count}/{n} "
                f"contributions folded")
        results[j] = state.acc
    merge_time = merged_bytes / merge_bandwidth
    if merge_time > 0:
        yield env.timeout(merge_time)
    return results


class HalvingDoublingCollective(CollectiveAlgorithm):
    """Recursive halving reduce-scatter (``log2(N)`` rounds per channel)."""

    name = "hd"

    def reduce_scatter(self, comm: Any, values: Sequence[Any],
                       split_op: SplitOp,
                       reduce_op: ReduceOp) -> Generator:
        if len(values) != comm.size:
            raise ValueError(
                f"expected {comm.size} values (one per rank), "
                f"got {len(values)}")
        env = comm.env
        n, p_total = comm.size, comm.parallelism
        num = comm.num_segments
        merge_bw = comm.cluster.config.merge_bandwidth

        def rank_proc(rank: int):
            value = values[rank]
            channel_procs = []
            for p in range(p_total):
                local_segments = {
                    j: split_op(value, p * n + j, num) for j in range(n)
                }
                channel_procs.append(comm._track(env.process(
                    hd_reduce_scatter_channel(
                        comm.fabric, rank, n, local_segments, reduce_op,
                        merge_bw, channel=p, bus=comm.bus,
                        executor_id=comm.ranked[rank].executor_id,
                        recv_timeout=comm.recv_timeout,
                        parent_span=comm.span_id),
                    name=f"hd:r{rank}c{p}",
                )))
            results: Dict[int, Any] = {}
            for p, proc in enumerate(channel_procs):
                block = yield proc
                for j, segment in block.items():
                    results[p * n + j] = segment
            return rank, results

        procs = [comm._track(env.process(rank_proc(r), name=f"hd:rank{r}"))
                 for r in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in procs:
            rank, results = yield proc
            if results:
                owned[rank] = results
        return owned


# ------------------------------------------------------------- hierarchical
class HierarchicalCollective(CollectiveAlgorithm):
    """Two-level reduce: intra-host leader gather + inter-host chain walk.

    Phase 1 (intra-host, parallel): every non-leader rank ships its split
    segments for each channel to its host's leader over loopback. Phase 2
    (inter-host): for each global segment, an accumulator starts at the
    chain-start rank's host and visits the hosts in rank order; each
    leader folds its members' contributions one at a time — exactly the
    canonical chain — then forwards the accumulator. Sequential depth per
    segment is the number of host runs (≈ H) instead of ``N - 1``.
    """

    name = "hierarchical"

    def validate(self, comm: Any) -> None:
        if not comm.topology_aware:
            raise ValueError(
                "hierarchical collective requires topology_aware=True "
                "(host grouping needs hostname-contiguous ranks)")
        host_blocks(comm.ranked)  # raises on non-contiguous hosts

    def reduce_scatter(self, comm: Any, values: Sequence[Any],
                       split_op: SplitOp,
                       reduce_op: ReduceOp) -> Generator:
        if len(values) != comm.size:
            raise ValueError(
                f"expected {comm.size} values (one per rank), "
                f"got {len(values)}")
        env = comm.env
        fabric = comm.fabric
        bus = comm.bus
        n, p_total = comm.size, comm.parallelism
        num = comm.num_segments
        merge_bw = comm.cluster.config.merge_bandwidth
        recv_timeout = comm.recv_timeout
        blocks = host_blocks(comm.ranked)
        leader_of_block = [ranks[0] for _host, ranks in blocks]
        block_of: Dict[int, int] = {}
        for bi, (_host, ranks) in enumerate(blocks):
            for r in ranks:
                block_of[r] = bi

        #: contrib[p][origin_rank] = {local_index: raw split segment}
        contrib: List[Dict[int, Dict[int, Any]]] = [
            {} for _ in range(p_total)]

        def member_proc(rank: int):
            value = values[rank]
            leader = leader_of_block[block_of[rank]]
            pending = []
            for p in range(p_total):
                local = {j: split_op(value, p * n + j, num)
                         for j in range(n)}
                if rank == leader:
                    contrib[p][rank] = local
                else:
                    nbytes = sum(sim_sizeof(v) for v in local.values())
                    pending.append(fabric.isend(
                        rank, leader, (rank, local),
                        tag=(channel_str(("hg", p)), rank), nbytes=nbytes))
            for event in pending:
                yield event

        def leader_gather(bi: int):
            _host, ranks = blocks[bi]
            leader = ranks[0]
            for p in range(p_total):
                for r in ranks:
                    if r == leader:
                        continue
                    try:
                        origin, local = yield from fabric.recv(
                            leader, tag=(channel_str(("hg", p)), r),
                            timeout=recv_timeout)
                    except RecvTimeout as exc:
                        raise ExecutorLost(
                            f"hierarchical leader {leader} heard nothing "
                            f"from member rank {r} on channel {p} for "
                            f"{recv_timeout:g}s") from exc
                    contrib[p][origin] = local

        members = [comm._track(env.process(member_proc(r),
                                           name=f"hier:member{r}"))
                   for r in range(n)]
        gathers = [comm._track(env.process(leader_gather(bi),
                                           name=f"hier:gather{bi}"))
                   for bi in range(len(blocks))]
        for proc in members:
            yield proc
        for proc in gathers:
            yield proc

        def walk(p: int, j: int):
            # Host runs of the chain j, j+1, ..., j+n-1 (mod n); the
            # start host may appear twice (its suffix opens the chain,
            # its prefix closes it).
            runs: List[Tuple[int, List[int]]] = []
            for s in range(n):
                r = (j + s) % n
                bi = block_of[r]
                if runs and runs[-1][0] == bi:
                    runs[-1][1].append(r)
                else:
                    runs.append((bi, [r]))
            acc: Any = None
            cur_leader: Optional[int] = None
            for hop, (bi, run) in enumerate(runs):
                leader = leader_of_block[bi]
                if cur_leader is not None and leader != cur_leader:
                    tag = (channel_str(("hw", p, j)), hop)
                    began = env.now
                    tracing = bus is not None and bus.active
                    send_bytes = sim_sizeof(acc) if tracing else 0.0
                    yield from fabric.send(cur_leader, leader, acc, tag=tag)
                    try:
                        acc = yield from fabric.recv(leader, tag=tag,
                                                     timeout=recv_timeout)
                    except RecvTimeout as exc:
                        raise ExecutorLost(
                            f"hierarchical segment {p * n + j} lost its "
                            f"accumulator between leaders {cur_leader} and "
                            f"{leader}") from exc
                else:
                    began = env.now
                    tracing = bus is not None and bus.active
                    send_bytes = 0.0
                cur_leader = leader
                merged_bytes = 0.0
                for r in run:
                    value = contrib[p][r][j]
                    if acc is None:
                        acc = value
                    else:
                        acc = reduce_op(value, acc)
                        merged_bytes += sim_sizeof(acc)
                merge_time = merged_bytes / merge_bw
                if merge_time > 0:
                    yield env.timeout(merge_time)
                if tracing and bus.active:
                    bus.emit(RingHop.fast(
                        time=env.now, rank=leader,
                        executor_id=comm.ranked[leader].executor_id,
                        channel=channel_str(("hier", p)), hop=hop,
                        send_bytes=send_bytes,
                        recv_bytes=sim_sizeof(acc) if tracing else 0.0,
                        began=began, merge_time=merge_time,
                        span_id=bus.tracer.new_span(),
                        parent_span_id=comm.span_id))
            return cur_leader, p * n + j, acc

        walks = [comm._track(env.process(walk(p, j), name=f"hier:c{p}s{j}"))
                 for p in range(p_total) for j in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in walks:
            leader, global_idx, segment = yield proc
            owned.setdefault(leader, {})[global_idx] = segment
        return owned


register_collective(RingCollective())
register_collective(PipelinedRingCollective())
register_collective(HalvingDoublingCollective())
register_collective(HierarchicalCollective())
