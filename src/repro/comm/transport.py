"""Transport characterizations: MPI-grade, JeroMQ-grade, BlockManager-grade.

The paper measures three messaging stacks (Figure 12, one-way latency on
BIC):

* **MPI** (MPICH 3.2 over IPoIB) — 15.94 us; the reference "closest to
  optimal network performance". A native stack also drives the NIC at line
  rate with a single stream.
* **Scalable communicator** (JeroMQ, pure-JVM ZeroMQ) — 72.73 us, 4.56x
  MPI. A JVM TCP socket is additionally capped well below the NIC rate,
  which is why the PDR topology uses parallel channels (Figure 13).
* **BlockManager messaging** (the authors' first attempt, adapting Spark's
  block transfer service) — 3861.25 us, 242x MPI; the measurement that
  justified building the scalable communicator from scratch (§4.1).

A :class:`TransportSpec` bundles the per-message software overhead and the
per-stream bandwidth cap; the :class:`~repro.cluster.network.Network`
charges both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.config import ClusterConfig

__all__ = [
    "TransportSpec",
    "mpi_transport",
    "sc_transport",
    "bm_transport",
]


@dataclass(frozen=True)
class TransportSpec:
    """Cost profile of one messaging stack."""

    #: human-readable stack name ("MPI", "SC", "BM")
    name: str
    #: per-message software overhead at the sender, seconds
    overhead: float
    #: per-stream bandwidth cap in bytes/s; ``None`` = platform TCP default
    stream_bandwidth: Optional[float]
    #: whether the stack suffers JVM GC drag on large messages
    gc_prone: bool = True
    #: per-channel rate cap on the intra-node (loopback) path; ``None`` =
    #: platform default for JVM stacks. Native MPI uses shared memory and
    #: passes the aggregate loopback rate instead.
    loopback_stream_bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ValueError(f"negative overhead: {self.overhead}")
        if self.stream_bandwidth is not None and self.stream_bandwidth <= 0:
            raise ValueError(
                f"stream bandwidth must be positive, got {self.stream_bandwidth}"
            )


def mpi_transport(config: ClusterConfig) -> TransportSpec:
    """Native MPI: lowest overhead, one stream saturates the NIC."""
    return TransportSpec("MPI", config.mpi_overhead,
                         stream_bandwidth=config.nic_bandwidth,
                         gc_prone=False,
                         loopback_stream_bandwidth=config.loopback_bandwidth)


def sc_transport(config: ClusterConfig) -> TransportSpec:
    """The scalable communicator's JVM messaging (JeroMQ-grade)."""
    return TransportSpec(
        "SC", config.sc_overhead, stream_bandwidth=None,
        loopback_stream_bandwidth=config.loopback_stream_bandwidth)


def bm_transport(config: ClusterConfig) -> TransportSpec:
    """Spark BlockManager adapted for point-to-point messaging."""
    return TransportSpec(
        "BM", config.bm_overhead, stream_bandwidth=None,
        loopback_stream_bandwidth=config.loopback_stream_bandwidth)
