"""Ring-based collectives and the PDR scalable communicator.

This module implements §4.1–4.2 of the paper:

* :func:`ring_reduce_scatter_rank` — the per-rank process of the classic
  bandwidth-optimal ring reduce-scatter (Patarasuk & Yuan; paper Figure 11):
  ``N - 1`` iterations, each sending the *current value* of one segment to
  the next neighbour while merging the segment received from the previous
  neighbour.
* :class:`ScalableCommunicator` — executors arranged in a *parallel
  directed ring* (PDR, Figure 10): executors ranked 0..N-1 (sorted by
  hostname when topology-aware), with ``parallelism`` independent channels
  per hop. Channel ``p`` reduce-scatters global segments
  ``[p*N, (p+1)*N - 1]``, so the aggregator is split into ``N * P``
  segments total, exactly as §4.2 describes.

All payload arithmetic is real (the reduce op runs on actual arrays); the
merge CPU cost is charged at the platform's ``merge_bandwidth``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..cluster.placement import Cluster, ExecutorSlot
from ..obs import (
    EventBus,
    MessageDelivered,
    MessageSent,
    RingHop,
    SegmentRepresentation,
    channel_str,
)
from ..rdd.executor import ExecutorLost
from ..serde import (
    SerdeModel,
    density_of,
    representation_of,
    sim_dense_sizeof,
    sim_sizeof,
)
from ..sim import Environment, Process
from .fabric import CommFabric, RecvTimeout
from .transport import TransportSpec, sc_transport

__all__ = [
    "ring_reduce_scatter_rank",
    "ring_allgather_rank",
    "pipelined_ring_reduce_scatter_rank",
    "chunk_columns_for",
    "ChunkLedger",
    "ScalableCommunicator",
]

ReduceOp = Callable[[Any, Any], Any]
SplitOp = Callable[[Any, int, int], Any]
ConcatOp = Callable[[Sequence[Any]], Any]


def ring_reduce_scatter_rank(
    fabric: CommFabric,
    rank: int,
    size: int,
    segments: Dict[int, Any],
    reduce_op: ReduceOp,
    merge_bandwidth: float,
    channel: Any = 0,
    bus: Optional[EventBus] = None,
    executor_id: int = -1,
    private: bool = False,
    recv_timeout: Optional[float] = None,
    parent_span: int = -1,
) -> Generator:
    """Per-rank ring reduce-scatter over ``size`` ranks (one channel).

    ``segments`` maps local segment index ``0..size-1`` to this rank's
    contribution. Returns ``(owned_index, fully_reduced_segment)`` where
    ``owned_index == (rank + 1) % size``. With ``private=True`` the caller
    guarantees nobody else reads ``segments`` and the defensive copy is
    skipped (the dict is updated in place as segments merge).

    At iteration ``k`` rank ``r`` sends its current value of segment
    ``(r - k) mod N`` to rank ``(r + 1) mod N`` and merges the incoming
    segment ``(r - k - 1) mod N`` from rank ``(r - 1) mod N``; after
    ``N - 1`` iterations each segment has traversed the whole ring.

    With ``bus`` attached, each iteration emits one :class:`RingHop`
    spanning send-off to send-drained, tagged with ``executor_id`` and
    carrying the wire representation of both segments; a merge whose
    result changes representation (the adaptive sparse -> dense switch)
    additionally emits one :class:`SegmentRepresentation`.

    ``recv_timeout`` bounds each hop's wait for the upstream neighbour;
    silence past the deadline surfaces as
    :class:`~repro.rdd.executor.ExecutorLost` — the caller tears the ring
    down and rebuilds over the survivors. ``None`` (the default) waits
    forever and costs no extra simulation events.
    """
    env = fabric.env
    n = size
    if n == 1:
        return 0, segments[0]
    nxt = (rank + 1) % n
    current = segments if private else dict(segments)
    channel_key = channel_str(channel)
    for k in range(n - 1):
        send_idx = (rank - k) % n
        recv_idx = (rank - k - 1) % n
        tag = (channel, k)
        tracing = bus is not None and bus.active
        began = env.now
        if tracing:
            send_bytes = sim_sizeof(current[send_idx])
            send_dense = sim_dense_sizeof(current[send_idx])
            send_repr = representation_of(current[send_idx])
            local_repr = representation_of(current[recv_idx])
        else:
            send_bytes = send_dense = 0.0
            send_repr = local_repr = "dense"
        in_flight = fabric.isend(rank, nxt, current[send_idx], tag=tag)
        try:
            incoming = yield from fabric.recv(rank, tag=tag,
                                              timeout=recv_timeout)
        except RecvTimeout as exc:
            prev = (rank - 1) % n
            raise ExecutorLost(
                f"ring rank {rank} heard nothing from rank {prev} on "
                f"channel {channel_key} hop {k} for {recv_timeout:g}s"
            ) from exc
        recv_bytes = sim_sizeof(incoming) if tracing else 0.0
        merged = reduce_op(current[recv_idx], incoming)
        merge_cost = sim_sizeof(merged) / merge_bandwidth
        if merge_cost > 0:
            yield env.timeout(merge_cost)
        current[recv_idx] = merged
        # The channel is a single connection: do not start iteration k+1's
        # send until iteration k's has fully left.
        yield in_flight
        if tracing and bus.active:
            recv_repr = representation_of(incoming)
            merged_repr = representation_of(merged)
            hop_span = bus.tracer.new_span()
            bus.emit(RingHop.fast(time=env.now, rank=rank,
                             executor_id=executor_id,
                             channel=channel_key, hop=k,
                             send_bytes=send_bytes, recv_bytes=recv_bytes,
                             began=began, merge_time=merge_cost,
                             send_repr=send_repr, recv_repr=recv_repr,
                             send_dense_bytes=send_dense,
                             span_id=hop_span, parent_span_id=parent_span))
            if merged_repr != local_repr:
                bus.emit(SegmentRepresentation(
                    time=env.now, site="ring", executor_id=executor_id,
                    rank=rank, channel=channel_key, hop=k,
                    from_repr=local_repr, to_repr=merged_repr,
                    nnz=int(getattr(merged, "nnz", 0)),
                    length=len(merged) if hasattr(merged, "__len__") else 0,
                    density=density_of(merged),
                    wire_bytes=sim_sizeof(merged),
                    dense_bytes=sim_dense_sizeof(merged),
                    span_id=bus.tracer.new_span(),
                    parent_span_id=hop_span))
    owned = (rank + 1) % n
    return owned, current[owned]


def ring_allgather_rank(
    fabric: CommFabric,
    rank: int,
    size: int,
    owned_index: int,
    owned_value: Any,
    channel: Any = "ag",
    bus: Optional[EventBus] = None,
    executor_id: int = -1,
    recv_timeout: Optional[float] = None,
    parent_span: int = -1,
) -> Generator:
    """Per-rank ring allgather: circulate owned segments to every rank.

    Returns a dict mapping segment index -> value with all ``size``
    segments. Combined with :func:`ring_reduce_scatter_rank` this yields
    the bandwidth-optimal ring allreduce.
    """
    env = fabric.env
    n = size
    if n == 1:
        return {owned_index: owned_value}
    nxt = (rank + 1) % n
    have: Dict[int, Any] = {owned_index: owned_value}
    carry_idx, carry_val = owned_index, owned_value
    channel_key = channel_str(channel)
    for k in range(n - 1):
        tag = (channel, k)
        tracing = bus is not None and bus.active
        began = env.now
        send_bytes = sim_sizeof(carry_val) if tracing else 0.0
        in_flight = fabric.isend(rank, nxt, (carry_idx, carry_val), tag=tag)
        try:
            carry_idx, carry_val = yield from fabric.recv(
                rank, tag=tag, timeout=recv_timeout)
        except RecvTimeout as exc:
            raise ExecutorLost(
                f"allgather rank {rank} heard nothing from rank "
                f"{(rank - 1) % n} on hop {k} for {recv_timeout:g}s"
            ) from exc
        have[carry_idx] = carry_val
        yield in_flight
        if tracing and bus.active:
            bus.emit(RingHop.fast(time=env.now, rank=rank,
                             executor_id=executor_id,
                             channel=channel_key, hop=k,
                             send_bytes=send_bytes,
                             recv_bytes=sim_sizeof(carry_val),
                             began=began, merge_time=0.0,
                             span_id=bus.tracer.new_span(),
                             parent_span_id=parent_span))
    return have


def chunk_columns_for(segment: Any, chunk_bytes: Optional[float]) -> int:
    """Chunk-column count for ring segments shaped like ``segment``.

    ``ceil(dense_bytes / chunk_bytes)``, clamped to the segment's element
    count so no column is empty. Values without the chunk protocol
    (``chunk_split`` / ``chunk_concat``) degrade to 1 — a single column
    *is* the classic ring, so the pipelined algorithm stays universal.
    Every rank must compute the same count, which holds whenever ranks
    hold equally-shaped aggregators (the split-aggregation contract).
    """
    if not chunk_bytes or chunk_bytes <= 0:
        return 1
    if not hasattr(segment, "chunk_split"):
        return 1
    columns = int(math.ceil(sim_dense_sizeof(segment) / chunk_bytes))
    try:
        length = len(segment)
    except TypeError:
        length = 1
    return max(1, min(columns, length))


class ChunkLedger:
    """Per-chunk delivery fence for fault-tolerant pipelined rings.

    Each chunk column of each channel runs as an independent sub-ring; a
    rank that finishes its column records ``(owned_index, value)`` here
    *inside the column process*, so completions survive an abort that
    tears the parent rank process down mid-join. A column is
    **acknowledged** once every rank of the bound topology recorded it —
    the ledger is driver-shared state, so all ranks of a rebuilt ring
    make the same skip decision. On a rebuild bound to the same key
    (same ring membership, same lineage epoch), acknowledged columns are
    not replayed: each rank supplies its recorded slice with zero wire
    and merge cost, and only unacknowledged columns re-run. Binding a
    *different* key (an executor died and its partials were recomputed,
    changing holder values, or the surviving topology shrank) discards
    every record — stale slices must never leak across epochs.
    """

    def __init__(self) -> None:
        #: identity of the attempt family the records belong to
        self.key: Any = None
        #: ranks in the bound topology (ack quorum size)
        self.size: int = 0
        self._done: Dict[Any, Dict[int, Any]] = {}

    def bind(self, key: Any, size: int) -> None:
        """Adopt ``key``; clears all records if it differs from the bound
        one. Call before every (re)attempt."""
        if key != self.key or size != self.size:
            self.key = key
            self.size = size
            self._done.clear()

    def record(self, channel: Any, column: int, rank: int,
               owned: int, value: Any) -> None:
        self._done.setdefault((channel, column), {})[rank] = (owned, value)

    def acknowledged(self, channel: Any, column: int) -> bool:
        """True when every rank finished this column (safe to skip)."""
        entry = self._done.get((channel, column))
        return entry is not None and len(entry) == self.size > 0

    def recall(self, channel: Any, column: int, rank: int) -> Any:
        """The ``(owned_index, value)`` this rank recorded for a column."""
        return self._done[(channel, column)][rank]

    def acknowledged_columns(self) -> int:
        """How many columns are currently fully acknowledged."""
        return sum(1 for entry in self._done.values()
                   if len(entry) == self.size > 0)


def pipelined_ring_reduce_scatter_rank(
    fabric: CommFabric,
    rank: int,
    size: int,
    segments: Dict[int, Any],
    reduce_op: ReduceOp,
    merge_bandwidth: float,
    num_chunks: int,
    channel: Any = 0,
    bus: Optional[EventBus] = None,
    executor_id: int = -1,
    recv_timeout: Optional[float] = None,
    parent_span: int = -1,
    track: Optional[Callable[[Process], Process]] = None,
    ledger: Optional[ChunkLedger] = None,
) -> Generator:
    """Per-rank chunked ring reduce-scatter: ``num_chunks`` concurrent
    sub-rings over elementwise chunk columns of the channel's segments.

    Column ``c`` runs the *unchanged* :func:`ring_reduce_scatter_rank`
    over ``chunk_split(c, num_chunks)`` of every segment, on its own
    fabric channel ``(channel, c)``. Because a chunk is an elementwise
    slice and every column folds in classic ring order, the concatenated
    result is bit-identical to the classic ring — the columns only let
    one column's merge CPU overlap another's wire time. ``segments`` must
    be private to this call (chunk views alias the caller's values but
    merges never mutate unowned inputs).

    Returns ``(owned_index, segment)`` exactly like the classic ring.
    ``track`` (e.g. ``ScalableCommunicator._track``) registers the column
    processes for abort teardown. ``ledger`` is the per-chunk delivery
    fence: finished columns are recorded as they complete, and columns
    the whole bound topology already acknowledged are *skipped* — the
    rank supplies its recorded slice instead of replaying the sub-ring.
    """
    env = fabric.env
    if size == 1:
        return 0, segments[0]

    def column(c: int, col_segments: Dict[int, Any],
               col_channel: Any) -> Generator:
        result = yield from ring_reduce_scatter_rank(
            fabric, rank, size, col_segments, reduce_op, merge_bandwidth,
            channel=col_channel, bus=bus, executor_id=executor_id,
            private=True, recv_timeout=recv_timeout,
            parent_span=parent_span)
        if ledger is not None:
            # Record inside the column process: an abort that interrupts
            # the parent's join must not lose a completed column.
            ledger.record(channel, c, rank, result[0], result[1])
        return result

    if num_chunks <= 1:
        if ledger is not None and ledger.acknowledged(channel, 0):
            return ledger.recall(channel, 0, rank)
        result = yield from column(0, segments, (channel, 0))
        return result
    owned = (rank + 1) % size
    parts_by_col: Dict[int, Any] = {}
    pending: List[Any] = []
    for c in range(num_chunks):
        if ledger is not None and ledger.acknowledged(channel, c):
            col_owned, part = ledger.recall(channel, c, rank)
            if col_owned != owned:  # pragma: no cover - structural invariant
                raise RuntimeError(
                    f"ledger column owns segment {col_owned}, "
                    f"expected {owned}")
            parts_by_col[c] = part
            continue
        col_segments = {
            j: seg.chunk_split(c, num_chunks)
            for j, seg in segments.items()
        }
        proc = env.process(column(c, col_segments, (channel, c)),
                           name=f"pc:r{rank}ch{channel_str(channel)}k{c}")
        pending.append((c, track(proc) if track is not None else proc))
    for c, proc in pending:
        col_owned, part = yield proc
        if col_owned != owned:  # pragma: no cover - structural invariant
            raise RuntimeError(
                f"chunk column owns segment {col_owned}, expected {owned}")
        parts_by_col[c] = part
    parts = [parts_by_col[c] for c in range(num_chunks)]
    return owned, parts[0].chunk_concat(parts)


class ScalableCommunicator:
    """The paper's scalable communicator: a parallel directed ring (PDR).

    Parameters
    ----------
    cluster:
        The simulated cluster whose executors form the ring.
    parallelism:
        Number of parallel channels (and reduce-scatter threads) per
        executor; the paper uses 4 after the Figure 14 sweep.
    topology_aware:
        Rank executors by hostname (True, the paper's default after Figure
        14) or by executor id (registration order).
    transport:
        Messaging stack; defaults to the JeroMQ-grade SC transport.
    slots:
        Restrict the ring to a subset of executors (scalability sweeps).
    bus:
        Optional :class:`~repro.obs.EventBus`; when attached, every fabric
        message and every ring-hop span is traced.
    faults:
        Optional link-fault policy forwarded to the fabric (see
        :class:`CommFabric`).
    recv_timeout:
        Failure-detection deadline applied to every ring hop's recv;
        ``None`` (the default) disables detection and schedules nothing.
    """

    def __init__(self, cluster: Cluster, parallelism: int = 4,
                 topology_aware: bool = True,
                 transport: Optional[TransportSpec] = None,
                 slots: Optional[Sequence[ExecutorSlot]] = None,
                 bus: Optional[EventBus] = None,
                 faults: Any = None,
                 recv_timeout: Optional[float] = None):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.parallelism = parallelism
        self.topology_aware = topology_aware
        self.transport = transport or sc_transport(cluster.config)
        self.serde = SerdeModel.from_config(cluster.config)
        self.bus = bus
        self.recv_timeout = recv_timeout

        chosen = list(slots) if slots is not None else list(cluster.executors)
        if not chosen:
            raise ValueError("communicator needs at least one executor")
        if topology_aware:
            chosen.sort(key=lambda s: (s.hostname, s.executor_id))
        else:
            chosen.sort(key=lambda s: s.executor_id)
        self.ranked: List[ExecutorSlot] = chosen
        self.size = len(chosen)

        self.fabric = CommFabric(cluster.network, self.transport, bus=bus,
                                 faults=faults)
        for rank, slot in enumerate(self.ranked):
            self.fabric.register(rank, slot.node)
        #: causal span of the collective driving this communicator; stamps
        #: every hop and fabric message (see :meth:`set_span`)
        self.span_id = -1
        #: every process this communicator spawned (for :meth:`abort`)
        self._procs: List[Process] = []
        #: cause of the abort, or None while healthy
        self.aborted: Optional[str] = None
        #: optional per-chunk delivery fence shared across rebuild
        #: attempts of one aggregation (see :class:`ChunkLedger`)
        self.ledger: Optional[ChunkLedger] = None

    def set_span(self, span_id: int) -> None:
        """Adopt ``span_id`` as the causal parent of everything this
        communicator does (ring hops, fabric messages, gather shipments)."""
        self.span_id = span_id
        self.fabric.parent_span = span_id

    def _track(self, proc: Process) -> Process:
        self._procs.append(proc)
        return proc

    def abort(self, cause: str = "communicator aborted") -> None:
        """Tear the collective down: interrupt every spawned process.

        Without this, the surviving ranks of a failed collective keep
        exchanging segments forever (or until their recv deadlines fire),
        consuming NIC bandwidth that would perturb the rebuilt ring.
        Idempotent; safe to call when nothing was spawned.
        """
        self.aborted = cause
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.is_alive:
                proc.interrupt(cause)

    # -------------------------------------------------------------- topology
    def rank_of(self, executor_id: int) -> int:
        """Ring rank of the executor with ``executor_id``."""
        for rank, slot in enumerate(self.ranked):
            if slot.executor_id == executor_id:
                return rank
        raise KeyError(f"executor {executor_id} is not in this communicator")

    @property
    def num_segments(self) -> int:
        """Total segments an aggregator is split into (``N * P``)."""
        return self.size * self.parallelism

    def segment_owner(self, global_index: int) -> int:
        """Ring rank that owns ``global_index`` after reduce-scatter."""
        if not 0 <= global_index < self.num_segments:
            raise IndexError(global_index)
        local = global_index % self.size
        # Owner of local index j is rank (j - 1) mod N (rank r owns (r+1)%N).
        return (local - 1) % self.size

    # ------------------------------------------------------------ collectives
    def reduce_scatter(self, values: Sequence[Any], split_op: SplitOp,
                       reduce_op: ReduceOp) -> Generator:
        """Process body: reduce-scatter ``values`` across the ring.

        ``values[rank]`` is the aggregator held by ring rank ``rank``.
        Returns ``owned`` — a dict mapping ring rank to a dict of
        ``{global_segment_index: reduced_segment}`` (each rank owns
        ``parallelism`` global segments).
        """
        if len(values) != self.size:
            raise ValueError(
                f"expected {self.size} values (one per rank), got {len(values)}"
            )
        env = self.env
        n, p_total = self.size, self.parallelism
        merge_bw = self.cluster.config.merge_bandwidth

        def rank_proc(rank: int):
            value = values[rank]
            num = self.num_segments
            channel_procs = []
            for p in range(p_total):
                local_segments = {
                    j: split_op(value, p * n + j, num) for j in range(n)
                }
                channel_procs.append(self._track(env.process(
                    ring_reduce_scatter_rank(
                        self.fabric, rank, n, local_segments, reduce_op,
                        merge_bw, channel=p, bus=self.bus,
                        executor_id=self.ranked[rank].executor_id,
                        # local_segments was built here and never re-read:
                        # skip the defensive copy.
                        private=True,
                        recv_timeout=self.recv_timeout,
                        parent_span=self.span_id),
                    name=f"rs:r{rank}c{p}",
                )))
            results: Dict[int, Any] = {}
            for p, proc in enumerate(channel_procs):
                local_idx, segment = yield proc
                results[p * n + local_idx] = segment
            return rank, results

        procs = [self._track(env.process(rank_proc(r), name=f"rs:rank{r}"))
                 for r in range(n)]
        owned: Dict[int, Dict[int, Any]] = {}
        for proc in procs:
            rank, results = yield proc
            owned[rank] = results
        return owned

    def gather_concat(self, owned: Dict[int, Dict[int, Any]],
                      concat_op: ConcatOp) -> Generator:
        """Process body: gather owned segments to the driver and concat.

        Models the paper's second step ("use action collect provided by
        Spark"): each rank serializes its segments, ships them to the
        driver, the driver deserializes and concatenates in global segment
        order. Returns the concatenated value.
        """
        env = self.env
        driver = self.cluster.driver_node
        network = self.cluster.network
        collected: Dict[int, Any] = {}

        def ship(rank: int, results: Dict[int, Any]):
            slot = self.ranked[rank]
            bus = self.bus
            total = sum(sim_sizeof(v) for v in results.values())
            yield env.timeout(self.serde.ser_time_bytes(total))
            sent_at = env.now
            msg_span = -1
            if bus is not None and bus.active:
                msg_span = bus.tracer.new_span()
                bus.emit(MessageSent(
                    time=sent_at, transport=self.transport.name, src=rank,
                    dst=-1, channel="gather", hop=rank, nbytes=total,
                    span_id=msg_span, parent_span_id=self.span_id))
            yield from network.transfer(slot.node, driver, total)
            arrived_at = env.now
            yield env.timeout(self.serde.deser_time_bytes(total))
            if bus is not None and bus.active:
                bus.emit(MessageDelivered(
                    time=env.now, transport=self.transport.name, src=rank,
                    dst=-1, channel="gather", hop=rank, nbytes=total,
                    queue_wait=env.now - arrived_at,
                    flight_time=arrived_at - sent_at,
                    span_id=msg_span, parent_span_id=self.span_id))
            for idx, value in results.items():
                collected[idx] = value

        shippers = [self._track(env.process(ship(rank, results),
                                            name=f"gather:r{rank}"))
                    for rank, results in sorted(owned.items())]
        for proc in shippers:
            yield proc
        ordered = [collected[idx] for idx in sorted(collected)]
        total_bytes = sum(sim_sizeof(v) for v in ordered)
        # Concatenation is one pass over the result at memory bandwidth.
        yield env.timeout(total_bytes / self.cluster.config.merge_bandwidth)
        return concat_op(ordered)

    def reduce_scatter_gather(self, values: Sequence[Any], split_op: SplitOp,
                              reduce_op: ReduceOp, concat_op: ConcatOp,
                              algorithm: Optional[str] = None) -> Generator:
        """Process body: full scalable reduction (reduce-scatter + gather).

        ``algorithm`` selects the reduce-scatter strategy by registry name
        (see :mod:`repro.comm.collectives`); ``None`` or ``"ring"`` runs
        the built-in PDR ring. Every algorithm is bit-identical — the
        gather ships whatever ranks own and concatenates in global segment
        order, so only message schedule and virtual time differ.
        """
        if algorithm in (None, "ring"):
            owned = yield self._track(self.env.process(
                self.reduce_scatter(values, split_op, reduce_op)))
        else:
            from .collectives import get_collective
            algo = get_collective(algorithm)
            algo.validate(self)
            owned = yield self._track(self.env.process(
                algo.reduce_scatter(self, values, split_op, reduce_op)))
        result = yield self._track(self.env.process(
            self.gather_concat(owned, concat_op)))
        return result

    def allreduce(self, values: Sequence[Any], split_op: SplitOp,
                  reduce_op: ReduceOp, concat_op: ConcatOp) -> Generator:
        """Process body: ring allreduce (reduce-scatter + ring allgather).

        An extension beyond the paper's driver-gather: every rank ends with
        the full reduced value. Returns a list indexed by ring rank.
        """
        owned = yield self.env.process(
            self.reduce_scatter(values, split_op, reduce_op))
        env = self.env
        n, p_total = self.size, self.parallelism

        def rank_proc(rank: int):
            mine = owned[rank]
            chans = []
            for p in range(p_total):
                entries = [(idx, val) for idx, val in mine.items()
                           if idx // n == p]
                (global_idx, value), = entries
                chans.append(self._track(env.process(ring_allgather_rank(
                    self.fabric, rank, n, global_idx % n, value,
                    channel=("ag", p), bus=self.bus,
                    executor_id=self.ranked[rank].executor_id,
                    recv_timeout=self.recv_timeout,
                    parent_span=self.span_id),
                    name=f"ag:r{rank}c{p}")))
            everything: Dict[int, Any] = {}
            for p, proc in enumerate(chans):
                have = yield proc
                for local_idx, value in have.items():
                    everything[p * n + local_idx] = value
            ordered = [everything[i] for i in sorted(everything)]
            return rank, concat_op(ordered)

        procs = [self._track(env.process(rank_proc(r))) for r in range(n)]
        out: List[Any] = [None] * n
        for proc in procs:
            rank, value = yield proc
            out[rank] = value
        return out
