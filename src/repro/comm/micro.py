"""Point-to-point micro-benchmark helpers (paper Figures 12 and 13).

These run the same measurement loops as the paper's micro-benchmarks —
ping-pong latency and multi-channel streaming throughput between a pair of
executors on different nodes — against any transport. They return plain
numbers; the figure-level benches in ``benchmarks/`` format them.
"""

from __future__ import annotations

import numpy as np

from ..cluster.placement import Cluster
from ..serde import SizedPayload
from ..sim import Environment
from .fabric import CommFabric
from .transport import TransportSpec

__all__ = ["measure_latency", "measure_throughput"]


def _pair_fabric(cluster: Cluster, transport: TransportSpec) -> CommFabric:
    """A fabric with ranks 0/1 on two executors of *different* nodes."""
    if len(cluster.nodes) < 2:
        raise ValueError("point-to-point benchmarks need at least two nodes")
    fabric = CommFabric(cluster.network, transport)
    first = next(s for s in cluster.executors if s.node is cluster.nodes[0])
    second = next(s for s in cluster.executors if s.node is cluster.nodes[1])
    fabric.register(0, first.node)
    fabric.register(1, second.node)
    return fabric


def measure_latency(cluster: Cluster, transport: TransportSpec,
                    nbytes: float = 1.0, rounds: int = 10) -> float:
    """One-way message latency in seconds (ping-pong / 2, averaged)."""
    fabric = _pair_fabric(cluster, transport)
    env: Environment = cluster.env
    proc = env.process(fabric.ping_pong(0, 1, nbytes=nbytes, rounds=rounds))
    elapsed = env.run(until=proc)
    return elapsed / (2 * rounds)


def measure_throughput(cluster: Cluster, transport: TransportSpec,
                       nbytes: float, parallelism: int = 1,
                       physical_elems: int = 1024,
                       rounds: int = 3) -> float:
    """Streaming throughput in bytes/second for ``nbytes`` messages.

    ``parallelism`` channels each carry ``nbytes / parallelism`` per round
    (the PDR design: multiple sockets to fill the NIC); ``rounds``
    back-to-back messages amortize latency like the OSU benchmark's window.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    if nbytes <= 0:
        raise ValueError(f"message size must be positive, got {nbytes}")
    fabric = _pair_fabric(cluster, transport)
    env: Environment = cluster.env
    chunk = SizedPayload(np.zeros(max(1, physical_elems // parallelism)),
                         sim_bytes=nbytes / parallelism)

    def channel(p: int):
        for r in range(rounds):
            yield from fabric.send(0, 1, chunk, tag=("tp", p, r))

    began = env.now
    procs = [env.process(channel(p)) for p in range(parallelism)]
    for proc in procs:
        env.run(until=proc)
    elapsed = env.now - began
    if elapsed <= 0:
        raise RuntimeError("throughput measurement elapsed no time")
    return nbytes * rounds / elapsed
