"""Point-to-point message fabric between ranked endpoints.

A :class:`CommFabric` binds a set of integer *ranks* to cluster nodes and
moves tagged messages between them through the simulated network using one
:class:`~repro.comm.transport.TransportSpec`. It provides the MPI-flavoured
primitives every collective in this package is built from:

* ``send(src, dst, payload, tag)`` — generator; completes when delivered,
* ``isend(...)`` — non-blocking variant returning a completion event,
* ``recv(rank, tag)`` — generator; completes with the payload.

Messages carry *real* Python payloads (NumPy-backed segments), so every
collective's result is checkable against a sequential reference. Message
cost is driven by :func:`~repro.serde.sim_sizeof` of the payload, which
respects the ``__sim_size__`` protocol used by scaled payloads.

Matching is by ``(dst, tag)`` with FIFO order per tag — exactly enough for
the deterministic collectives here (each (sender, tag) pair is unique in
every algorithm, so no reordering ambiguity exists).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Hashable, Optional, Tuple

from ..cluster.network import Network
from ..cluster.node import Node
from ..obs import EventBus, MessageDelivered, MessageSent, channel_str
from ..serde import sim_sizeof
from ..sim import Store, any_of
from ..sim.events import Event
from .transport import TransportSpec

__all__ = ["CommFabric", "RecvTimeout"]


class RecvTimeout(Exception):
    """``recv`` heard nothing within its timeout (peer dead or message lost)."""

    def __init__(self, rank: int, tag: Any, timeout: float):
        super().__init__(
            f"recv on rank {rank} tag {tag!r} timed out after {timeout:g}s")
        self.rank = rank
        self.tag = tag
        self.timeout = timeout


#: memoized tag -> (channel, hop); tags repeat across iterations, and the
#: string building would otherwise run once per traced message
_TAG_CACHE: Dict[Hashable, Tuple[str, Optional[int]]] = {}


def _tag_channel_hop(tag: Hashable) -> Tuple[str, Optional[int]]:
    """Split a message tag into a channel name and an optional hop index.

    Every collective here tags messages ``(channel, iteration)``; other
    users pass flat tags, which map to a channel with no hop.
    """
    parsed = _TAG_CACHE.get(tag)
    if parsed is None:
        if (isinstance(tag, tuple) and len(tag) == 2
                and isinstance(tag[1], int)):
            parsed = channel_str(tag[0]), tag[1]
        else:
            parsed = channel_str(tag), None
        if len(_TAG_CACHE) < 65536:
            _TAG_CACHE[tag] = parsed
    return parsed


class CommFabric:
    """Tagged point-to-point messaging between ranked endpoints.

    ``bus`` (optional) receives a :class:`MessageSent` per ``send`` and a
    :class:`MessageDelivered` per ``recv`` — including the mailbox dwell
    time between arrival and consumption. Tracing never alters message
    timing: mailbox entries always carry the same metadata tuple whether
    or not a bus is attached.

    ``faults`` (optional) is a link-fault policy — an object exposing
    ``message_fault(src, dst, channel, hop, nbytes)`` returning ``None``
    (deliver normally), ``("drop", 0.0)`` (the bytes cross the wire but
    the message never reaches the mailbox) or ``("delay", extra)``
    (delivery is postponed ``extra`` seconds). With ``faults=None`` no
    policy call happens at all, so an unarmed fabric is bit-identical to
    one that predates fault injection.
    """

    def __init__(self, network: Network, transport: TransportSpec,
                 bus: Optional[EventBus] = None, faults: Any = None):
        self.network = network
        self.transport = transport
        self.bus = bus
        self.faults = faults
        self.env = network.env
        self._nodes: Dict[int, Node] = {}
        self._mailboxes: Dict[Tuple[int, Hashable], Store] = {}
        #: messages delivered, for instrumentation
        self.delivered = 0
        #: messages dropped by the fault policy, for instrumentation
        self.dropped = 0
        #: causal parent stamped on traced messages (the owning collective's
        #: span); set by whoever drives the fabric, -1 when uncaused
        self.parent_span = -1

    # ---------------------------------------------------------------- set-up
    def register(self, rank: int, node: Node) -> None:
        """Bind ``rank`` to ``node``; ranks must be registered before use."""
        if rank in self._nodes:
            raise ValueError(f"rank {rank} is already registered")
        self._nodes[rank] = node

    def node_of(self, rank: int) -> Node:
        try:
            return self._nodes[rank]
        except KeyError:
            raise KeyError(f"rank {rank} is not registered") from None

    @property
    def size(self) -> int:
        """Number of registered ranks."""
        return len(self._nodes)

    def _mailbox(self, rank: int, tag: Hashable) -> Store:
        key = (rank, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.env, name=f"mbox:{rank}:{tag}")
            self._mailboxes[key] = box
        return box

    # ------------------------------------------------------------- primitives
    def send(self, src: int, dst: int, payload: Any, tag: Hashable = 0,
             nbytes: float | None = None) -> Generator:
        """Generator: move ``payload`` from ``src`` to ``dst``.

        Completes once the last byte is delivered (and the message is in the
        destination mailbox). ``nbytes`` overrides the payload's estimated
        size when the caller knows better.
        """
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        size = sim_sizeof(payload) if nbytes is None else float(nbytes)
        sent_at = self.env.now
        verdict = None
        if self.faults is not None:
            channel, hop = _tag_channel_hop(tag)
            verdict = self.faults.message_fault(src, dst, channel, hop, size)
        span = -1
        if self.bus is not None and self.bus.active:
            channel, hop = _tag_channel_hop(tag)
            span = self.bus.tracer.new_span()
            self.bus.emit(MessageSent.fast(
                time=sent_at, transport=self.transport.name, src=src,
                dst=dst, channel=channel, hop=hop, nbytes=size,
                span_id=span, parent_span_id=self.parent_span))
        yield from self.network.transfer(
            src_node, dst_node, size,
            stream_bandwidth=self.transport.stream_bandwidth,
            loopback_stream_bandwidth=(
                self.transport.loopback_stream_bandwidth),
            overhead=self.transport.overhead,
            gc_prone=self.transport.gc_prone,
        )
        if verdict is not None:
            kind, extra = verdict
            if kind == "drop":
                self.dropped += 1
                return
            if extra > 0:
                yield self.env.timeout(extra)
        self._mailbox(dst, tag).put((payload, src, size, sent_at,
                                     self.env.now, span))
        self.delivered += 1

    def isend(self, src: int, dst: int, payload: Any, tag: Hashable = 0,
              nbytes: float | None = None) -> Event:
        """Non-blocking send: returns an event firing on delivery.

        Cost model is identical to :meth:`send` (overhead + latency timeout,
        fair-shared flow, GC drag), but the pipeline is driven by event
        callbacks instead of a kernel process — ``yield``-able like the old
        process handle, at a fraction of the host cost. The per-stage float
        arithmetic is exactly the generator path's, so delivery instants are
        bit-identical.
        """
        env = self.env
        network = self.network
        transport = self.transport
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        size = sim_sizeof(payload) if nbytes is None else float(nbytes)
        sent_at = env.now
        verdict = None
        if self.faults is not None:
            channel, hop = _tag_channel_hop(tag)
            verdict = self.faults.message_fault(src, dst, channel, hop, size)
        span = -1
        if self.bus is not None and self.bus.active:
            channel, hop = _tag_channel_hop(tag)
            span = self.bus.tracer.new_span()
            self.bus.emit(MessageSent.fast(
                time=sent_at, transport=transport.name, src=src,
                dst=dst, channel=channel, hop=hop, nbytes=size,
                span_id=span, parent_span_id=self.parent_span))
        network.messages += 1
        network.bytes_transferred += size
        done = Event(env, name=f"isend:{src}->{dst}")

        def _finish(_event: Any) -> None:
            self._mailbox(dst, tag).put((payload, src, size, sent_at,
                                         env.now, span))
            self.delivered += 1
            done.succeed(None)

        if verdict is None:
            _deliver = _finish
        else:
            fault_kind, fault_extra = verdict

            def _deliver(_event: Any) -> None:
                if fault_kind == "drop":
                    self.dropped += 1
                    done.succeed(None)
                elif fault_extra > 0:
                    env.timeout(fault_extra).add_callback(_finish)
                else:
                    _finish(_event)

        def _start(_timeout: Any) -> None:
            if size == 0:
                _deliver(_timeout)
                return
            if src_node.node_id == dst_node.node_id:
                flow = network.flows.flow(
                    size, links=[src_node.loopback],
                    rate_cap=transport.loopback_stream_bandwidth)
            else:
                network.inter_node_bytes += size
                rate_cap = (transport.stream_bandwidth
                            or network.config.tcp_stream_bandwidth)
                flow = network.flows.flow(
                    size, links=[src_node.nic_out, dst_node.nic_in],
                    rate_cap=rate_cap)
            drag = network.gc_drag(size) if transport.gc_prone else 0.0
            if drag > 0:
                def _after(_flow: Any) -> None:
                    env.timeout(drag).add_callback(_deliver)

                flow.add_callback(_after)
            else:
                flow.add_callback(_deliver)

        env.timeout(
            transport.overhead + network.latency(src_node, dst_node)
        ).add_callback(_start)
        return done

    def recv(self, rank: int, tag: Hashable = 0,
             timeout: Optional[float] = None) -> Generator:
        """Generator: receive the next message for ``(rank, tag)``.

        With ``timeout`` set, raises :class:`RecvTimeout` when no message
        arrives within that many seconds — the failure-detection primitive
        recovery is built on. ``timeout=None`` (the default) waits forever
        and schedules nothing extra, so an untimed recv is bit-identical
        to the pre-fault-tolerance fabric.
        """
        box = self._mailbox(rank, tag)
        get = box.get()
        if timeout is not None and not get.triggered:
            deadline = self.env.timeout(timeout)
            yield any_of(self.env, (get, deadline))
            if not get.triggered:
                box.cancel(get)
                raise RecvTimeout(rank, tag, timeout)
            payload, src, size, sent_at, arrived_at, span = get.value
        else:
            payload, src, size, sent_at, arrived_at, span = yield get
        if self.bus is not None and self.bus.active:
            channel, hop = _tag_channel_hop(tag)
            # Same span as the matching MessageSent: the send/deliver pair
            # IS one message span, which is the happens-before edge.
            self.bus.emit(MessageDelivered.fast(
                time=self.env.now, transport=self.transport.name, src=src,
                dst=rank, channel=channel, hop=hop, nbytes=size,
                queue_wait=self.env.now - arrived_at,
                flight_time=arrived_at - sent_at,
                span_id=span, parent_span_id=self.parent_span))
        return payload

    # ------------------------------------------------------------ conveniences
    def ping_pong(self, a: int, b: int, nbytes: float = 1.0,
                  rounds: int = 1) -> Generator:
        """Generator: ``rounds`` ping-pong exchanges; returns elapsed time.

        This is the latency micro-benchmark of Figure 12: one-way latency is
        the returned elapsed time divided by ``2 * rounds``.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        env = self.env
        began = env.now

        def _responder():
            for i in range(rounds):
                msg = yield from self.recv(b, tag=("ping", i))
                yield from self.send(b, a, msg, tag=("pong", i))

        responder = env.process(_responder(), name="pingpong-responder")
        for i in range(rounds):
            yield from self.send(a, b, b"x", tag=("ping", i), nbytes=nbytes)
            yield from self.recv(a, tag=("pong", i))
        yield responder
        return env.now - began
