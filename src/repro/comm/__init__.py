"""Communication substrates: transports, fabric, ring PDR, MPI reference.

Implements §4.1 (communication infrastructure) and §4.2 (scalable
reduction) of the paper, plus the MPI baseline used throughout its
evaluation.
"""

from .collectives import (
    CollectiveAlgorithm,
    available_collectives,
    get_collective,
    register_collective,
)
from .cost import (
    CollectiveCostModel,
    CollectivePlan,
    CostCalibrator,
    choose_collective,
    cost_model_for,
)
from .fabric import CommFabric
from .micro import measure_latency, measure_throughput
from .mpi import MPICH_RS_SHORT_THRESHOLD, MpiCommunicator
from .ring import (
    ChunkLedger,
    ScalableCommunicator,
    chunk_columns_for,
    pipelined_ring_reduce_scatter_rank,
    ring_allgather_rank,
    ring_reduce_scatter_rank,
)
from .transport import TransportSpec, bm_transport, mpi_transport, sc_transport

__all__ = [
    "CommFabric",
    "TransportSpec",
    "mpi_transport",
    "sc_transport",
    "bm_transport",
    "ScalableCommunicator",
    "ChunkLedger",
    "ring_reduce_scatter_rank",
    "ring_allgather_rank",
    "pipelined_ring_reduce_scatter_rank",
    "chunk_columns_for",
    "CollectiveAlgorithm",
    "register_collective",
    "get_collective",
    "available_collectives",
    "CollectiveCostModel",
    "CollectivePlan",
    "CostCalibrator",
    "choose_collective",
    "cost_model_for",
    "MpiCommunicator",
    "MPICH_RS_SHORT_THRESHOLD",
    "measure_latency",
    "measure_throughput",
]
