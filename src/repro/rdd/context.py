"""SparkerContext: the driver-side entry point.

Owns the simulated cluster, the executors, the schedulers and trackers, and
exposes the blocking user-facing API (``parallelize`` + actions). Each
action submits a job process to the simulation and runs the event loop
until it completes, so user code reads sequentially while the cluster
simulation runs underneath — exactly the Spark driver experience.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Union

from ..cluster import Cluster, ClusterConfig
from ..obs import EventBus, PhaseSpan
from ..serde import SerdeModel, sim_sizeof
from ..sim import Environment, Resource, Stopwatch
from .accumulators import Accumulator, AccumulatorRegistry
from .broadcast import Broadcast
from .costing import ELEMENT_OVERHEAD, cost_of
from .executor import Executor
from .hostpool import HostPool
from .rdd import RDD, ParallelCollectionRDD
from .scheduler import DAGScheduler
from .shuffle import MapOutputTracker
from .storage import BlockTracker
from .task_context import TaskContext

__all__ = ["SparkerContext"]


class SparkerContext:
    """Driver for the simulated Spark/Sparker engine.

    Parameters
    ----------
    config:
        Cluster platform; defaults to the small ``laptop`` preset.
    default_parallelism:
        Partition count used when ``parallelize`` is not told otherwise;
        defaults to the cluster's total executor cores (Spark's default).
    driver_colocated:
        Place the driver on node 0 instead of a dedicated host.
    host_pool:
        Parallel host-compute backend (:class:`~repro.rdd.hostpool.HostPool`
        instance, or an int worker count). Defaults to the
        ``SPARKER_HOST_POOL`` environment variable (worker count; unset or
        ``<= 1`` leaves the serial engine untouched).
        ``SPARKER_HOST_POOL_MODE`` selects ``fork`` (default) or ``inline``.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 default_parallelism: Optional[int] = None,
                 driver_colocated: bool = False,
                 host_pool: Optional[Union[int, HostPool]] = None):
        self.config = config or ClusterConfig.laptop()
        self.env = Environment()
        #: observability fan-out (see :mod:`repro.obs`); subscribe listeners
        #: here to trace the run — with none attached nothing is recorded.
        self.event_bus = EventBus()
        #: the bus's causal span allocator (see :mod:`repro.obs.tracing`)
        self.tracer = self.event_bus.tracer
        self.cluster = Cluster(self.env, self.config,
                               driver_colocated=driver_colocated)
        self.serde = SerdeModel.from_config(self.config)
        self.block_tracker = BlockTracker()
        self.map_output_tracker = MapOutputTracker()
        self.accumulators = AccumulatorRegistry()
        self.executors: List[Executor] = [
            Executor(self, slot) for slot in self.cluster.executors
        ]
        self._executor_index: Dict[int, Executor] = {
            e.executor_id: e for e in self.executors
        }
        self.dag = DAGScheduler(self)
        # env-var resolution lives in core.spec (the engine's single
        # reader of SPARKER_* overrides)
        from ..core.spec import resolve_host_pool
        #: parallel host-compute backend; None = untouched serial engine
        self.host_pool: Optional[HostPool] = resolve_host_pool(host_pool)
        self.driver_cpu = Resource(self.env, 1, name="driver")
        self.driver_getters = Resource(self.env,
                                       self.config.driver_result_threads,
                                       name="driver-getters")
        self.stopwatch = Stopwatch(self.env, on_record=self._record_phase)
        self.default_parallelism = (default_parallelism
                                    or self.cluster.total_cores)
        self._next_rdd_id = 0
        self._next_shuffle_id = 0
        self._next_job_id = 0
        self._stopped = False
        #: armed fault controller (see :mod:`repro.faults`); None = no
        #: injection and no recovery machinery anywhere in the engine
        self.faults = None
        # local import: repro.faults.health only needs obs at module level
        from ..faults.health import ExecutorHealthRegistry
        #: per-executor failure/straggle scoring, quarantine and backoff
        #: (see :mod:`repro.faults.health`); always on, costs nothing on
        #: clean runs
        self.health = ExecutorHealthRegistry(self)
        #: speculative-execution policy (see
        #: :class:`~repro.rdd.speculation.SpeculationPolicy`); None = no
        #: straggler monitor and bit-identical scheduling to the seed
        self.speculation = None

    # ----------------------------------------------------------------- plumbing
    def _record_phase(self, key: str, seconds: float, now: float) -> None:
        """Mirror every closed stopwatch span onto the event bus."""
        if self.event_bus.active:
            tracer = self.event_bus.tracer
            self.event_bus.emit(PhaseSpan(
                time=now, key=key, seconds=seconds,
                span_id=tracer.new_span(),
                parent_span_id=tracer.current_parent))

    def _register_rdd(self, _rdd: RDD) -> int:
        rdd_id = self._next_rdd_id
        self._next_rdd_id += 1
        return rdd_id

    def shuffle_manager_new_id(self) -> int:
        shuffle_id = self._next_shuffle_id
        self._next_shuffle_id += 1
        return shuffle_id

    def new_job_id(self) -> int:
        job_id = self._next_job_id
        self._next_job_id += 1
        return job_id

    def executor_by_id(self, executor_id: int) -> Executor:
        try:
            return self._executor_index[executor_id]
        except KeyError:
            raise KeyError(f"no executor {executor_id}") from None

    @property
    def now(self) -> float:
        """Current virtual time (seconds since context creation)."""
        return self.env.now

    def driver_work(self, seconds: float) -> Generator:
        """Process body: occupy the single driver thread for ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative driver work: {seconds}")
        yield self.driver_cpu.acquire()
        try:
            if seconds > 0:
                yield self.env.timeout(seconds)
        finally:
            self.driver_cpu.release()

    def driver_fetch_work(self, seconds: float) -> Generator:
        """Process body: occupy one result-getter thread for ``seconds``.

        Spark deserializes incoming task results on a small thread pool
        (``task-result-getter``, 4 threads by default), separate from the
        single-threaded user/merge path.
        """
        if seconds < 0:
            raise ValueError(f"negative driver work: {seconds}")
        yield self.driver_getters.acquire()
        try:
            if seconds > 0:
                yield self.env.timeout(seconds)
        finally:
            self.driver_getters.release()

    # --------------------------------------------------------------- creation
    def parallelize(self, data: Sequence[Any],
                    num_slices: Optional[int] = None) -> RDD:
        """Distribute a driver-side collection."""
        if self._stopped:
            raise RuntimeError("context is stopped")
        if num_slices is None:
            num_slices = self.default_parallelism
        return ParallelCollectionRDD(self, data, num_slices)

    def range(self, n: int, num_slices: Optional[int] = None) -> RDD:
        """An RDD of ``0..n-1``."""
        return self.parallelize(range(n), num_slices)

    def accumulator(self, zero: Any = 0,
                    add_op: Optional[Callable[[Any, Any], Any]] = None,
                    name: str = "") -> Accumulator:
        """Create a write-only shared counter (Spark's accumulator).

        ``add_op`` defaults to ``+``; pass a custom associative op for
        other monoids (max, list concat, ...).
        """
        if add_op is None:
            add_op = lambda a, b: a + b  # noqa: E731
        return self.accumulators.create(self, zero, add_op, name)

    def broadcast(self, value: Any) -> Broadcast:
        """Replicate ``value`` to every node (binomial tree, blocking)."""
        bc = Broadcast(self, value)
        proc = self.env.process(self.cluster.network.broadcast_tree(
            self.cluster.driver_node, self.cluster.nodes, bc.sim_bytes))
        self.env.run(until=proc)
        return bc

    # ------------------------------------------------------------------- jobs
    def run_job(self, rdd: RDD,
                func: Callable[[int, list, TaskContext], Any],
                partitions: Optional[Sequence[int]] = None) -> list:
        """Run ``func`` over partitions and return its results (blocking)."""
        if self._stopped:
            raise RuntimeError("context is stopped")
        proc = self.env.process(self.dag.run_job(rdd, func, partitions),
                                name="job")
        return self.env.run(until=proc)

    def run_reduced_job(self, rdd: RDD,
                        func: Callable[[int, list, TaskContext], Any],
                        reduce_op: Callable[[Any, Any], Any],
                        partitions: Optional[Sequence[int]] = None,
                        detail: bool = False,
                        on_merged: Optional[Callable] = None) -> Any:
        """Run an IMM reduced-result stage (blocking).

        Returns ``[(executor_id, object_id), ...]``; read the merged values
        with ``sc.executor_by_id(eid).object_manager.get(oid)``. See
        :meth:`DAGScheduler.run_reduced_job` for ``partitions``/``detail``/
        ``on_merged``.
        """
        if self._stopped:
            raise RuntimeError("context is stopped")
        job_id = self.new_job_id()
        proc = self.env.process(
            self.dag.run_reduced_job(rdd, func, reduce_op, job_id,
                                     partitions=partitions, detail=detail,
                                     on_merged=on_merged),
            name="reduced-job")
        return self.env.run(until=proc)

    # ----------------------------------------------------------------- actions
    def collect(self, rdd: RDD) -> list:
        chunks = self.run_job(rdd, lambda _i, data, _ctx: list(data))
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        return out

    def count(self, rdd: RDD) -> int:
        return sum(self.run_job(
            rdd, lambda _i, data, ctx: (
                ctx.charge(len(data) * ELEMENT_OVERHEAD), len(data))[1]))

    def take(self, rdd: RDD, n: int) -> list:
        """First ``n`` elements, scanning partitions incrementally."""
        if n < 0:
            raise ValueError(f"take(n) needs n >= 0, got {n}")
        if n == 0:
            return []
        out: list = []
        total = rdd.num_partitions()
        scanned = 0
        wave = 1
        while scanned < total and len(out) < n:
            parts = list(range(scanned, min(total, scanned + wave)))
            for chunk in self.run_job(
                    rdd, lambda _i, data, _ctx: list(data), parts):
                out.extend(chunk)
            scanned += len(parts)
            wave *= 4  # Spark's quadruple-and-retry scan policy
        return out[:n]

    def reduce(self, rdd: RDD, op: Callable[[Any, Any], Any]) -> Any:
        def fold_partition(_i: int, data: list, ctx: TaskContext) -> Any:
            if not data:
                return None
            acc = data[0]
            for x in data[1:]:
                acc = op(acc, x)
                ctx.charge(cost_of(op, acc, x) + ELEMENT_OVERHEAD)
            return acc

        partials = [p for p in self.run_job(rdd, fold_partition)
                    if p is not None]
        if not partials:
            raise ValueError("reduce() of an empty RDD")
        return self._driver_merge(partials, op)

    def fold(self, rdd: RDD, zero: Any, op: Callable[[Any, Any], Any]) -> Any:
        def fold_partition(_i: int, data: list, ctx: TaskContext) -> Any:
            acc = zero
            for x in data:
                acc = op(acc, x)
                ctx.charge(cost_of(op, acc, x) + ELEMENT_OVERHEAD)
            return acc

        partials = self.run_job(rdd, fold_partition)
        return self._driver_merge([zero] + partials, op)

    def aggregate(self, rdd: RDD, zero: Any, seq_op: Callable,
                  comb_op: Callable) -> Any:
        def fold_partition(_i: int, data: list, ctx: TaskContext) -> Any:
            acc = zero
            for x in data:
                acc = seq_op(acc, x)
                ctx.charge(cost_of(seq_op, acc, x) + ELEMENT_OVERHEAD)
            return acc

        partials = self.run_job(rdd, fold_partition)
        return self._driver_merge([zero] + partials, comb_op)

    def _driver_merge(self, values: list, op: Callable[[Any, Any], Any]) -> Any:
        """Sequential merge on the driver thread (the non-scalable step)."""
        if not values:
            raise ValueError("nothing to merge")

        def body() -> Generator:
            acc = values[0]
            merge_bw = self.config.merge_bandwidth
            for value in values[1:]:
                acc = op(acc, value)
                yield from self.driver_work(
                    sim_sizeof(acc) / merge_bw + cost_of(op, acc, value))
            return acc

        proc = self.env.process(body(), name="driver-merge")
        return self.env.run(until=proc)

    # ------------------------------------------------------------------ faults
    def kill_executor(self, executor_id: int) -> None:
        """Fault injection: lose an executor and everything it holds."""
        self.executor_by_id(executor_id).kill()

    def stop(self) -> None:
        """Shut the context down (further jobs are rejected)."""
        self._stopped = True

    def __repr__(self) -> str:
        return (f"<SparkerContext {self.config.name!r} "
                f"executors={len(self.executors)} now={self.env.now:.3f}s>")
