"""SparkerContext: the driver-side entry point.

Owns the simulated cluster, the executors, the schedulers and trackers, and
exposes the blocking user-facing API (``parallelize`` + actions). Each
action submits a job process to the simulation and runs the event loop
until it completes, so user code reads sequentially while the cluster
simulation runs underneath — exactly the Spark driver experience.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Union

from ..cluster import Cluster, ClusterConfig
from ..obs import EventBus, PhaseSpan
from ..serde import SerdeModel, sim_sizeof
from ..sim import Environment, Resource, Stopwatch
from .accumulators import Accumulator, AccumulatorRegistry
from .broadcast import Broadcast
from .costing import ELEMENT_OVERHEAD, cost_of
from .executor import Executor
from .hostpool import HostPool
from .rdd import RDD, ParallelCollectionRDD
from .scheduler import DAGScheduler
from .shuffle import MapOutputTracker
from .storage import BlockTracker
from .task_context import TaskContext

__all__ = ["SparkerContext", "JobScope", "JobCancelled"]


class JobCancelled(RuntimeError):
    """The submitting scope was cancelled; no further engine calls run."""


class JobScope:
    """Per-submission driver state for concurrent use of one context.

    The classic blocking API never installs a scope: every submission
    reads the root stopwatch and the default (``None``) pool — exactly
    the seed behavior. A :mod:`repro.service` worker thread installs one
    scope for the lifetime of its job so that jobs sharing the context
    cannot interleave their phase breakdowns, FAIR pools, or IMM cleanup
    lists. Scopes are thread-local (see
    :meth:`SparkerContext.enter_job_scope`).
    """

    __slots__ = ("pool", "ordered", "stopwatch", "job_ids", "cancelled")

    def __init__(self, sc: "SparkerContext", pool: Optional[str] = None,
                 ordered: bool = False):
        #: FAIR pool every task of this scope's jobs is billed to
        self.pool = pool
        #: deterministic deferred-merge mode for IMM stages (DESIGN.md §16)
        self.ordered = ordered
        #: per-job stopwatch so concurrent breakdowns don't mix
        self.stopwatch = Stopwatch(sc.env, on_record=sc._record_phase)
        #: engine job ids allocated under this scope, for IMM cleanup
        #: when the job is cancelled mid-stage
        self.job_ids: List[int] = []
        #: cancellation reason; once set, the scope's next engine call
        #: (job submission, broadcast) raises :class:`JobCancelled`
        self.cancelled: Optional[str] = None


class SparkerContext:
    """Driver for the simulated Spark/Sparker engine.

    Parameters
    ----------
    config:
        Cluster platform; defaults to the small ``laptop`` preset.
    default_parallelism:
        Partition count used when ``parallelize`` is not told otherwise;
        defaults to the cluster's total executor cores (Spark's default).
    driver_colocated:
        Place the driver on node 0 instead of a dedicated host.
    host_pool:
        Parallel host-compute backend (:class:`~repro.rdd.hostpool.HostPool`
        instance, or an int worker count). Defaults to the
        ``SPARKER_HOST_POOL`` environment variable (worker count; unset or
        ``<= 1`` leaves the serial engine untouched).
        ``SPARKER_HOST_POOL_MODE`` selects ``fork`` (default) or ``inline``.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 default_parallelism: Optional[int] = None,
                 driver_colocated: bool = False,
                 host_pool: Optional[Union[int, HostPool]] = None):
        self.config = config or ClusterConfig.laptop()
        self.env = Environment()
        #: observability fan-out (see :mod:`repro.obs`); subscribe listeners
        #: here to trace the run — with none attached nothing is recorded.
        self.event_bus = EventBus()
        #: the bus's causal span allocator (see :mod:`repro.obs.tracing`)
        self.tracer = self.event_bus.tracer
        self.cluster = Cluster(self.env, self.config,
                               driver_colocated=driver_colocated)
        self.serde = SerdeModel.from_config(self.config)
        self.block_tracker = BlockTracker()
        self.map_output_tracker = MapOutputTracker()
        self.accumulators = AccumulatorRegistry()
        self.executors: List[Executor] = [
            Executor(self, slot) for slot in self.cluster.executors
        ]
        self._executor_index: Dict[int, Executor] = {
            e.executor_id: e for e in self.executors
        }
        self.dag = DAGScheduler(self)
        # env-var resolution lives in core.spec (the engine's single
        # reader of SPARKER_* overrides)
        from ..core.spec import resolve_host_pool
        #: parallel host-compute backend; None = untouched serial engine
        self.host_pool: Optional[HostPool] = resolve_host_pool(host_pool)
        self.driver_cpu = Resource(self.env, 1, name="driver")
        self.driver_getters = Resource(self.env,
                                       self.config.driver_result_threads,
                                       name="driver-getters")
        self._root_stopwatch = Stopwatch(self.env,
                                         on_record=self._record_phase)
        #: thread-local JobScope holder (service mode); the classic
        #: blocking API never sets it
        self._scopes = threading.local()
        #: FAIR task arbiter (see :mod:`repro.service.fair`); None = the
        #: seed path, where executors acquire slots FIFO from their own
        #: Resource
        self.task_arbiter = None
        self.default_parallelism = (default_parallelism
                                    or self.cluster.total_cores)
        self._next_rdd_id = 0
        self._next_shuffle_id = 0
        self._next_job_id = 0
        self._next_broadcast_id = 0
        self._stopped = False
        #: armed fault controller (see :mod:`repro.faults`); None = no
        #: injection and no recovery machinery anywhere in the engine
        self.faults = None
        # local import: repro.faults.health only needs obs at module level
        from ..faults.health import ExecutorHealthRegistry
        #: per-executor failure/straggle scoring, quarantine and backoff
        #: (see :mod:`repro.faults.health`); always on, costs nothing on
        #: clean runs
        self.health = ExecutorHealthRegistry(self)
        #: speculative-execution policy (see
        #: :class:`~repro.rdd.speculation.SpeculationPolicy`); None = no
        #: straggler monitor and bit-identical scheduling to the seed
        self.speculation = None

    # ----------------------------------------------------------------- plumbing
    def _record_phase(self, key: str, seconds: float, now: float) -> None:
        """Mirror every closed stopwatch span onto the event bus."""
        if self.event_bus.active:
            tracer = self.event_bus.tracer
            self.event_bus.emit(PhaseSpan(
                time=now, key=key, seconds=seconds,
                span_id=tracer.new_span(),
                parent_span_id=tracer.current_parent))

    def _register_rdd(self, _rdd: RDD) -> int:
        rdd_id = self._next_rdd_id
        self._next_rdd_id += 1
        return rdd_id

    def shuffle_manager_new_id(self) -> int:
        shuffle_id = self._next_shuffle_id
        self._next_shuffle_id += 1
        return shuffle_id

    def new_job_id(self) -> int:
        job_id = self._next_job_id
        self._next_job_id += 1
        scope = getattr(self._scopes, "scope", None)
        if scope is not None:
            scope.job_ids.append(job_id)
        return job_id

    def new_broadcast_id(self) -> int:
        broadcast_id = self._next_broadcast_id
        self._next_broadcast_id += 1
        return broadcast_id

    # ------------------------------------------------------------- job scopes
    @property
    def stopwatch(self) -> Stopwatch:
        """The submitting scope's stopwatch (root when no scope is set).

        Every engine call site reads this on the driver thread that is
        doing the submission, so per-scope resolution gives each
        concurrent job its own phase breakdown; without a scope this is
        the context-wide root stopwatch, as in the seed.
        """
        scope = getattr(self._scopes, "scope", None)
        return self._root_stopwatch if scope is None else scope.stopwatch

    def job_scope(self) -> Optional[JobScope]:
        """This thread's active :class:`JobScope`, or None."""
        return getattr(self._scopes, "scope", None)

    def enter_job_scope(self, scope: JobScope) -> JobScope:
        """Install ``scope`` for the calling thread (service workers)."""
        self._scopes.scope = scope
        return scope

    def exit_job_scope(self) -> None:
        self._scopes.scope = None

    def executor_by_id(self, executor_id: int) -> Executor:
        try:
            return self._executor_index[executor_id]
        except KeyError:
            raise KeyError(f"no executor {executor_id}") from None

    @property
    def now(self) -> float:
        """Current virtual time (seconds since context creation)."""
        return self.env.now

    def driver_work(self, seconds: float) -> Generator:
        """Process body: occupy the single driver thread for ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative driver work: {seconds}")
        yield self.driver_cpu.acquire()
        try:
            if seconds > 0:
                yield self.env.timeout(seconds)
        finally:
            self.driver_cpu.release()

    def driver_fetch_work(self, seconds: float) -> Generator:
        """Process body: occupy one result-getter thread for ``seconds``.

        Spark deserializes incoming task results on a small thread pool
        (``task-result-getter``, 4 threads by default), separate from the
        single-threaded user/merge path.
        """
        if seconds < 0:
            raise ValueError(f"negative driver work: {seconds}")
        yield self.driver_getters.acquire()
        try:
            if seconds > 0:
                yield self.env.timeout(seconds)
        finally:
            self.driver_getters.release()

    # --------------------------------------------------------------- creation
    def parallelize(self, data: Sequence[Any],
                    num_slices: Optional[int] = None) -> RDD:
        """Distribute a driver-side collection."""
        if self._stopped:
            raise RuntimeError("context is stopped")
        if num_slices is None:
            num_slices = self.default_parallelism
        return ParallelCollectionRDD(self, data, num_slices)

    def range(self, n: int, num_slices: Optional[int] = None) -> RDD:
        """An RDD of ``0..n-1``."""
        return self.parallelize(range(n), num_slices)

    def accumulator(self, zero: Any = 0,
                    add_op: Optional[Callable[[Any, Any], Any]] = None,
                    name: str = "") -> Accumulator:
        """Create a write-only shared counter (Spark's accumulator).

        ``add_op`` defaults to ``+``; pass a custom associative op for
        other monoids (max, list concat, ...).
        """
        if add_op is None:
            add_op = lambda a, b: a + b  # noqa: E731
        return self.accumulators.create(self, zero, add_op, name)

    def broadcast(self, value: Any) -> Broadcast:
        """Replicate ``value`` to every node (binomial tree, blocking)."""
        scope = getattr(self._scopes, "scope", None)
        if scope is not None and scope.cancelled is not None:
            raise JobCancelled(scope.cancelled)
        bc = Broadcast(self, value)
        proc = self.env.process(self.cluster.network.broadcast_tree(
            self.cluster.driver_node, self.cluster.nodes, bc.sim_bytes))
        self.env.run(until=proc)
        return bc

    # ------------------------------------------------------------------- jobs
    def run_job(self, rdd: RDD,
                func: Callable[[int, list, TaskContext], Any],
                partitions: Optional[Sequence[int]] = None) -> list:
        """Run ``func`` over partitions and return its results (blocking).

        Scope-dependent submission state (FAIR pool, trace parent) is
        captured *here*, on the submitting thread — the scheduler
        generator body may execute on a different thread (the service
        reactor), where thread-locals would be wrong.
        """
        if self._stopped:
            raise RuntimeError("context is stopped")
        scope = getattr(self._scopes, "scope", None)
        if scope is not None and scope.cancelled is not None:
            raise JobCancelled(scope.cancelled)
        proc = self.env.process(
            self.dag.run_job(rdd, func, partitions,
                             job_id=self.new_job_id(),
                             pool=None if scope is None else scope.pool,
                             parent_span=self.tracer.current_parent),
            name="job")
        return self.env.run(until=proc)

    def run_reduced_job(self, rdd: RDD,
                        func: Callable[[int, list, TaskContext], Any],
                        reduce_op: Callable[[Any, Any], Any],
                        partitions: Optional[Sequence[int]] = None,
                        detail: bool = False,
                        on_merged: Optional[Callable] = None) -> Any:
        """Run an IMM reduced-result stage (blocking).

        Returns ``[(executor_id, object_id), ...]``; read the merged values
        with ``sc.executor_by_id(eid).object_manager.get(oid)``. See
        :meth:`DAGScheduler.run_reduced_job` for ``partitions``/``detail``/
        ``on_merged``. Pool / ordered-merge / trace parent come from the
        submitting thread's scope, as in :meth:`run_job`.
        """
        if self._stopped:
            raise RuntimeError("context is stopped")
        scope = getattr(self._scopes, "scope", None)
        if scope is not None and scope.cancelled is not None:
            raise JobCancelled(scope.cancelled)
        job_id = self.new_job_id()
        proc = self.env.process(
            self.dag.run_reduced_job(rdd, func, reduce_op, job_id,
                                     partitions=partitions, detail=detail,
                                     on_merged=on_merged,
                                     pool=None if scope is None
                                     else scope.pool,
                                     ordered=scope is not None
                                     and scope.ordered,
                                     parent_span=self.tracer.current_parent),
            name="reduced-job")
        return self.env.run(until=proc)

    # ----------------------------------------------------------------- actions
    def collect(self, rdd: RDD) -> list:
        chunks = self.run_job(rdd, lambda _i, data, _ctx: list(data))
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        return out

    def count(self, rdd: RDD) -> int:
        return sum(self.run_job(
            rdd, lambda _i, data, ctx: (
                ctx.charge(len(data) * ELEMENT_OVERHEAD), len(data))[1]))

    def take(self, rdd: RDD, n: int) -> list:
        """First ``n`` elements, scanning partitions incrementally."""
        if n < 0:
            raise ValueError(f"take(n) needs n >= 0, got {n}")
        if n == 0:
            return []
        out: list = []
        total = rdd.num_partitions()
        scanned = 0
        wave = 1
        while scanned < total and len(out) < n:
            parts = list(range(scanned, min(total, scanned + wave)))
            for chunk in self.run_job(
                    rdd, lambda _i, data, _ctx: list(data), parts):
                out.extend(chunk)
            scanned += len(parts)
            wave *= 4  # Spark's quadruple-and-retry scan policy
        return out[:n]

    def reduce(self, rdd: RDD, op: Callable[[Any, Any], Any]) -> Any:
        def fold_partition(_i: int, data: list, ctx: TaskContext) -> Any:
            if not data:
                return None
            acc = data[0]
            for x in data[1:]:
                acc = op(acc, x)
                ctx.charge(cost_of(op, acc, x) + ELEMENT_OVERHEAD)
            return acc

        partials = [p for p in self.run_job(rdd, fold_partition)
                    if p is not None]
        if not partials:
            raise ValueError("reduce() of an empty RDD")
        return self._driver_merge(partials, op)

    def fold(self, rdd: RDD, zero: Any, op: Callable[[Any, Any], Any]) -> Any:
        def fold_partition(_i: int, data: list, ctx: TaskContext) -> Any:
            acc = zero
            for x in data:
                acc = op(acc, x)
                ctx.charge(cost_of(op, acc, x) + ELEMENT_OVERHEAD)
            return acc

        partials = self.run_job(rdd, fold_partition)
        return self._driver_merge([zero] + partials, op)

    def aggregate(self, rdd: RDD, zero: Any, seq_op: Callable,
                  comb_op: Callable) -> Any:
        def fold_partition(_i: int, data: list, ctx: TaskContext) -> Any:
            acc = zero
            for x in data:
                acc = seq_op(acc, x)
                ctx.charge(cost_of(seq_op, acc, x) + ELEMENT_OVERHEAD)
            return acc

        partials = self.run_job(rdd, fold_partition)
        return self._driver_merge([zero] + partials, comb_op)

    def _driver_merge(self, values: list, op: Callable[[Any, Any], Any]) -> Any:
        """Sequential merge on the driver thread (the non-scalable step)."""
        if not values:
            raise ValueError("nothing to merge")

        def body() -> Generator:
            acc = values[0]
            merge_bw = self.config.merge_bandwidth
            for value in values[1:]:
                acc = op(acc, value)
                yield from self.driver_work(
                    sim_sizeof(acc) / merge_bw + cost_of(op, acc, value))
            return acc

        proc = self.env.process(body(), name="driver-merge")
        return self.env.run(until=proc)

    # ------------------------------------------------------------------ faults
    def kill_executor(self, executor_id: int) -> None:
        """Fault injection: lose an executor and everything it holds."""
        self.executor_by_id(executor_id).kill()

    def stop(self) -> None:
        """Shut the context down (further jobs are rejected).

        Idempotent and exception-safe: every teardown step runs even if
        an earlier one raises, so a job that died mid-stage cannot leave
        event-bus listeners or host-pool workers behind — the two leaks
        that made long-lived multi-context processes (the job service,
        test suites) accumulate state before this existed. The first
        exception, if any, propagates after all steps have run.
        """
        if self._stopped:
            return
        self._stopped = True
        failure: Optional[BaseException] = None
        host_pool, self.host_pool = self.host_pool, None
        if host_pool is not None:
            try:
                host_pool.close()
            except BaseException as exc:  # noqa: BLE001 - collect and go on
                failure = exc
        try:
            self.event_bus.close()
        except BaseException as exc:  # noqa: BLE001
            failure = failure or exc
        if failure is not None:
            raise failure

    def __enter__(self) -> "SparkerContext":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (f"<SparkerContext {self.config.name!r} "
                f"executors={len(self.executors)} now={self.env.now:.3f}s>")
