"""Executors: where tasks actually run.

Each executor owns ``executor_cores`` task slots, a memory store for cached
blocks, a shuffle store, and — Sparker's addition — a mutable object
manager for in-memory merge. Submitting a task returns a simulated process
that resolves to the task's result (or fails with the task's exception).

A task attempt's timeline::

    [slot wait] -> task launch overhead -> shuffle fetches (network + deser)
    -> user compute (virtual charges) -> output:
         ShuffleMapTask   : buckets serialized locally (charged in run)
         ResultTask       : serialize + ship result to the driver
         ReducedResultTask: merge into the shared object under its lock
                            (NO serialization — this is IMM's entire point)
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Generator

from ..cluster.placement import ExecutorSlot
from ..obs import BlockEvent, ResidualLost, TaskEnd, TaskMetrics, TaskStart
from ..serde import sim_sizeof
from ..sim import Interrupt, Process, Resource
from .accumulators import pop_task_context, push_task_context
from .shuffle import FetchFailed
from .speculation import SpeculationLost
from .task_context import TaskContext
from .tasks import ReducedResultTask, ResultTask, ShuffleMapTask, Task

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkerContext

__all__ = ["Executor", "ExecutorLost", "TaskKilled"]


class ExecutorLost(Exception):
    """The executor died while (or before) running the task."""


class TaskKilled(Exception):
    """The task attempt was killed by fault injection."""


class Executor:
    """A simulated Spark executor bound to one cluster slot."""

    def __init__(self, sc: "SparkerContext", slot: ExecutorSlot):
        from .storage import MemoryStore
        from .shuffle import ShuffleStore
        from ..core.imm import MutableObjectManager

        self.sc = sc
        self.slot = slot
        self.executor_id = slot.executor_id
        self.node = slot.node
        self.env = sc.env
        self.alive = True
        self.task_slots = Resource(sc.env, capacity=slot.cores,
                                   name=f"exec{slot.executor_id}.slots")
        self.memory_store = MemoryStore(
            slot.executor_id, sc.cluster.config.executor_memory,
            on_event=self._block_event)
        self.shuffle_store = ShuffleStore(slot.executor_id)
        self.object_manager = MutableObjectManager(self)
        #: per-dimension error-feedback residuals of the opt-in top-k
        #: compression tier, keyed ("topk", payload_size) — executor
        #: state, so it dies (and restarts at zero) with the executor
        self.residuals: dict = {}
        self._running: set = set()
        #: callbacks invoked (in registration order) when this executor dies
        self._death_listeners: list = []
        #: compute-time multiplier; >1.0 makes this executor a straggler
        self.compute_scale = 1.0
        #: completed task attempts, for instrumentation
        self.tasks_run = 0
        #: span of the task body currently running a synchronous section
        #: on this executor (parents block events; best-effort)
        self._current_task_span = -1

    def _block_event(self, op: str, block_id: tuple, nbytes: float) -> None:
        """Mirror a memory-store operation onto the event bus."""
        bus = self.sc.event_bus
        if bus.active:
            rdd_id, partition = block_id
            bus.emit(BlockEvent(time=self.env.now,
                                executor_id=self.executor_id, op=op,
                                rdd_id=rdd_id, partition=partition,
                                nbytes=nbytes,
                                span_id=bus.tracer.new_span(),
                                parent_span_id=self._current_task_span))

    # ------------------------------------------------------------------ submit
    def submit(self, task: Task) -> Process:
        """Launch ``task``; returns a process resolving to its result."""
        proc = self.env.process(self._run(task),
                                name=f"task:{task.stage_id}."
                                     f"{task.partition}@{self.executor_id}")
        self._running.add(proc)
        proc.add_callback(lambda _e: self._running.discard(proc))
        return proc

    def _run(self, task: Task) -> Generator:
        if not self.alive:
            raise ExecutorLost(f"executor {self.executor_id} is dead")
        env = self.env
        cfg = self.sc.cluster.config
        bus = self.sc.event_bus
        queued = env.now
        arbiter = self.sc.task_arbiter
        if arbiter is None:
            yield self.task_slots.acquire()
        else:
            # FAIR mode: the arbiter owns grant ordering; it reserves a
            # slot for us before we touch ``task_slots``, so the acquire
            # inside ``admit`` is always immediate and the Resource's
            # FIFO waiter queue stays empty (an interrupted waiter would
            # otherwise leak the slot a later release hands it).
            yield from arbiter.admit(self, task)
        began = env.now
        tracing = bus.active
        span = -1
        if tracing:
            tracer = bus.tracer
            span = tracer.new_span()
            bus.emit(TaskStart(time=began, stage_id=task.stage_id,
                               stage_attempt=task.stage_attempt,
                               partition=task.partition, attempt=task.attempt,
                               executor_id=self.executor_id,
                               host=self.node.hostname, span_id=span,
                               parent_span_id=tracer.stage_span(
                                   task.stage_id, task.stage_attempt)))
        stats = {"slot_wait": began - queued, "fetch_wait": 0.0,
                 "deserialize_time": 0.0, "compute_time": 0.0,
                 "serialize_time": 0.0, "output_wait": 0.0,
                 "result_bytes": 0.0}
        status = "ok"
        try:
            if not self.alive:
                raise ExecutorLost(f"executor {self.executor_id} died")
            yield env.timeout(cfg.task_overhead)
            ctx = TaskContext(task.stage_id, task.partition, task.attempt,
                              executor=self)
            fetch_began = env.now
            for shuffle_id, reduce_index in task.fetch_plan():
                deser = yield from self._fetch_shuffle(shuffle_id,
                                                       reduce_index, ctx)
                stats["deserialize_time"] += deser
            stats["fetch_wait"] = env.now - fetch_began
            memo = None
            host_pool = self.sc.host_pool
            if host_pool is not None:
                memo = host_pool.claim(task, self)
            self._current_task_span = span
            try:
                if memo is not None:
                    # Replay the precomputed body: same result, same charge,
                    # same bucket writes, at the same point in the timeline.
                    result = memo.replay(ctx, self)
                else:
                    if host_pool is not None and host_pool.enabled:
                        host_pool.stats["inline"] += 1
                    push_task_context(ctx)
                    try:
                        result = task.run(ctx)
                    finally:
                        pop_task_context()
            finally:
                self._current_task_span = -1
            charged = ctx.drain_charges()
            if self.compute_scale != 1.0:
                charged *= self.compute_scale
            stats["compute_time"] = charged
            if charged > 0:
                yield env.timeout(charged)
            # Speculation fence: a gated attempt must win the commit
            # race before any output or accumulator update escapes.
            gate = getattr(task, "commit_gate", None)
            claim = None
            if gate is not None:
                claim = (self.executor_id, task.attempt)
                if not gate.claim(task.partition, claim):
                    raise SpeculationLost(
                        f"partition {task.partition} already committed by "
                        f"attempt {gate.winner(task.partition)}")
            emit_began = env.now
            try:
                output = yield from self._emit(task, result, ctx, stats,
                                               parent_span=span)
            except BaseException:
                # Dying mid-commit re-opens the partition for the
                # surviving copy.
                if gate is not None:
                    gate.release(task.partition, claim)
                raise
            stats["output_wait"] = (env.now - emit_began
                                    - stats["serialize_time"])
            self.tasks_run += 1
            # Exactly-once accumulator semantics: only a fully successful
            # attempt publishes its buffered updates.
            if ctx.accumulator_updates:
                self.sc.accumulators.publish(ctx.accumulator_updates)
            return output
        except FetchFailed:
            status = "fetch_failed"
            raise
        except SpeculationLost:
            status = "lost_race"
            raise
        except Interrupt as intr:
            status = "killed"
            raise TaskKilled(str(intr.cause)) from intr
        except BaseException:
            status = "failed"
            raise
        finally:
            self.task_slots.release()
            if arbiter is not None:
                arbiter.released(self, task, env.now - began)
            if tracing and bus.active:
                bus.emit(TaskEnd(
                    time=env.now, stage_id=task.stage_id,
                    stage_attempt=task.stage_attempt,
                    partition=task.partition, attempt=task.attempt,
                    executor_id=self.executor_id, host=self.node.hostname,
                    began=began, status=status,
                    metrics=TaskMetrics(locality=self._locality(task),
                                        **stats),
                    span_id=span,
                    parent_span_id=bus.tracer.stage_span(
                        task.stage_id, task.stage_attempt)))

    # ------------------------------------------------------------------- output
    def _emit(self, task: Task, result: Any, ctx: TaskContext,
              stats: dict, parent_span: int = -1) -> Generator:
        env = self.env
        sc = self.sc
        if isinstance(task, ShuffleMapTask):
            # Buckets were stored and their serialization charged in run();
            # only the (tiny) MapStatus goes to the driver.
            nbytes = sim_sizeof(result)
            stats["result_bytes"] = nbytes
            yield from sc.cluster.network.transfer(
                self.node, sc.cluster.driver_node, nbytes)
            return result
        if isinstance(task, ReducedResultTask):
            # In-memory merge: the shared object absorbs the result locally.
            stats["result_bytes"] = sim_sizeof(result)
            if task.ordered:
                # Deterministic service mode: park the partial keyed by
                # partition (free — the fold charges the merge cost later,
                # in sorted partition order, via the scheduler's stage-end
                # fold pass). Arrival order becomes unobservable.
                self.object_manager.deposit(
                    task.object_id, task.stage_attempt, task.partition,
                    result)
                return (self.executor_id, task.object_id)
            yield from self.object_manager.merge(
                task.object_id, task.stage_attempt, result, task.reduce_op,
                parent_span=parent_span)
            if task.on_merged is not None:
                task.on_merged(self.executor_id, task.partition,
                               task.object_id)
            return (self.executor_id, task.object_id)
        if isinstance(task, ResultTask):
            nbytes = sim_sizeof(result)
            ser_time = sc.serde.ser_time_bytes(nbytes)
            stats["serialize_time"] = ser_time
            stats["result_bytes"] = nbytes
            yield env.timeout(ser_time)
            yield from sc.cluster.network.transfer(
                self.node, sc.cluster.driver_node, nbytes)
            return (result, nbytes)
        raise TypeError(f"unknown task type {type(task).__name__}")

    def _locality(self, task: Task) -> str:
        """Spark-style locality level of this attempt's placement."""
        pinned = task.rdd.pinned_executor(task.partition)
        if pinned == self.executor_id:
            return "PROCESS_LOCAL"
        preferred = task.rdd.preferred_executors(task.partition)
        if self.executor_id in preferred:
            return "PROCESS_LOCAL"
        for executor_id in preferred:
            try:
                other = self.sc.executor_by_id(executor_id)
            except KeyError:
                continue
            if other.node is self.node:
                return "NODE_LOCAL"
        return "ANY"

    # ------------------------------------------------------------------- fetch
    def _fetch_shuffle(self, shuffle_id: int, reduce_index: int,
                       ctx: TaskContext) -> Generator:
        """Fetch every map output for ``(shuffle_id, reduce_index)``.

        Remote buckets transfer concurrently (the flow network fair-shares
        this node's ingress); deserialization of all buckets is charged to
        the task. Returns the deserialization seconds (the CPU share of
        the fetch window), for task metrics.
        """
        env = self.env
        sc = self.sc
        tracker = sc.map_output_tracker
        num_maps = tracker.num_maps(shuffle_id)
        records: list = []
        deser_bytes = 0.0
        legs = []
        for map_index in range(num_maps):
            status = tracker.status(shuffle_id, map_index)
            if status is None:
                raise FetchFailed(shuffle_id, map_index, -1)
            source = sc.executor_by_id(status.executor_id)
            if not source.alive:
                raise FetchFailed(shuffle_id, map_index, status.executor_id)
            bucket = source.shuffle_store.get_bucket(
                shuffle_id, map_index, reduce_index)
            if bucket is None:
                raise FetchFailed(shuffle_id, map_index, status.executor_id)
            data, nbytes = bucket
            records.extend(data)
            if nbytes <= 0:
                continue
            deser_bytes += nbytes
            legs.append((source.node, self.node, nbytes))
        if legs:
            # One batched process for all map-output streams instead of one
            # per bucket; completion time is identical (max-min fair shares
            # at an instant do not depend on same-instant join order).
            yield from sc.cluster.network.transfer_many(legs)
        deser_time = 0.0
        if deser_bytes > 0:
            deser_time = sc.serde.deser_time_bytes(deser_bytes)
            yield env.timeout(deser_time)
        ctx.fetched[(shuffle_id, reduce_index)] = records
        return deser_time

    # -------------------------------------------------------------------- kill
    def add_death_listener(self, callback) -> None:
        """Register ``callback(executor)`` to run when this executor dies.

        Listeners fire after running tasks are interrupted; with the
        kernel's deferred interrupts that makes them the synchronous
        failure-detection hook collectives use to tear themselves down.
        """
        self._death_listeners.append(callback)

    def remove_death_listener(self, callback) -> None:
        try:
            self._death_listeners.remove(callback)
        except ValueError:
            pass

    def kill(self, reason: str = "fault injection") -> None:
        """Simulate executor loss: drop state, interrupt running tasks."""
        if not self.alive:
            return
        self.alive = False
        self.memory_store.clear()
        self.shuffle_store.clear()
        self.object_manager.clear_all()
        if self.residuals:
            # The top-k tier's error-feedback residuals die with the
            # executor; record how much accumulated mass was lost.
            bus = self.sc.event_bus
            if bus.active:
                squared = 0.0
                for vec in self.residuals.values():
                    squared += float((vec * vec).sum())
                bus.emit(ResidualLost(
                    time=self.env.now, executor_id=self.executor_id,
                    num_residuals=len(self.residuals),
                    residual_norm=math.sqrt(squared), reason=reason))
        self.residuals.clear()
        self.sc.block_tracker.unregister_executor(self.executor_id)
        self.sc.map_output_tracker.unregister_executor(self.executor_id)
        for proc in list(self._running):
            if proc.is_alive:
                proc.interrupt(reason)
        listeners, self._death_listeners = self._death_listeners, []
        for callback in listeners:
            callback(self)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (f"<Executor {self.executor_id} on {self.node.hostname} "
                f"{state}>")
