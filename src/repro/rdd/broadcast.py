"""Broadcast variables.

Models Spark's TorrentBroadcast closely enough for cost purposes: the value
is distributed from the driver to every cluster node along a binomial tree
(so broadcast time grows with ``log(nodes)``, not ``nodes``), and executors
on a node read the local copy. ML training broadcasts the model weights
every iteration, so this cost sits inside the per-iteration "computation"
component of the paper's decompositions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..serde import sim_sizeof

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkerContext

__all__ = ["Broadcast"]


class Broadcast:
    """A read-only value replicated to every node."""

    def __init__(self, sc: "SparkerContext", value: Any):
        self.sc = sc
        self._value = value
        # Per-context ids: a process hosting many contexts (the job
        # service, test suites) numbers each context's broadcasts from
        # zero, independent of what ran before it.
        self.id = sc.new_broadcast_id()
        self.sim_bytes = sim_sizeof(value)
        self._destroyed = False

    @property
    def value(self) -> Any:
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} has been destroyed")
        return self._value

    def destroy(self) -> None:
        """Release the broadcast (no further reads allowed)."""
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else f"{self.sim_bytes:.0f}B"
        return f"<Broadcast {self.id} {state}>"
