"""Spark-style speculative execution: clone stragglers, fence commits.

Spark's ``spark.speculation`` machinery re-launches slow task attempts on
other executors and lets whichever copy finishes first "win". This module
is that mechanism for the simulated engine, split into the pieces the
:class:`~repro.rdd.scheduler.DAGScheduler` composes per task wave:

* :class:`SpeculationPolicy` — the knobs (all mirroring Spark's
  ``spark.speculation.*`` family): how often the monitor wakes, what
  fraction of the wave must have finished before durations are trusted,
  and the multiple of the median duration past which a running attempt
  counts as a straggler.
* :class:`CommitGate` — the first-completion-wins fence. Every gated
  attempt must :meth:`~CommitGate.claim` its partition before emitting
  output or publishing accumulator updates; exactly one claim per
  partition succeeds, so duplicate attempts can never double-apply side
  effects. A claim is released only if the claiming attempt dies before
  finishing, which re-opens the partition for the surviving copy.
* :class:`SpeculationLost` — raised inside the losing attempt at its
  commit point (before any output is emitted or accumulators publish).
* :class:`SpeculationWave` — per-wave bookkeeping: which attempts run
  where, completed durations for the quantile threshold, and the
  committed results that let a cancelled original hand back its
  duplicate's output.

Determinism: the monitor wakes on fixed virtual-time intervals, scans
partitions in sorted order, and picks backup executors by a total order
(health score, load, executor id) — two runs with the same seed and plan
launch the same clones at the same times and resolve every commit race
identically. Ties at the same instant resolve by the kernel's FIFO event
order, which favours the attempt submitted first (the original).

Zero-perturbation: with ``sc.speculation`` unset (the default) none of
this is constructed and task waves run bit-identically to the seed
scheduler; armed-but-straggler-free waves add only monitor wakeups,
which consume no shared resources and shift no task timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..sim import Event
from ..sim.events import Process

__all__ = [
    "SpeculationPolicy",
    "CommitGate",
    "SpeculationLost",
    "SpeculationWave",
    "BACKUP_FAILED",
    "SPECULATIVE_ATTEMPT_BASE",
]

#: attempt numbers for speculative clones start here, keeping them
#: disjoint from the retry counter the attempt loop uses (< 4)
SPECULATIVE_ATTEMPT_BASE = 100

#: sentinel resolved to waiters when a backup claimed the commit but died
#: before finishing (the claim was released; the original should retry)
BACKUP_FAILED = object()


class SpeculationLost(Exception):
    """This attempt lost the commit race to its duplicate.

    Raised at the attempt's commit point, *before* it emits output or
    publishes accumulator updates — the loser has no observable effect
    beyond the compute time it already spent.
    """


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to clone a slow attempt (Spark's ``spark.speculation.*``).

    The monitor wakes every ``interval`` virtual seconds. Once at least
    ``max(min_tasks, ceil(quantile * wave_size))`` attempts of the wave
    have completed, any attempt that has been running longer than
    ``multiplier`` times the median completed duration is cloned onto
    the healthiest idle executor. ``min_tasks`` keeps one-task waves
    and cold starts from speculating on no evidence.
    """

    quantile: float = 0.75
    multiplier: float = 1.5
    interval: float = 0.1
    min_tasks: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {self.quantile}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.min_tasks < 1:
            raise ValueError(f"min_tasks must be >= 1, got {self.min_tasks}")


class CommitGate:
    """First-completion-wins fence over a wave's partitions.

    ``claim`` is idempotent for the holder and exclusive across
    attempts; ``release`` re-opens a partition only if the releasing
    attempt still holds it (a loser's release must not evict the
    winner).
    """

    def __init__(self) -> None:
        self._committed: Dict[int, Tuple[int, int]] = {}

    def claim(self, partition: int, key: Tuple[int, int]) -> bool:
        """Try to commit ``partition`` as attempt ``key``; True if won."""
        held = self._committed.get(partition)
        if held is None:
            self._committed[partition] = key
            return True
        return held == key

    def release(self, partition: int, key: Tuple[int, int]) -> None:
        """Give up a claim (the claiming attempt died mid-commit)."""
        if self._committed.get(partition) == key:
            del self._committed[partition]

    def winner(self, partition: int) -> Optional[Tuple[int, int]]:
        """The ``(executor_id, attempt)`` holding the commit, if any."""
        return self._committed.get(partition)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class SpeculationWave:
    """Bookkeeping for one task wave's straggler monitor."""

    def __init__(self, env, total: int):
        self.env = env
        #: partitions in the wave (denominator of the quantile check)
        self.total = total
        #: stage id, learned from the first task the factory builds
        self.stage_id = -1
        #: partition -> (submit_time, executor_id, task process)
        self.running: Dict[int, Tuple[float, int, Process]] = {}
        #: completed attempt durations, in completion order
        self.durations: List[float] = []
        #: partition -> output committed by a speculative clone
        self.results: Dict[int, Any] = {}
        #: partitions that already have a clone (at most one each)
        self.speculated: Set[int] = set()
        #: shepherd processes watching live clones (wave teardown
        #: interrupts the survivors)
        self.shepherds: List[Process] = []
        self._commit_events: Dict[int, Event] = {}
        self._next_attempt = SPECULATIVE_ATTEMPT_BASE

    # ------------------------------------------------------------ attempts
    def task_started(self, partition: int, executor_id: int,
                     proc: Process) -> None:
        self.running[partition] = (self.env.now, executor_id, proc)

    def task_finished(self, partition: int) -> None:
        entry = self.running.pop(partition, None)
        if entry is not None:
            self.durations.append(self.env.now - entry[0])

    def task_stopped(self, partition: int) -> None:
        """The attempt ended without a countable duration (failed/lost)."""
        self.running.pop(partition, None)

    def next_backup_attempt(self) -> int:
        attempt = self._next_attempt
        self._next_attempt += 1
        return attempt

    # ------------------------------------------------------------ detector
    def threshold(self, policy: SpeculationPolicy) -> Optional[float]:
        """Straggler cutoff, or None while the evidence is too thin."""
        need = max(policy.min_tasks,
                   int(math.ceil(policy.quantile * self.total)))
        if len(self.durations) < need or not self.running:
            return None
        return policy.multiplier * _median(self.durations)

    # ------------------------------------------------------------- commits
    def resolve(self, partition: int, value: Any) -> None:
        """Wake an original that lost the commit race (if one waits)."""
        event = self._commit_events.pop(partition, None)
        if event is not None:
            event.succeed(value)

    def await_commit(self, partition: int) -> Generator:
        """Process body: wait for the duplicate's committed outcome.

        Returns the committed output, or :data:`BACKUP_FAILED` if the
        clone died after claiming (its claim was released; the caller
        should retry the task itself).
        """
        if partition in self.results:
            return self.results[partition]
        event = self._commit_events.get(partition)
        if event is None:
            event = Event(self.env, name=f"speculation:p{partition}")
            self._commit_events[partition] = event
        value = yield event
        return value
