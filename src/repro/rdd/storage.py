"""Block storage: per-executor memory stores and the driver-side tracker.

Mirrors Spark's BlockManager at the granularity this reproduction needs:
cached RDD partitions and shuffle outputs live in executor memory; the
driver tracks which executor holds which block so schedulers can honour
locality and fetches can find their source. Losing an executor drops its
blocks (lineage recompute picks up the pieces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..serde import sim_sizeof

__all__ = ["StorageLevel", "MemoryStore", "BlockTracker", "BlockId"]

#: a cached-partition block: (rdd_id, partition_index)
BlockId = Tuple[int, int]


class StorageLevel:
    """Spark storage levels (the subset the paper's workloads use)."""

    MEMORY_ONLY = "MEMORY_ONLY"
    NONE = None


@dataclass
class _Block:
    data: Any
    sim_bytes: float


class MemoryStore:
    """One executor's in-memory block store.

    ``on_event(op, block_id, nbytes)`` — with ``op`` one of ``"put"``,
    ``"fetch"`` (a get that hit) or ``"evict"`` — lets the owning executor
    mirror block traffic onto the observability bus; the store itself
    stays clock-free.
    """

    def __init__(self, executor_id: int, capacity_bytes: float,
                 on_event: Optional[Callable[[str, BlockId, float],
                                             None]] = None):
        self.executor_id = executor_id
        self.capacity_bytes = capacity_bytes
        self.on_event = on_event
        self._blocks: Dict[BlockId, _Block] = {}
        self.used_bytes = 0.0

    def put(self, block_id: BlockId, data: Any,
            sim_bytes: Optional[float] = None) -> float:
        """Store a block; returns its simulated size.

        Overwriting an existing block replaces it (recompute after executor
        recovery). Capacity is tracked but not enforced — the paper's
        workloads fit in MEMORY_ONLY by construction, and an eviction model
        would add noise the figures don't depend on.
        """
        size = float(sim_sizeof(data) if sim_bytes is None else sim_bytes)
        old = self._blocks.get(block_id)
        if old is not None:
            self.used_bytes -= old.sim_bytes
        self._blocks[block_id] = _Block(data, size)
        self.used_bytes += size
        if self.on_event is not None:
            self.on_event("put", block_id, size)
        return size

    def get(self, block_id: BlockId) -> Optional[Any]:
        block = self._blocks.get(block_id)
        if block is None:
            return None
        if self.on_event is not None:
            self.on_event("fetch", block_id, block.sim_bytes)
        return block.data

    def size_of(self, block_id: BlockId) -> Optional[float]:
        block = self._blocks.get(block_id)
        return None if block is None else block.sim_bytes

    def contains(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def remove(self, block_id: BlockId) -> bool:
        block = self._blocks.pop(block_id, None)
        if block is None:
            return False
        self.used_bytes -= block.sim_bytes
        if self.on_event is not None:
            self.on_event("evict", block_id, block.sim_bytes)
        return True

    def remove_rdd(self, rdd_id: int) -> int:
        """Drop all blocks of ``rdd_id``; returns how many were dropped."""
        doomed = [bid for bid in self._blocks if bid[0] == rdd_id]
        for bid in doomed:
            self.remove(bid)
        return len(doomed)

    def clear(self) -> None:
        self._blocks.clear()
        self.used_bytes = 0.0

    def __len__(self) -> int:
        return len(self._blocks)


class BlockTracker:
    """Driver-side map from block id to the executors holding it."""

    def __init__(self) -> None:
        self._locations: Dict[BlockId, List[int]] = {}

    def register(self, block_id: BlockId, executor_id: int) -> None:
        holders = self._locations.setdefault(block_id, [])
        if executor_id not in holders:
            holders.append(executor_id)

    def locations(self, block_id: BlockId) -> List[int]:
        return list(self._locations.get(block_id, ()))

    def unregister_executor(self, executor_id: int) -> int:
        """Forget every block held by ``executor_id`` (executor loss)."""
        dropped = 0
        for block_id in list(self._locations):
            holders = self._locations[block_id]
            if executor_id in holders:
                holders.remove(executor_id)
                dropped += 1
                if not holders:
                    del self._locations[block_id]
        return dropped

    def unregister_rdd(self, rdd_id: int) -> None:
        for block_id in list(self._locations):
            if block_id[0] == rdd_id:
                del self._locations[block_id]
