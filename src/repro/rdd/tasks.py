"""Task definitions: the unit of work shipped to executors.

Three task flavours exist, mirroring Spark plus the paper's addition:

* :class:`ShuffleMapTask` — computes a partition, buckets it by the shuffle
  partitioner (with map-side combining when available), serializes the
  buckets into the executor's shuffle store, and reports a
  :class:`~repro.rdd.shuffle.MapStatus`.
* :class:`ResultTask` — computes a partition, applies the job function, and
  ships the serialized result to the driver.
* :class:`ReducedResultTask` — the paper's reduced-result stage (§4.3):
  like a ResultTask, but the result is merged into the executor's mutable
  object manager *in memory*, and only ``(executor_id, object_id)`` goes
  back to the driver. This is in-memory merge (IMM).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..serde import sim_sizeof
from .costing import ELEMENT_OVERHEAD, cost_of
from .rdd import RDD, ShuffleDependency
from .shuffle import MapStatus
from .task_context import TaskContext

__all__ = ["Task", "ShuffleMapTask", "ResultTask", "ReducedResultTask"]


class Task:
    """One attempt at one partition of one stage."""

    def __init__(self, stage_id: int, stage_attempt: int, rdd: RDD,
                 partition: int, attempt: int):
        self.stage_id = stage_id
        self.stage_attempt = stage_attempt
        self.rdd = rdd
        self.partition = partition
        self.attempt = attempt
        #: FAIR-scheduler pool this task is billed to (None = untagged;
        #: the arbiter maps it to the default pool). Stamped by the DAG
        #: scheduler from the submitting job's scope.
        self.pool = None

    def fetch_plan(self) -> List[Tuple[int, int]]:
        """Shuffle blocks this task will read before computing."""
        return self.rdd.shuffle_reads(self.partition)

    def run(self, ctx: TaskContext) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} stage={self.stage_id}"
                f".{self.stage_attempt} partition={self.partition} "
                f"attempt={self.attempt}>")


class ShuffleMapTask(Task):
    """Map side of a shuffle."""

    def __init__(self, stage_id: int, stage_attempt: int, rdd: RDD,
                 partition: int, attempt: int, dep: ShuffleDependency):
        super().__init__(stage_id, stage_attempt, rdd, partition, attempt)
        self.dep = dep

    def run(self, ctx: TaskContext) -> MapStatus:
        sc = self.rdd.sc
        data = self.rdd.iterator(self.partition, ctx)
        partitioner = self.dep.partitioner
        combine = self.dep.combine_op
        n_out = partitioner.num_partitions
        merge_bw = sc.cluster.config.merge_bandwidth

        ctx.charge(len(data) * ELEMENT_OVERHEAD)
        if combine is not None:
            # Map-side combining: one entry per key per bucket.
            combined: List[Dict[Any, Any]] = [dict() for _ in range(n_out)]
            for key, value in data:
                bucket = combined[partitioner.partition(key)]
                if key in bucket:
                    merged = combine(bucket[key], value)
                    ctx.charge(sim_sizeof(merged) / merge_bw
                               + cost_of(combine, bucket[key], value))
                    bucket[key] = merged
                else:
                    bucket[key] = value
            buckets: List[list] = [list(b.items()) for b in combined]
        else:
            # No combining (groupByKey / partitionBy): keep every record.
            buckets = [[] for _ in range(n_out)]
            for key, value in data:
                buckets[partitioner.partition(key)].append((key, value))

        store = ctx.executor.shuffle_store
        serde = sc.serde
        sizes = []
        for reduce_index, records in enumerate(buckets):
            nbytes = sim_sizeof(records) if records else 0.0
            if records:
                # Spark serializes every map output bucket immediately.
                ctx.charge(serde.ser_time_bytes(nbytes))
            store.put_bucket(self.dep.shuffle_id, self.partition,
                             reduce_index, records, nbytes)
            sizes.append(nbytes)
        return MapStatus(executor_id=ctx.executor.executor_id,
                         bucket_bytes=tuple(sizes))


class ResultTask(Task):
    """Result side: apply the job function and ship the result home."""

    def __init__(self, stage_id: int, stage_attempt: int, rdd: RDD,
                 partition: int, attempt: int,
                 func: Callable[[int, list, TaskContext], Any]):
        super().__init__(stage_id, stage_attempt, rdd, partition, attempt)
        self.func = func

    def run(self, ctx: TaskContext) -> Any:
        data = self.rdd.iterator(self.partition, ctx)
        return self.func(self.partition, data, ctx)


class ReducedResultTask(Task):
    """IMM task: merge the result into executor memory, not the driver.

    ``func`` computes the task's value; ``reduce_op`` merges it into the
    executor-shared object identified by ``object_id``. The actual merge is
    performed by the executor under the object's lock (see
    :meth:`repro.rdd.executor.Executor.submit`).

    ``on_merged`` is the partition-completion hook of the pipelined
    collective path: called as ``on_merged(executor_id, partition,
    object_id)`` immediately after this task's merge lands, it lets the
    driver-side orchestration stream an executor's finished aggregator
    into the ring while other partitions are still computing. The call
    must be synchronous and cheap — it runs inside the executor's output
    step and consumes no virtual time.
    """

    def __init__(self, stage_id: int, stage_attempt: int, rdd: RDD,
                 partition: int, attempt: int,
                 func: Callable[[int, list, TaskContext], Any],
                 reduce_op: Callable[[Any, Any], Any],
                 object_id: Tuple[int, int],
                 on_merged: Callable[[int, int, Tuple[int, int]], None]
                 | None = None, ordered: bool = False):
        super().__init__(stage_id, stage_attempt, rdd, partition, attempt)
        self.func = func
        self.reduce_op = reduce_op
        self.object_id = object_id
        self.on_merged = on_merged
        #: ordered-merge mode (service concurrency): the task *deposits*
        #: its partial keyed by partition instead of folding in arrival
        #: order; the scheduler folds deposits in sorted partition order
        #: at stage end (see DESIGN.md §16).
        self.ordered = ordered

    def run(self, ctx: TaskContext) -> Any:
        data = self.rdd.iterator(self.partition, ctx)
        return self.func(self.partition, data, ctx)
