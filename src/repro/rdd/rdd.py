"""The RDD abstraction: lineage, transformations, and actions.

A faithful (Python-sized) port of Spark's Resilient Distributed Dataset:
an RDD is an immutable, partitioned collection described by its parent
dependencies and a ``compute`` function. Transformations build lineage
lazily; actions hand the lineage to the DAG scheduler, which runs it on the
simulated cluster. Partition contents are real Python lists, so every
result is exact; task *time* comes from the cost models.

Narrow dependencies recompute through :meth:`RDD.iterator` (which also
implements MEMORY_ONLY caching); shuffle dependencies cut stage boundaries
in the DAG scheduler, exactly as in Spark — this is what makes
``treeAggregate`` a multi-stage job whose reduction costs grow with the
cluster (§2.3 of the paper).
"""

from __future__ import annotations

import bisect
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..serde import sim_sizeof
from .costing import ELEMENT_OVERHEAD, Costed, cost_of
from .partitioner import HashPartitioner, Partitioner
from .storage import StorageLevel
from .task_context import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkerContext

__all__ = [
    "RDD",
    "Dependency",
    "NarrowDependency",
    "OneToOneDependency",
    "ShuffleDependency",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "CoalescedRDD",
    "ShuffledRDD",
]


# --------------------------------------------------------------------------
# Dependencies
# --------------------------------------------------------------------------
class Dependency:
    """Base class for lineage edges."""

    def __init__(self, rdd: "RDD"):
        self.rdd = rdd


class NarrowDependency(Dependency):
    """Each child partition depends on a bounded set of parent partitions."""

    def parent_partitions(self, child_index: int) -> List[int]:
        raise NotImplementedError  # pragma: no cover - abstract


class OneToOneDependency(NarrowDependency):
    """Child partition ``i`` depends exactly on parent partition ``i``."""

    def parent_partitions(self, child_index: int) -> List[int]:
        return [child_index]


class _RangeDependency(NarrowDependency):
    """Union: child partitions ``[out_start, out_start+length)`` map to
    parent partitions ``[in_start, in_start+length)``."""

    def __init__(self, rdd: "RDD", in_start: int, out_start: int,
                 length: int):
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parent_partitions(self, child_index: int) -> List[int]:
        if self.out_start <= child_index < self.out_start + self.length:
            return [child_index - self.out_start + self.in_start]
        return []


class _CoalesceDependency(NarrowDependency):
    def __init__(self, rdd: "RDD", groups: List[List[int]]):
        super().__init__(rdd)
        self.groups = groups

    def parent_partitions(self, child_index: int) -> List[int]:
        return list(self.groups[child_index])


class ShuffleDependency(Dependency):
    """A stage boundary: the parent must be re-bucketed by key.

    ``combine_op(a, b) -> merged`` enables map-side and reduce-side
    combining (Spark's ``foldByKey``/``reduceByKey`` path, which
    ``treeAggregate`` relies on).
    """

    def __init__(self, rdd: "RDD", partitioner: Partitioner,
                 shuffle_id: int,
                 combine_op: Optional[Callable[[Any, Any], Any]] = None):
        super().__init__(rdd)
        self.partitioner = partitioner
        self.shuffle_id = shuffle_id
        self.combine_op = combine_op


# --------------------------------------------------------------------------
# RDD base
# --------------------------------------------------------------------------
class RDD:
    """One distributed dataset in the lineage graph."""

    #: Whether ``compute`` is a pure function of process memory, making it
    #: eligible for host-pool precompute (see :mod:`repro.rdd.hostpool`).
    #: Subclasses whose compute reads executor-resident simulated state
    #: (e.g. SpawnRDD's IMM objects) must set this False.
    host_compute_pure = True

    def __init__(self, sc: "SparkerContext", deps: Sequence[Dependency]):
        self.sc = sc
        self.deps: List[Dependency] = list(deps)
        self.id = sc._register_rdd(self)
        self.storage_level: Optional[str] = None
        self.name = type(self).__name__

    # ---- to be provided by subclasses -------------------------------------
    def num_partitions(self) -> int:
        raise NotImplementedError  # pragma: no cover - abstract

    def compute(self, index: int, ctx: TaskContext) -> list:
        """Materialize partition ``index`` (called inside a task)."""
        raise NotImplementedError  # pragma: no cover - abstract

    # ---- engine plumbing ----------------------------------------------------
    def iterator(self, index: int, ctx: TaskContext) -> list:
        """Get-or-compute with MEMORY_ONLY caching (Spark's ``iterator``)."""
        if self.storage_level is None:
            return self.compute(index, ctx)
        store = ctx.executor.memory_store
        block_id = (self.id, index)
        cached = store.get(block_id)
        if cached is not None:
            return cached
        data = self.compute(index, ctx)
        size = store.put(block_id, data)
        self.sc.block_tracker.register(block_id, ctx.executor.executor_id)
        # Materializing into the cache costs one pass over the data.
        ctx.charge(size / self.sc.cluster.config.merge_bandwidth)
        return data

    def shuffle_reads(self, index: int) -> List[Tuple[int, int]]:
        """All ``(shuffle_id, reduce_partition)`` pairs that computing
        partition ``index`` will consume (walking narrow lineage only)."""
        reads: List[Tuple[int, int]] = []
        for dep in self.deps:
            if isinstance(dep, ShuffleDependency):
                reads.append((dep.shuffle_id, index))
            elif isinstance(dep, NarrowDependency):
                for parent_index in dep.parent_partitions(index):
                    reads.extend(dep.rdd.shuffle_reads(parent_index))
        return reads

    def preferred_executors(self, index: int) -> List[int]:
        """Executor ids where partition ``index`` would run fastest."""
        if self.storage_level is not None:
            holders = self.sc.block_tracker.locations((self.id, index))
            if holders:
                return holders
        for dep in self.deps:
            if isinstance(dep, NarrowDependency):
                parents = dep.parent_partitions(index)
                if parents:
                    preference = dep.rdd.preferred_executors(parents[0])
                    if preference:
                        return preference
        return []

    def pinned_executor(self, index: int) -> Optional[int]:
        """Hard placement constraint (SpawnRDD overrides); None = free."""
        return None

    def narrow_parents(self) -> List["RDD"]:
        """Parents reachable without crossing a shuffle boundary."""
        return [dep.rdd for dep in self.deps
                if isinstance(dep, NarrowDependency)]

    # ---- persistence ----------------------------------------------------------
    def persist(self, level: str = StorageLevel.MEMORY_ONLY) -> "RDD":
        """Mark this RDD for caching on first materialization."""
        if level != StorageLevel.MEMORY_ONLY:
            raise ValueError(f"unsupported storage level {level!r}")
        self.storage_level = level
        return self

    def cache(self) -> "RDD":
        """Alias for ``persist(MEMORY_ONLY)``."""
        return self.persist()

    def unpersist(self) -> "RDD":
        """Drop cached blocks everywhere."""
        self.storage_level = None
        for executor in self.sc.executors:
            executor.memory_store.remove_rdd(self.id)
        self.sc.block_tracker.unregister_rdd(self.id)
        return self

    def set_name(self, name: str) -> "RDD":
        """Label this RDD (shows up in stage logs and history)."""
        self.name = name
        return self

    # ---- transformations -------------------------------------------------------
    def map(self, f: Callable[[Any], Any]) -> "RDD":
        """Apply ``f`` to every element."""
        def run(_idx: int, data: list, ctx: TaskContext) -> list:
            _charge_elementwise(ctx, f, data)
            return [f(x) for x in data]
        return MapPartitionsRDD(self, run, label="map")

    def filter(self, f: Callable[[Any], bool]) -> "RDD":
        """Keep elements where ``f`` is true."""
        def run(_idx: int, data: list, ctx: TaskContext) -> list:
            _charge_elementwise(ctx, f, data)
            return [x for x in data if f(x)]
        return MapPartitionsRDD(self, run, label="filter")

    def flat_map(self, f: Callable[[Any], Sequence[Any]]) -> "RDD":
        """Apply ``f`` and flatten the results."""
        def run(_idx: int, data: list, ctx: TaskContext) -> list:
            _charge_elementwise(ctx, f, data)
            out: list = []
            for x in data:
                out.extend(f(x))
            return out
        return MapPartitionsRDD(self, run, label="flatMap")

    def map_partitions(self, f: Callable[[list], list]) -> "RDD":
        """Apply ``f`` to each whole partition."""
        def run(_idx: int, data: list, ctx: TaskContext) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD + cost_of(f, data))
            return list(f(data))
        return MapPartitionsRDD(self, run, label="mapPartitions")

    def map_partitions_with_index(
            self, f: Callable[[int, list], list]) -> "RDD":
        """Apply ``f(partition_index, partition_data)`` to each partition."""
        def run(idx: int, data: list, ctx: TaskContext) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD + cost_of(f, idx, data))
            return list(f(idx, data))
        return MapPartitionsRDD(self, run, label="mapPartitionsWithIndex")

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        def run(_idx: int, data: list, _ctx: TaskContext) -> list:
            return [list(data)]
        return MapPartitionsRDD(self, run, label="glom")

    def key_by(self, f: Callable[[Any], Any]) -> "RDD":
        """Pair every element with ``f(element)`` as its key."""
        return self.map(lambda x: (f(x), x))

    def map_values(self, f: Callable[[Any], Any]) -> "RDD":
        """Apply ``f`` to the value of every key-value pair."""
        return self.map(lambda kv: (kv[0], f(kv[1])))

    def keys(self) -> "RDD":
        """First element of every key-value pair."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        """Second element of every key-value pair."""
        return self.map(lambda kv: kv[1])

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (partitions are concatenated, not merged)."""
        return UnionRDD(self.sc, [self, other])

    def coalesce(self, num_partitions: int) -> "RDD":
        """Narrow repartitioning into fewer partitions."""
        return CoalescedRDD(self, num_partitions)

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Bernoulli sample of each partition (deterministic per seed)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def run(idx: int, data: list, ctx: TaskContext) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD)
            rng = np.random.default_rng((seed, idx))
            keep = rng.random(len(data)) < fraction
            return [x for x, k in zip(data, keep) if k]
        return MapPartitionsRDD(self, run, label="sample")

    def distinct(self) -> "RDD":
        """Remove duplicates (requires hashable elements)."""
        deduped = (self.map(lambda x: (x, None))
                   .reduce_by_key(lambda a, _b: a)
                   .keys())
        return deduped

    # ---- shuffles ------------------------------------------------------------
    def partition_by(self, partitioner: Partitioner,
                     combine_op: Optional[Callable] = None) -> "RDD":
        """Re-bucket key-value pairs by ``partitioner`` (a full shuffle)."""
        return ShuffledRDD(self, partitioner, combine_op=combine_op)

    def reduce_by_key(self, op: Callable[[Any, Any], Any],
                      num_partitions: Optional[int] = None) -> "RDD":
        """Merge values per key with map-side combining."""
        n = num_partitions or self.num_partitions()
        return ShuffledRDD(self, HashPartitioner(n), combine_op=op)

    def fold_by_key(self, zero: Any, op: Callable[[Any, Any], Any],
                    partitioner: Optional[Partitioner] = None) -> "RDD":
        """Spark's ``foldByKey`` (zero is merged in reduce-side order)."""
        part = partitioner or HashPartitioner(self.num_partitions())
        return ShuffledRDD(self, part, combine_op=op)

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        """Group values per key into lists (no map-side combining)."""
        n = num_partitions or self.num_partitions()
        shuffled = ShuffledRDD(self, HashPartitioner(n), combine_op=None,
                               group=True)
        return shuffled

    def cogroup(self, other: "RDD",
                num_partitions: Optional[int] = None) -> "RDD":
        """Group both RDDs' values per key: ``(k, ([left...], [right...]))``.

        Implemented Spark-style by tagging each side, unioning, and
        grouping through one shuffle.
        """
        n = num_partitions or max(self.num_partitions(),
                                  other.num_partitions())
        tagged = self.map_values(lambda v: (0, v)).union(
            other.map_values(lambda v: (1, v)))
        grouped = tagged.group_by_key(num_partitions=n)

        def untag(kv):
            key, pairs = kv
            left = [v for tag, v in pairs if tag == 0]
            right = [v for tag, v in pairs if tag == 1]
            return key, (left, right)

        return grouped.map(untag)

    def join(self, other: "RDD",
             num_partitions: Optional[int] = None) -> "RDD":
        """Inner join on keys: ``(k, (v_left, v_right))`` per value pair."""
        def expand(kv):
            key, (left, right) = kv
            return [(key, (lv, rv)) for lv in left for rv in right]

        return self.cogroup(other, num_partitions).flat_map(expand)

    def left_outer_join(self, other: "RDD",
                        num_partitions: Optional[int] = None) -> "RDD":
        """Left outer join: missing right values appear as ``None``."""
        def expand(kv):
            key, (left, right) = kv
            if not right:
                return [(key, (lv, None)) for lv in left]
            return [(key, (lv, rv)) for lv in left for rv in right]

        return self.cogroup(other, num_partitions).flat_map(expand)

    def sort_by(self, key_fn: Callable[[Any], Any],
                ascending: bool = True,
                num_partitions: Optional[int] = None) -> "RDD":
        """Globally sort by ``key_fn`` using range partitioning.

        Spark samples the data to build range bounds; here the bounds come
        from an exact quantile pass (one extra job), then a shuffle routes
        each element to its range, and partitions sort locally.
        """
        n = num_partitions or self.num_partitions()
        keys = sorted(self.map(key_fn).collect())
        if not keys:
            return self
        if not ascending:
            keys = keys[::-1]
        bounds = [keys[(i + 1) * len(keys) // n] for i in range(n - 1)]

        def range_partition(key):
            lo = 0
            for i, bound in enumerate(bounds):
                cmp = key <= bound if ascending else key >= bound
                if cmp:
                    return i
                lo = i + 1
            return lo

        class _RangePartitioner(Partitioner):
            def partition(self, key):  # noqa: D401 - tiny adapter
                return range_partition(key)

        keyed = self.map(lambda x: (key_fn(x), x))
        shuffled = ShuffledRDD(keyed, _RangePartitioner(n), combine_op=None)

        def local_sort(_idx: int, data: list, ctx: TaskContext) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD)
            ordered = sorted(data, key=lambda kv: kv[0],
                             reverse=not ascending)
            return [value for _key, value in ordered]

        return MapPartitionsRDD(shuffled, local_sort, label="sortBy")

    def zip_with_index(self) -> "RDD":
        """Pair each element with its global index.

        Like Spark, this triggers one job to learn partition sizes before
        the lazy indexed RDD can be built.
        """
        sizes = self.sc.run_job(
            self, lambda _i, data, ctx: (
                ctx.charge(len(data) * ELEMENT_OVERHEAD), len(data))[1])
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def run(idx: int, data: list, ctx: TaskContext) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD)
            base = offsets[idx]
            return [(x, base + i) for i, x in enumerate(data)]

        return MapPartitionsRDD(self, run, label="zipWithIndex")

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs ``(a, b)``; |partitions| = product of both sides'.

        Spark computes this with a CartesianRDD; here the right side is
        collected and broadcast per task (adequate for the small right
        sides this engine targets, and the cost model still charges the
        replication through the broadcast).
        """
        right_bc = self.sc.broadcast(other.collect())

        def run(_idx: int, data: list, ctx: TaskContext) -> list:
            right = right_bc.value
            ctx.charge(len(data) * len(right) * ELEMENT_OVERHEAD)
            return [(a, b) for a in data for b in right]

        return MapPartitionsRDD(self, run, label="cartesian")

    def intersection(self, other: "RDD") -> "RDD":
        """Distinct elements present in both RDDs (one shuffle)."""
        tagged = (self.map(lambda x: (x, 0))
                  .cogroup(other.map(lambda x: (x, 1))))
        return (tagged
                .filter(lambda kv: bool(kv[1][0]) and bool(kv[1][1]))
                .keys())

    def subtract(self, other: "RDD") -> "RDD":
        """Elements of this RDD not present in ``other`` (multiset-safe)."""
        tagged = (self.map(lambda x: (x, 0))
                  .cogroup(other.map(lambda x: (x, 1))))
        return tagged.filter(lambda kv: not kv[1][1]) \
            .flat_map(lambda kv: [kv[0]] * len(kv[1][0]))

    # ---- actions (delegate to the context) -------------------------------------
    def count_by_key(self) -> Dict[Any, int]:
        """Counts per key (returned to the driver as a dict)."""
        return dict(self.map(lambda kv: (kv[0], 1))
                    .reduce_by_key(lambda a, b: a + b).collect())

    def count_by_value(self) -> Dict[Any, int]:
        """Counts per distinct element."""
        return dict(self.map(lambda x: (x, 1))
                    .reduce_by_key(lambda a, b: a + b).collect())

    def top(self, n: int, key: Optional[Callable[[Any], Any]] = None
            ) -> list:
        """The ``n`` largest elements, descending (Spark's ``top``)."""
        return self.take_ordered(n, key=key, reverse=True)

    def take_ordered(self, n: int,
                     key: Optional[Callable[[Any], Any]] = None,
                     reverse: bool = False) -> list:
        """The ``n`` smallest (or largest) elements.

        Each partition keeps only its local top-n (what Spark's
        bounded-priority-queue does), so only ``n * partitions`` elements
        reach the driver.
        """
        if n < 0:
            raise ValueError(f"takeOrdered(n) needs n >= 0, got {n}")
        if n == 0:
            return []
        key_fn = key if key is not None else (lambda x: x)

        def local_top(_i: int, data: list, ctx: TaskContext) -> list:
            ctx.charge(len(data) * ELEMENT_OVERHEAD)
            return sorted(data, key=key_fn, reverse=reverse)[:n]

        partials = self.sc.run_job(self, local_top)
        merged: list = []
        for chunk in partials:
            merged.extend(chunk)
        return sorted(merged, key=key_fn, reverse=reverse)[:n]

    def collect(self) -> list:
        """Materialize the whole dataset at the driver."""
        return self.sc.collect(self)

    def count(self) -> int:
        """Number of elements."""
        return self.sc.count(self)

    def first(self) -> Any:
        """The first element (raises on an empty RDD)."""
        return self.take(1)[0]

    def take(self, n: int) -> list:
        """First ``n`` elements in partition order."""
        return self.sc.take(self, n)

    def reduce(self, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce all elements with ``op`` (partitions, then driver)."""
        return self.sc.reduce(self, op)

    def fold(self, zero: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Fold with a zero value (zero folded once per partition)."""
        return self.sc.fold(self, zero, op)

    def aggregate(self, zero: Any, seq_op: Callable, comb_op: Callable) -> Any:
        """Single-level aggregate: partitions then a flat driver merge."""
        return self.sc.aggregate(self, zero, seq_op, comb_op)

    def tree_aggregate(self, zero: Any, seq_op: Callable, comb_op: Callable,
                       depth: int = 2, imm: bool = False) -> Any:
        """Spark's ``treeAggregate`` (see :mod:`repro.core.aggregation`).

        ``imm=True`` runs the paper's Tree+IMM variant (in-memory merge of
        task results inside each executor before the tree).
        """
        from ..core.aggregation import tree_aggregate
        return tree_aggregate(self, zero, seq_op, comb_op, depth=depth,
                              imm=imm)

    def tree_reduce(self, op: Callable[[Any, Any], Any],
                    depth: int = 2) -> Any:
        """``treeReduce`` expressed through ``treeAggregate``."""
        from ..core.aggregation import tree_reduce
        return tree_reduce(self, op, depth=depth)

    def split_aggregate(self, zero: Any, seq_op: Callable, split_op: Callable,
                        reduce_op: Callable, concat_op: Callable,
                        spec: Any = None, *,
                        merge_op: Optional[Callable] = None,
                        parallelism: Optional[int] = None,
                        topology_aware: Optional[bool] = None,
                        recovery: Any = None) -> Any:
        """Sparker's split aggregation (see :mod:`repro.core.sai`).

        ``spec`` is an :class:`~repro.core.AggregationSpec` carrying the
        collective algorithm (or ``"auto"`` for the cost-model tuner),
        parallelism, topology awareness and recovery policy; the
        ``parallelism`` / ``topology_aware`` / ``recovery`` keywords are
        deprecated shims mapping onto it. ``merge_op`` is the
        executor-local IMM merge over whole aggregators (defaults to a
        whole-object ``splitOp``/``reduceOp`` round-trip, valid when
        aggregator and segment types coincide).
        """
        from ..core.sai import split_aggregate
        return split_aggregate(self, zero, seq_op, split_op, reduce_op,
                               concat_op, spec, merge_op=merge_op,
                               parallelism=parallelism,
                               topology_aware=topology_aware,
                               recovery=recovery)

    def sum(self) -> Any:
        """Sum of all elements."""
        return self.fold(0, lambda a, b: a + b)

    def foreach(self, f: Callable[[Any], None]) -> None:
        """Run ``f`` on every element (for side effects)."""
        self.sc.run_job(self, lambda _idx, data, ctx: (
            _charge_elementwise(ctx, f, data),
            [f(x) for x in data],
        )[0])

    def num_partitions_action(self) -> int:
        """Spark's ``getNumPartitions`` (no job needed)."""
        return self.num_partitions()

    def __repr__(self) -> str:
        return (f"<{self.name} id={self.id} "
                f"partitions={self.num_partitions()}>")


def _charge_elementwise(ctx: TaskContext, f: Callable, data: list) -> None:
    """Charge iteration overhead plus any per-element Costed costs."""
    total = len(data) * ELEMENT_OVERHEAD
    if isinstance(f, Costed):
        for x in data:
            total += f.cost(x)
    ctx.charge(total)


# --------------------------------------------------------------------------
# Concrete RDDs
# --------------------------------------------------------------------------
class ParallelCollectionRDD(RDD):
    """Driver data sliced into partitions (``sc.parallelize``)."""

    def __init__(self, sc: "SparkerContext", data: Sequence[Any],
                 num_slices: int):
        if num_slices < 1:
            raise ValueError(f"num_slices must be >= 1, got {num_slices}")
        super().__init__(sc, deps=[])
        self._data = list(data)
        self._slices = min(num_slices, max(1, len(self._data))) \
            if self._data else num_slices
        bounds = np.linspace(0, len(self._data), self._slices + 1)
        self._bounds = [int(round(b)) for b in bounds]

    def num_partitions(self) -> int:
        return self._slices

    def compute(self, index: int, ctx: TaskContext) -> list:
        lo, hi = self._bounds[index], self._bounds[index + 1]
        return self._data[lo:hi]


class MapPartitionsRDD(RDD):
    """The workhorse narrow transformation."""

    def __init__(self, parent: RDD,
                 run: Callable[[int, list, TaskContext], list],
                 label: str = "mapPartitions"):
        super().__init__(parent.sc, deps=[OneToOneDependency(parent)])
        self._parent = parent
        self._run = run
        self.name = label

    def num_partitions(self) -> int:
        return self._parent.num_partitions()

    def compute(self, index: int, ctx: TaskContext) -> list:
        data = self._parent.iterator(index, ctx)
        return self._run(index, data, ctx)


class UnionRDD(RDD):
    """Concatenation of several parents' partition lists."""

    def __init__(self, sc: "SparkerContext", parents: Sequence[RDD]):
        if not parents:
            raise ValueError("union needs at least one parent")
        deps: List[Dependency] = []
        out_start = 0
        self._offsets: List[Tuple[int, RDD]] = []
        for parent in parents:
            n = parent.num_partitions()
            deps.append(_RangeDependency(parent, 0, out_start, n))
            self._offsets.append((out_start, parent))
            out_start += n
        self._total = out_start
        super().__init__(sc, deps=deps)

    def num_partitions(self) -> int:
        return self._total

    def compute(self, index: int, ctx: TaskContext) -> list:
        starts = [s for s, _ in self._offsets]
        pos = bisect.bisect_right(starts, index) - 1
        start, parent = self._offsets[pos]
        return parent.iterator(index - start, ctx)


class CoalescedRDD(RDD):
    """Narrow repartitioning: adjacent parent partitions are grouped."""

    def __init__(self, parent: RDD, num_partitions: int):
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}")
        n_parent = parent.num_partitions()
        n_out = min(num_partitions, n_parent)
        bounds = np.linspace(0, n_parent, n_out + 1)
        groups = [list(range(int(round(bounds[i])), int(round(bounds[i + 1]))))
                  for i in range(n_out)]
        super().__init__(parent.sc,
                         deps=[_CoalesceDependency(parent, groups)])
        self._parent = parent
        self._groups = groups

    def num_partitions(self) -> int:
        return len(self._groups)

    def compute(self, index: int, ctx: TaskContext) -> list:
        out: list = []
        for parent_index in self._groups[index]:
            out.extend(self._parent.iterator(parent_index, ctx))
        return out


class ShuffledRDD(RDD):
    """Reduce side of a shuffle: merges fetched buckets per key."""

    def __init__(self, parent: RDD, partitioner: Partitioner,
                 combine_op: Optional[Callable[[Any, Any], Any]] = None,
                 group: bool = False):
        shuffle_id = parent.sc.shuffle_manager_new_id()
        self.dep = ShuffleDependency(parent, partitioner, shuffle_id,
                                     combine_op=combine_op)
        super().__init__(parent.sc, deps=[self.dep])
        self._group = group
        parent.sc.map_output_tracker.register_shuffle(
            shuffle_id, parent.num_partitions())

    def num_partitions(self) -> int:
        return self.dep.partitioner.num_partitions

    def compute(self, index: int, ctx: TaskContext) -> list:
        records = ctx.fetched.get((self.dep.shuffle_id, index))
        if records is None:
            raise RuntimeError(
                f"shuffle {self.dep.shuffle_id} partition {index} was not "
                f"fetched before compute — scheduler bug")
        ctx.charge(len(records) * ELEMENT_OVERHEAD)
        merged: Dict[Any, Any] = {}
        op = self.dep.combine_op
        merge_bw = self.sc.cluster.config.merge_bandwidth
        if self._group:
            for key, value in records:
                merged.setdefault(key, []).append(value)
        elif op is not None:
            for key, value in records:
                if key in merged:
                    combined = op(merged[key], value)
                    ctx.charge(sim_sizeof(combined) / merge_bw
                               + cost_of(op, merged[key], value))
                    merged[key] = combined
                else:
                    merged[key] = value
        else:
            # No combining: keep every record (like a plain partitionBy).
            return list(records)
        return list(merged.items())
