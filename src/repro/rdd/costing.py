"""Cost annotations for user functions running inside simulated tasks.

The engine executes user closures (map functions, ``seqOp``/``combOp``) for
real, but real wall-clock time on the test machine says nothing about time
on the paper's clusters. A :class:`Costed` wrapper attaches a *virtual cost
model* to a callable; every engine call site that invokes user code checks
for it and charges the declared cost to the running task.

Example: a logistic-regression ``seqOp`` whose virtual cost is proportional
to the sample's non-zeros at the platform's per-element rate::

    seq_op = Costed(lambda agg, pt: agg.add(pt),
                    lambda agg, pt: pt.nnz * FLOP_TIME)
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Costed", "cost_of", "ELEMENT_OVERHEAD"]

#: default per-element iteration overhead charged by bulk transformations
#: (JVM iterator + closure dispatch per record, ~50 ns)
ELEMENT_OVERHEAD = 50e-9


class Costed:
    """A callable with an attached virtual-cost model.

    ``cost_fn`` receives the same arguments as ``fn`` and returns seconds of
    virtual time; a float is accepted as a constant cost.
    """

    __slots__ = ("fn", "cost_fn")

    def __init__(self, fn: Callable, cost_fn: Any):
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {type(fn).__name__}")
        if not callable(cost_fn) and not isinstance(cost_fn, (int, float)):
            raise TypeError("cost_fn must be callable or a constant")
        self.fn = fn
        self.cost_fn = cost_fn

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)

    def cost(self, *args: Any, **kwargs: Any) -> float:
        if callable(self.cost_fn):
            value = self.cost_fn(*args, **kwargs)
        else:
            value = float(self.cost_fn)
        if value < 0:
            raise ValueError(f"negative cost {value} from {self.fn!r}")
        return value


def cost_of(fn: Callable, *args: Any, **kwargs: Any) -> float:
    """Virtual cost of calling ``fn(*args)``; 0 for un-annotated callables."""
    if isinstance(fn, Costed):
        return fn.cost(*args, **kwargs)
    return 0.0
