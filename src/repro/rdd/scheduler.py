"""The DAG scheduler: stages, task placement, retries, lineage recovery.

Jobs arrive as ``(rdd, func, partitions)``. The scheduler walks the lineage
for incomplete shuffle dependencies, runs their map stages bottom-up, then
runs the final stage. Three stage flavours:

* **ShuffleMapStage** — produces map outputs for one shuffle dependency,
* **ResultStage** — applies the job function and returns results to the
  driver (each result pays serialize → network → driver-CPU deserialize,
  the cost chain the paper's tree aggregation is built on),
* **ReducedResultStage** — the paper's IMM stage (§4.3): results merge into
  executor-shared objects; *any* task failure aborts and resubmits the
  whole stage, because shared mutable state breaks task independence.

Fault handling mirrors Spark: plain task failures retry on another executor
(up to 4 attempts); a ``FetchFailed`` resubmits the lost parent map stage
and retries the current stage; lost cached blocks recompute through
lineage in ``RDD.iterator``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs import (
    JobEnd,
    JobStart,
    SpeculativeAttempt,
    StageCompleted,
    StageSubmitted,
)
from ..sim import Interrupt, SimulationError
from .executor import Executor, ExecutorLost
from .rdd import RDD, ShuffleDependency
from .shuffle import FetchFailed
from .speculation import (
    BACKUP_FAILED,
    CommitGate,
    SpeculationLost,
    SpeculationWave,
)
from .tasks import ReducedResultTask, ResultTask, ShuffleMapTask, Task

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkerContext

__all__ = ["DAGScheduler", "StageInfo", "JobFailed"]

#: task attempts before a job is failed
MAX_TASK_FAILURES = 4
#: stage resubmissions before a job is failed
MAX_STAGE_ATTEMPTS = 4


class JobFailed(Exception):
    """The job could not complete within the retry budget."""


@dataclass
class StageInfo:
    """One executed stage, recorded for tests and the benchmark harness."""

    stage_id: int
    kind: str  # "shuffle_map" | "result" | "reduced_result"
    rdd_name: str
    num_tasks: int
    attempt: int
    submitted_at: float
    finished_at: Optional[float] = field(default=None)

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def duration(self) -> Optional[float]:
        """Wall time of the stage, or ``None`` while still running.

        A stage interrupted mid-flight (driver crash, aborted run) never
        closes; ``None`` forces callers to handle that case instead of
        silently propagating NaN through totals.
        """
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class DAGScheduler:
    """Builds and runs the stage graph for each job."""

    def __init__(self, sc: "SparkerContext"):
        self.sc = sc
        self._next_stage_id = 0
        #: every executed stage, in completion order
        self.stage_log: List[StageInfo] = []

    # ------------------------------------------------------------------- jobs
    def run_job(self, rdd: RDD, func: Callable[[int, list, Any], Any],
                partitions: Optional[Sequence[int]] = None,
                job_id: Optional[int] = None, pool: Optional[str] = None,
                parent_span: int = -1) -> Generator:
        """Process body: run a job, returning per-partition results.

        ``job_id``/``pool``/``parent_span`` are captured by the submitting
        driver thread (see :meth:`SparkerContext.run_job`): this generator
        body executes on whichever thread pumps the event loop, so any
        per-submitter state must arrive as explicit arguments rather than
        be read from thread-local scope here.
        """
        sc = self.sc
        parts = list(partitions if partitions is not None
                     else range(rdd.num_partitions()))
        if job_id is None:
            job_id = sc.new_job_id()
        self._job_start(job_id, "result", rdd, len(parts), parent_span)
        yield sc.env.timeout(sc.cluster.config.driver_job_overhead)
        for attempt in range(MAX_STAGE_ATTEMPTS):
            yield from self._ensure_shuffles(rdd, job_id, pool)
            stage_id = self._new_stage_id()
            info = self._open_stage(stage_id, "result", rdd, len(parts),
                                    attempt, job_id)

            def factory(partition: int, task_attempt: int) -> Task:
                return ResultTask(stage_id, attempt, rdd, partition,
                                  task_attempt, func)

            try:
                raw = yield from self._run_tasks(rdd, parts, factory,
                                                 retry_tasks=True, pool=pool)
            except FetchFailed:
                self._close_stage(info, job_id)
                continue  # parent stage will be resubmitted
            self._close_stage(info, job_id)
            results: Dict[int, Any] = {}
            # Task results deserialize concurrently on the driver's
            # result-getter pool (4 threads in Spark).
            desers = {
                partition: sc.env.process(sc.driver_fetch_work(
                    sc.serde.deser_time_bytes(nbytes)))
                for partition, (_value, nbytes) in raw.items()
            }
            for partition, (value, _nbytes) in raw.items():
                yield desers[partition]
                results[partition] = value
            self._job_end(job_id, "result", succeeded=True)
            return [results[p] for p in parts]
        self._job_end(job_id, "result", succeeded=False)
        raise JobFailed(f"result stage of RDD {rdd.id} kept losing parents")

    def run_reduced_job(self, rdd: RDD,
                        func: Callable[[int, list, Any], Any],
                        reduce_op: Callable[[Any, Any], Any],
                        job_id: int,
                        partitions: Optional[Sequence[int]] = None,
                        detail: bool = False,
                        on_merged: Optional[Callable[
                            [int, int, Tuple[int, int]], None]] = None,
                        pool: Optional[str] = None,
                        ordered: bool = False,
                        parent_span: int = -1) -> Generator:
        """Process body: run an IMM reduced-result stage (paper §4.3).

        Returns ``[(executor_id, object_id), ...]`` — one entry per executor
        that holds a merged aggregator. Any task failure clears the shared
        objects and resubmits the entire stage.

        ``partitions`` restricts the stage to a subset (recovery re-runs
        only a dead executor's lost partitions); with ``detail`` the return
        value is ``(holders, contributions)`` where ``contributions`` maps
        each holding executor to the sorted partitions merged into it —
        the lineage record recovery needs to recompute a lost partial.

        ``on_merged`` threads the partition-completion hook onto every
        :class:`~repro.rdd.tasks.ReducedResultTask` of the stage (see
        that class) — the pipelined collective path uses it to learn,
        in virtual time, when each executor's aggregator is complete.

        ``ordered`` selects the service concurrency mode: task partials
        are deposited per partition and folded in sorted partition order
        after the wave (same per-merge cost formula), so the merged value
        does not depend on cross-job completion-order jitter. Incompatible
        with ``on_merged`` — the pipelined path needs arrival-order
        streaming.
        """
        sc = self.sc
        if ordered and on_merged is not None:
            raise ValueError(
                "ordered IMM defers merging to stage end; the pipelined "
                "path's on_merged hook requires arrival-order merges")
        parts = list(partitions if partitions is not None
                     else range(rdd.num_partitions()))
        self._job_start(job_id, "reduced_result", rdd, len(parts),
                        parent_span)
        yield sc.env.timeout(sc.cluster.config.driver_job_overhead)
        stage_id = self._new_stage_id()
        object_id = (job_id, stage_id)
        for attempt in range(MAX_STAGE_ATTEMPTS):
            yield from self._ensure_shuffles(rdd, job_id, pool)
            info = self._open_stage(stage_id, "reduced_result", rdd,
                                    len(parts), attempt, job_id)

            def factory(partition: int, task_attempt: int,
                        _attempt: int = attempt) -> Task:
                return ReducedResultTask(stage_id, _attempt, rdd, partition,
                                         task_attempt, func, reduce_op,
                                         object_id, on_merged=on_merged,
                                         ordered=ordered)

            try:
                raw = yield from self._run_tasks(rdd, parts, factory,
                                                 retry_tasks=False,
                                                 pool=pool)
                if ordered:
                    # Deterministic deferred merge: every holding executor
                    # folds its deposited partials in sorted partition
                    # order, concurrently across executors, inside the
                    # stage window (so stage duration includes the merge
                    # cost the arrival-order path pays per task).
                    folds = [
                        sc.env.process(
                            sc.executor_by_id(eid).object_manager
                            .fold_deposits(object_id, attempt, reduce_op),
                            name=f"imm-fold:e{eid}")
                        for eid in sorted({e for e, _ in raw.values()})
                    ]
                    try:
                        for fold in folds:
                            yield fold
                    except BaseException:
                        for fold in folds:
                            if fold.is_alive:
                                fold.interrupt("stage aborted")
                        raise
            except FetchFailed:
                self._cleanup_objects(object_id)
                self._close_stage(info, job_id)
                continue
            except (Interrupt, JobFailed, SimulationError):
                # Not task failures: the driver is being torn down, a
                # nested stage exhausted its budget, or the kernel itself
                # broke. Resubmitting would mask the real problem.
                raise
            except Exception:
                # IMM semantics: the shared value may be partially merged;
                # clean up the whole stage and resubmit it (paper §3.2).
                # TaskKilled/ExecutorLost land here with every other task
                # failure — one handler, one policy.
                self._cleanup_objects(object_id)
                self._close_stage(info, job_id)
                continue
            self._close_stage(info, job_id)
            holders: List[Tuple[int, Tuple[int, int]]] = []
            contributions: Dict[int, List[int]] = {}
            seen: Set[int] = set()
            for partition, (executor_id, obj_id) in sorted(raw.items()):
                if executor_id not in seen:
                    seen.add(executor_id)
                    holders.append((executor_id, obj_id))
                contributions.setdefault(executor_id, []).append(partition)
            self._job_end(job_id, "reduced_result", succeeded=True)
            if detail:
                return holders, contributions
            return holders
        self._job_end(job_id, "reduced_result", succeeded=False)
        raise JobFailed(
            f"reduced-result stage of RDD {rdd.id} failed "
            f"{MAX_STAGE_ATTEMPTS} times")

    def _cleanup_objects(self, object_id: Tuple[int, int]) -> None:
        for executor in self.sc.executors:
            executor.object_manager.clear(object_id)

    # ------------------------------------------------------------ map stages
    def _ensure_shuffles(self, rdd: RDD, job_id: int,
                         pool: Optional[str] = None) -> Generator:
        """Run map stages for every incomplete shuffle below ``rdd``."""
        for dep in self._shuffle_deps_topo(rdd):
            if not self.sc.map_output_tracker.is_complete(dep.shuffle_id):
                yield from self._run_map_stage(dep, job_id, pool)

    @staticmethod
    def _shuffle_deps_topo(rdd: RDD) -> List[ShuffleDependency]:
        order: List[ShuffleDependency] = []
        seen: Set[int] = set()

        def visit(r: RDD) -> None:
            if r.id in seen:
                return
            seen.add(r.id)
            for dep in r.deps:
                visit(dep.rdd)
                if isinstance(dep, ShuffleDependency):
                    order.append(dep)

        visit(rdd)
        return order

    def _run_map_stage(self, dep: ShuffleDependency, job_id: int,
                       pool: Optional[str] = None) -> Generator:
        sc = self.sc
        tracker = sc.map_output_tracker
        for attempt in range(MAX_STAGE_ATTEMPTS):
            missing = tracker.missing_maps(dep.shuffle_id)
            if not missing:
                return
            stage_id = self._new_stage_id()
            info = self._open_stage(stage_id, "shuffle_map", dep.rdd,
                                    len(missing), attempt, job_id)

            def factory(partition: int, task_attempt: int,
                        _attempt: int = attempt) -> Task:
                return ShuffleMapTask(stage_id, _attempt, dep.rdd, partition,
                                      task_attempt, dep)

            try:
                raw = yield from self._run_tasks(dep.rdd, missing, factory,
                                                 retry_tasks=True, pool=pool)
            except FetchFailed:
                self._close_stage(info, job_id)
                # A grandparent shuffle lost outputs; rebuild it first.
                yield from self._ensure_shuffles(dep.rdd, job_id, pool)
                continue
            self._close_stage(info, job_id)
            for partition, status in raw.items():
                tracker.register_map_output(dep.shuffle_id, partition, status)
            if not tracker.missing_maps(dep.shuffle_id):
                return
        raise JobFailed(f"map stage for shuffle {dep.shuffle_id} kept failing")

    # ------------------------------------------------------------- task waves
    def _run_tasks(self, rdd: RDD, partitions: Sequence[int],
                   task_factory: Callable[[int, int], Task],
                   retry_tasks: bool,
                   pool: Optional[str] = None) -> Generator:
        """Run one task per partition; returns ``{partition: output}``.

        With ``retry_tasks`` each task retries independently (Spark's normal
        path); without it the first failure aborts the whole wave after
        interrupting its peers (IMM semantics).

        When ``sc.speculation`` is armed and the wave retries tasks
        independently, a straggler monitor runs alongside the attempt
        loops: attempts running far past the median completed duration
        are cloned onto healthy executors, and a :class:`CommitGate`
        threaded through every task guarantees exactly one copy commits
        (IMM waves are excluded — their shared-mutable merge breaks the
        task independence duplicate attempts rely on).
        """
        sc = self.sc
        env = sc.env
        alive = [e for e in sc.executors if e.alive]
        if not alive:
            raise ExecutorLost("no alive executors in the cluster")

        policy = sc.speculation
        wave: Optional[SpeculationWave] = None
        monitor = None
        factory = task_factory
        if pool is not None:
            # Stamp the submitting job's pool on every task of the wave
            # (first attempts, retries, speculative clones alike) so the
            # FAIR arbiter can bill slot time to the right tenant.
            def factory(partition: int, task_attempt: int,
                        _factory=task_factory) -> Task:
                task = _factory(partition, task_attempt)
                task.pool = pool
                return task

            task_factory = factory
        if (policy is not None and retry_tasks
                and len(partitions) >= policy.min_tasks):
            gate = CommitGate()
            wave = SpeculationWave(env, total=len(partitions))

            def factory(partition: int, task_attempt: int,
                        _factory=task_factory, _wave=wave,
                        _gate=gate) -> Task:
                task = _factory(partition, task_attempt)
                task.commit_gate = _gate
                _wave.stage_id = task.stage_id
                return task

        host_pool = sc.host_pool
        if host_pool is not None and host_pool.enabled:
            # Batch the stage's provably-pure task bodies onto the host
            # pool before spawning attempt loops; executors claim the
            # memoized results instead of re-running the compute. Consumes
            # no virtual time and misses fall back to inline execution.
            host_pool.precompute(sc, rdd, partitions, factory,
                                 self._pick_executor)

        loops = [
            env.process(
                self._attempt_loop(rdd, partition, position, factory,
                                   retry_tasks, wave),
                name=f"attempts:p{partition}")
            for position, partition in enumerate(partitions)
        ]
        if wave is not None:
            monitor = env.process(
                self._speculation_monitor(rdd, wave, policy, factory),
                name="speculation-monitor")
        results: Dict[int, Any] = {}
        failure: Optional[BaseException] = None
        for loop in loops:
            if failure is None:
                try:
                    partition, output = yield loop
                    results[partition] = output
                except BaseException as exc:  # noqa: BLE001
                    failure = exc
                    for other in loops:
                        if other.is_alive:
                            other.interrupt("stage aborted")
            else:
                try:
                    yield loop
                except BaseException:  # noqa: BLE001 - already aborting
                    pass
        if monitor is not None and monitor.is_alive:
            monitor.interrupt("wave complete")
        if wave is not None:
            for shepherd in wave.shepherds:
                if shepherd.is_alive:
                    shepherd.interrupt("wave complete")
        if failure is not None:
            raise failure
        return results

    def _attempt_loop(self, rdd: RDD, partition: int, position: int,
                      task_factory: Callable[[int, int], Task],
                      retry_tasks: bool,
                      wave: Optional[SpeculationWave] = None) -> Generator:
        sc = self.sc
        health = sc.health
        tried: Set[int] = set()
        current = None
        failures = 0
        try:
            while True:
                executor = self._pick_executor(rdd, partition, position,
                                               tried)
                task = task_factory(partition, failures)
                current = executor.submit(task)
                if wave is not None:
                    wave.task_started(partition, executor.executor_id,
                                      current)
                try:
                    output = yield current
                    if wave is not None:
                        wave.task_finished(partition)
                    health.record_success(executor.executor_id)
                    return partition, output
                except FetchFailed:
                    raise
                except (Interrupt, JobFailed, SimulationError):
                    # Abort/teardown and scheduler-level failures are not
                    # retryable task outcomes; let them surface untouched.
                    raise
                except SpeculationLost:
                    # A speculative clone claimed the commit while this
                    # attempt was finishing. Normally its result stands;
                    # if the clone dies mid-commit the claim is released
                    # and this loop retries the task itself.
                    wave.task_stopped(partition)
                    committed = yield from wave.await_commit(partition)
                    if committed is not BACKUP_FAILED:
                        return partition, committed
                    failures += 1
                    if not retry_tasks or failures >= MAX_TASK_FAILURES:
                        raise
                except Exception:
                    # TaskKilled, ExecutorLost and every other task-level
                    # failure: same retry budget, same policy.
                    if wave is not None:
                        wave.task_stopped(partition)
                        if partition in wave.results:
                            # Killed because the clone already committed;
                            # hand back its result, not a failure.
                            return partition, wave.results[partition]
                    health.record_failure(executor.executor_id)
                    failures += 1
                    tried.add(executor.executor_id)
                    if not retry_tasks or failures >= MAX_TASK_FAILURES:
                        raise
                    delay = health.retry_delay(failures)
                    if delay > 0:
                        yield sc.env.timeout(delay)
        except Interrupt:
            if current is not None and current.is_alive:
                current.interrupt("stage aborted")
            raise

    def _pick_executor(self, rdd: RDD, partition: int, position: int,
                       tried: Set[int]) -> Executor:
        sc = self.sc
        health = sc.health
        pinned = rdd.pinned_executor(partition)
        if pinned is not None:
            executor = sc.executor_by_id(pinned)
            if not executor.alive:
                raise ExecutorLost(
                    f"task pinned to dead executor {pinned}")
            return executor
        for executor_id in rdd.preferred_executors(partition):
            executor = sc.executor_by_id(executor_id)
            if (executor.alive and executor_id not in tried
                    and not health.is_quarantined(executor_id)):
                return executor
        alive = [e for e in sc.executors if e.alive]
        if not alive:
            raise ExecutorLost("no alive executors in the cluster")
        # Quarantined executors leave the pool while healthy peers exist;
        # with no quarantines this is exactly the seed scheduler's choice.
        healthy = [e for e in alive
                   if not health.is_quarantined(e.executor_id)]
        pool_base = healthy or alive
        fresh = [e for e in pool_base if e.executor_id not in tried]
        pool = fresh or pool_base
        return pool[position % len(pool)]

    # ---------------------------------------------------------- speculation
    def _speculation_monitor(self, rdd: RDD, wave: SpeculationWave,
                             policy, task_factory) -> Generator:
        """Process body: periodically clone straggling attempts."""
        sc = self.sc
        env = sc.env
        try:
            while True:
                yield env.timeout(policy.interval)
                threshold = wave.threshold(policy)
                if threshold is None:
                    continue
                now = env.now
                for partition in sorted(wave.running):
                    if partition in wave.speculated:
                        continue
                    started, executor_id, _proc = wave.running[partition]
                    elapsed = now - started
                    if elapsed <= threshold:
                        continue
                    backup = self._pick_backup(rdd, partition, executor_id)
                    if backup is None:
                        continue
                    wave.speculated.add(partition)
                    sc.health.record_straggle(executor_id)
                    attempt = wave.next_backup_attempt()
                    self._emit_speculative(
                        "launched", wave.stage_id, partition, executor_id,
                        backup.executor_id, attempt, threshold, elapsed)
                    wave.shepherds.append(env.process(
                        self._backup_shepherd(wave, task_factory, partition,
                                              backup, attempt, executor_id),
                        name=f"speculate:p{partition}"))
        except Interrupt:
            pass

    def _pick_backup(self, rdd: RDD, partition: int,
                     busy_executor_id: int) -> Optional[Executor]:
        """Healthiest idle executor for a clone, or None if there is none.

        Pinned tasks never speculate (their placement is the contract);
        quarantined executors are skipped. The total order (score, live
        tasks, id) makes the choice deterministic.
        """
        sc = self.sc
        if rdd.pinned_executor(partition) is not None:
            return None
        health = sc.health
        candidates = [
            e for e in sc.executors
            if e.alive and e.executor_id != busy_executor_id
            and not health.is_quarantined(e.executor_id)
        ]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda e: (health.score(e.executor_id),
                                  len(e._running), e.executor_id))

    def _backup_shepherd(self, wave: SpeculationWave, task_factory,
                         partition: int, executor: Executor, attempt: int,
                         original_executor_id: int) -> Generator:
        """Process body: run one speculative clone and settle the race."""
        sc = self.sc
        task = task_factory(partition, attempt)
        proc = executor.submit(task)
        try:
            output = yield proc
        except Interrupt:
            # Wave teardown: the race was already settled without us.
            if proc.is_alive:
                proc.interrupt("wave complete")
            return
        except SpeculationLost:
            self._emit_speculative(
                "original_won", wave.stage_id, partition,
                original_executor_id, executor.executor_id, attempt)
            return
        except Exception:
            sc.health.record_failure(executor.executor_id)
            self._emit_speculative(
                "backup_failed", wave.stage_id, partition,
                original_executor_id, executor.executor_id, attempt)
            # If the clone died holding the claim it was released in the
            # executor; wake a waiting original so it retries.
            wave.resolve(partition, BACKUP_FAILED)
            return
        wave.results[partition] = output
        sc.health.record_success(executor.executor_id)
        self._emit_speculative(
            "speculative_won", wave.stage_id, partition,
            original_executor_id, executor.executor_id, attempt)
        wave.resolve(partition, output)
        entry = wave.running.get(partition)
        if entry is not None and entry[2].is_alive:
            entry[2].interrupt("lost speculation race")

    def _emit_speculative(self, action: str, stage_id: int, partition: int,
                          executor_id: int, backup_executor_id: int,
                          attempt: int, threshold: float = 0.0,
                          elapsed: float = 0.0) -> None:
        bus = self.sc.event_bus
        if bus.active:
            bus.emit(SpeculativeAttempt(
                time=self.sc.env.now, action=action, stage_id=stage_id,
                partition=partition, executor_id=executor_id,
                backup_executor_id=backup_executor_id, attempt=attempt,
                threshold=threshold, elapsed=elapsed))

    # ------------------------------------------------------------ bookkeeping
    def _new_stage_id(self) -> int:
        stage_id = self._next_stage_id
        self._next_stage_id += 1
        return stage_id

    def _open_stage(self, stage_id: int, kind: str, rdd: RDD,
                    num_tasks: int, attempt: int, job_id: int) -> StageInfo:
        info = StageInfo(stage_id=stage_id, kind=kind, rdd_name=rdd.name,
                         num_tasks=num_tasks, attempt=attempt,
                         submitted_at=self.sc.env.now)
        self.stage_log.append(info)
        bus = self.sc.event_bus
        if bus.active:
            tracer = bus.tracer
            span = tracer.open_stage(stage_id, attempt, job_id)
            bus.emit(StageSubmitted(
                time=info.submitted_at, stage_id=stage_id,
                attempt=attempt, stage_kind=kind, rdd_name=info.rdd_name,
                num_tasks=num_tasks, job_id=job_id,
                span_id=span, parent_span_id=tracer.job_span(job_id)))
        return info

    def _close_stage(self, info: StageInfo, job_id: int) -> None:
        info.finished_at = self.sc.env.now
        bus = self.sc.event_bus
        if bus.active:
            tracer = bus.tracer
            bus.emit(StageCompleted(
                time=info.finished_at, stage_id=info.stage_id,
                attempt=info.attempt, stage_kind=info.kind,
                rdd_name=info.rdd_name, num_tasks=info.num_tasks,
                job_id=job_id, began=info.submitted_at,
                span_id=tracer.close_stage(info.stage_id, info.attempt),
                parent_span_id=tracer.job_span(job_id)))

    def _job_start(self, job_id: int, job_kind: str, rdd: RDD,
                   num_partitions: int, parent_span: int = -1) -> None:
        """Emit JobStart. ``parent_span`` is captured on the submitting
        thread (the driver parent stack is per-submitter); callers that
        don't pass one fall back to this thread's stack — identical for
        the classic blocking API, where submit and execute share a
        thread."""
        bus = self.sc.event_bus
        if bus.active:
            tracer = bus.tracer
            if parent_span < 0:
                parent_span = tracer.current_parent
            bus.emit(JobStart(time=self.sc.env.now, job_id=job_id,
                              job_kind=job_kind, rdd_name=rdd.name,
                              num_partitions=num_partitions,
                              span_id=tracer.open_job(job_id),
                              parent_span_id=parent_span))

    def _job_end(self, job_id: int, job_kind: str, succeeded: bool) -> None:
        bus = self.sc.event_bus
        if bus.active:
            bus.emit(JobEnd(time=self.sc.env.now, job_id=job_id,
                            job_kind=job_kind, succeeded=succeeded,
                            span_id=bus.tracer.close_job(job_id)))
