"""Parallel host-side task compute: the engine's multi-core backend.

The simulation kernel is inherently single-threaded — virtual time advances
one event at a time — but the *user compute* inside tasks (seqOps folding
gradients over cached partitions) is pure CPU work whose result the
simulation only consumes. A :class:`HostPool` exploits that: before a stage's
attempt loops are spawned, the DAG scheduler hands the pool the stage's
provable-pure tasks; the pool executes their ``task.run`` bodies on forked
worker processes (broadcast values and cached partitions are shared via
fork's copy-on-write), memoizes ``(result, charged_cost, effects)`` per
task attempt, and the executor *replays* the memo at the exact point the
inline ``task.run`` call would have happened.

Bit-identity contract
---------------------
The pool is a pure memoization layer: it never touches the event queue, and
a replayed memo produces byte-identical state transitions to the inline
call —

* the **result** is the pickled round-trip of the same computation run on
  the same process image (fork), so NumPy payloads are bit-equal;
* the **charge** is the task context's accumulated virtual cost, settled by
  the executor exactly as an inline run's would be;
* **effects** (a ShuffleMapTask's bucket writes) are replayed against the
  executor's shuffle store at claim time — the same synchronous,
  clock-free calls ``run`` would have made;
* **accumulator updates** transfer onto the live task context and publish
  under the normal exactly-once rules.

Anything not *provably* pure falls back to inline execution: tasks with a
shuffle fetch plan, lineage over an un-cached persisted RDD (a cache miss
would put blocks and charge materialization), RDDs that opt out via
``host_compute_pure`` (SpawnRDD reads executor-resident IMM state), retried
attempts, re-placed tasks, and any run with tracing active (cache hits emit
:class:`~repro.obs.BlockEvent` at simulated timestamps a worker cannot
know).

Zero-copy result transport
--------------------------
Forked workers serialize memos with pickle protocol 5 and a
``buffer_callback``, which peels every contiguous NumPy buffer in the
memo's object graph (bare ndarray results, the ``buf`` inside an IMM
merge input like ``FlatAggregator``) out of the pickle stream. When the
peeled buffers total at least :data:`_SHM_MIN_BYTES` the worker copies
them into one :mod:`multiprocessing.shared_memory` segment with a
deterministic name (``sparker_hp_<parent pid>_<entry index>``) and ships
only the small pickle head plus buffer sizes through the pipe; the
driver attaches the segment, **unlinks it immediately** (the mapping
outlives the name, so a later crash cannot leak the file), and rebuilds
the arrays as writable views over shared memory — the payload bytes are
never copied or pickled. Sub-threshold or unpicklable-out-of-band
results fall back to in-band pickle frames, byte-identical to the old
transport.

Segment lifecycle: attached segments are parked in a module registry so
their mappings stay valid for as long as the simulation holds views into
them, and an :mod:`atexit` sweep closes them at interpreter shutdown.
If a worker dies between creating a segment and flushing its frame, the
driver reaps the orphan by probing the deterministic names of every
entry it never received (:func:`_reap_orphan`); chaos runs therefore
leave nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

try:  # pragma: no cover - absent on some minimal platforms
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _resource_tracker = None
    _shared_memory = None

from .accumulators import pop_task_context, push_task_context
from .task_context import TaskContext
from .tasks import ReducedResultTask, ResultTask, ShuffleMapTask, Task

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkerContext
    from .executor import Executor
    from .rdd import RDD

__all__ = ["HostPool", "TaskMemo"]

#: pipe frame header: unsigned 64-bit payload length
_HEADER = struct.Struct(">Q")

#: shared-memory segment name prefix (suffix: ``<parent pid>_<entry index>``)
_SHM_PREFIX = "sparker_hp_"
#: smallest total out-of-band payload worth a shared-memory segment; below
#: this the per-segment syscalls cost more than pickling the bytes in-band
_SHM_MIN_BYTES = 4096

#: attached (already unlinked) segments whose mappings back live arrays
_live_segments: List[Any] = []


def _sweep_segments(final: bool = False) -> None:
    """Close every parked segment mapping whose views are gone.

    All parked segments are already unlinked, so nothing here affects
    ``/dev/shm`` — this only releases the driver's own mappings. A close
    raises ``BufferError`` while simulation state still holds array
    views into the mapping; such segments stay parked (``final=False``,
    called between stages and from tests) or have their bookkeeping
    detached so no destructor re-raises at interpreter teardown
    (``final=True``, the :mod:`atexit` path — the OS reclaims the
    mapping at process death).
    """
    kept = []
    while _live_segments:
        seg = _live_segments.pop()
        try:
            seg.close()
        except BufferError:
            if final:  # pragma: no cover - views alive at interpreter exit
                seg._buf = None
                seg._mmap = None
                if getattr(seg, "_fd", -1) >= 0:
                    try:
                        os.close(seg._fd)
                    except OSError:
                        pass
                    seg._fd = -1
            else:
                kept.append(seg)
    _live_segments.extend(kept)


atexit.register(_sweep_segments, final=True)


def _segment_name(parent_pid: int, index: int) -> str:
    return f"{_SHM_PREFIX}{parent_pid}_{index}"


def _encode_frame(index: int, memo: Optional["TaskMemo"],
                  parent_pid: int) -> bytes:
    """Worker-side: serialize ``(index, memo)`` into one pipe frame.

    Contiguous NumPy buffers inside the memo are peeled out-of-band
    (pickle protocol 5); large payloads ride a freshly created
    shared-memory segment, small ones are shipped in-band as bytes.
    The frame is ``(head, segment_name, buffer_sizes, inline_buffers)``.
    """
    proto = pickle.HIGHEST_PROTOCOL
    buffers: List[pickle.PickleBuffer] = []
    try:
        head = pickle.dumps((index, memo), proto,
                            buffer_callback=buffers.append)
    except Exception:
        return pickle.dumps(
            (pickle.dumps((index, None), proto), None, None, None), proto)
    raws = [buf.raw() for buf in buffers]
    total = sum(len(raw) for raw in raws)
    if _shared_memory is not None and total >= _SHM_MIN_BYTES:
        name = _segment_name(parent_pid, index)
        try:
            seg = _shared_memory.SharedMemory(name=name, create=True,
                                              size=total)
        except Exception:
            seg = None
        if seg is not None:
            sizes = []
            offset = 0
            for raw in raws:
                n = len(raw)
                seg.buf[offset:offset + n] = raw
                sizes.append(n)
                offset += n
            seg.close()
            try:
                # The worker hands ownership to the driver, which reaps
                # the segment even if this worker dies before the frame
                # lands (deterministic names); keeping the create-side
                # tracker entry would make the tracker warn about — and
                # try to unlink — names the driver already released.
                _resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:  # pragma: no cover
                pass
            return pickle.dumps((head, name, sizes, None), proto)
    # bytearray, not bytes: NumPy rebuilds out-of-band buffers as views
    # over the object shipped here, and a bytes buffer would make every
    # rebuilt array read-only — downstream merges mutate them in place.
    return pickle.dumps((head, None, None,
                         [bytearray(raw) for raw in raws]), proto)


def _decode_frame(payload: bytes) -> Tuple[int, Optional["TaskMemo"]]:
    """Driver-side: rebuild ``(index, memo)`` from one pipe frame.

    Shared-memory frames attach the worker's segment, unlink it at once
    (so no name can outlive this process, crash included), rebuild the
    memo's arrays as zero-copy views over the mapping, and park the
    segment in :data:`_live_segments` to keep the mapping alive.
    """
    head, name, sizes, inline = pickle.loads(payload)
    if name is None:
        if inline is None:
            return pickle.loads(head)
        return pickle.loads(head, buffers=inline)
    seg = _shared_memory.SharedMemory(name=name)
    try:
        seg.unlink()
        views = []
        offset = 0
        for n in sizes:
            views.append(seg.buf[offset:offset + n])
            offset += n
        result = pickle.loads(head, buffers=views)
    except Exception:
        try:
            seg.close()
        except BufferError:  # pragma: no cover
            pass
        raise
    _live_segments.append(seg)
    return result


def _reap_orphan(parent_pid: int, index: int) -> None:
    """Unlink the segment a dead worker may have left for ``index``."""
    if _shared_memory is None:  # pragma: no cover
        return
    try:
        seg = _shared_memory.SharedMemory(name=_segment_name(parent_pid,
                                                             index))
    except FileNotFoundError:
        return
    except Exception:  # pragma: no cover - permission races etc.
        return
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover
        pass
    seg.close()


class TaskMemo:
    """The memoized outcome of one precomputed task attempt."""

    __slots__ = ("result", "charged", "effects", "accumulator_updates")

    def __init__(self, result: Any, charged: float,
                 effects: List[Tuple[int, int, int, list, float]],
                 accumulator_updates: Dict[int, Any]):
        self.result = result
        self.charged = charged
        #: recorded ``put_bucket`` calls, in call order
        self.effects = effects
        self.accumulator_updates = accumulator_updates

    def replay(self, ctx: TaskContext, executor: "Executor") -> Any:
        """Apply this memo as if ``task.run(ctx)`` had just executed."""
        for shuffle_id, map_index, reduce_index, records, nbytes in \
                self.effects:
            executor.shuffle_store.put_bucket(
                shuffle_id, map_index, reduce_index, records, nbytes)
        if self.charged > 0:
            ctx.charge(self.charged)
        if self.accumulator_updates:
            ctx.accumulator_updates.update(self.accumulator_updates)
        return self.result


class _RecordingShuffleStore:
    """Worker-side shim capturing a task's bucket writes as replayable data."""

    __slots__ = ("inner", "records")

    def __init__(self, inner: Any):
        self.inner = inner
        self.records: List[Tuple[int, int, int, list, float]] = []

    def put_bucket(self, shuffle_id: int, map_index: int, reduce_index: int,
                   records: list, nbytes: float) -> None:
        self.records.append(
            (shuffle_id, map_index, reduce_index, records, nbytes))

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class HostPool:
    """Multi-process precompute + memoization of pure task bodies.

    Parameters
    ----------
    size:
        Worker process count. ``size <= 1`` disables precompute entirely —
        the engine runs the untouched serial path (this is the benchmark's
        ``pool=1`` arm).
    mode:
        ``"fork"`` (default) runs workers as forked processes;
        ``"inline"`` computes the memos serially in the driver process —
        no parallelism, but it exercises the exact memo/replay machinery
        (used by tests and by platforms without ``os.fork``).
    """

    def __init__(self, size: int = 0, mode: str = "fork"):
        if mode not in ("fork", "inline"):
            raise ValueError(f"unknown hostpool mode {mode!r}")
        if mode == "fork" and not hasattr(os, "fork"):  # pragma: no cover
            mode = "inline"
        self.size = int(size)
        self.mode = mode
        self._memos: Dict[Tuple[int, int, int, int, int], TaskMemo] = {}
        #: counters for the benchmark/profiler: tasks precomputed, memos
        #: claimed, tasks that fell back to inline execution
        self.stats = {"precomputed": 0, "claimed": 0, "inline": 0,
                      "stages_batched": 0}

    @property
    def enabled(self) -> bool:
        return self.size > 1 or self.mode == "inline"

    # ------------------------------------------------------------- purity
    @staticmethod
    def _lineage_pure(rdd: "RDD", partition: int,
                      executor: "Executor") -> bool:
        """True if computing ``partition`` of ``rdd`` on ``executor`` is a
        pure function of process memory (cache hits all the way down)."""
        from .rdd import NarrowDependency

        if not getattr(rdd, "host_compute_pure", True):
            return False
        if rdd.storage_level is not None:
            if executor.memory_store.contains((rdd.id, partition)):
                return True  # cache hit: compute never recurses past here
            return False  # a miss would put blocks + charge materialization
        for dep in rdd.deps:
            if not isinstance(dep, NarrowDependency):
                return False  # shuffle input: fetched state, stay inline
            for parent_index in dep.parent_partitions(partition):
                if not HostPool._lineage_pure(dep.rdd, parent_index,
                                              executor):
                    return False
        return True

    def _offloadable(self, sc: "SparkerContext", task: Task,
                     executor: "Executor") -> bool:
        if sc.event_bus.active:
            return False  # cache hits must emit timestamped BlockEvents
        if not isinstance(task, (ShuffleMapTask, ResultTask,
                                 ReducedResultTask)):
            return False
        if task.fetch_plan():
            return False
        return self._lineage_pure(task.rdd, task.partition, executor)

    # --------------------------------------------------------- precompute
    def precompute(self, sc: "SparkerContext", rdd: "RDD",
                   partitions: Any, task_factory: Callable[[int, int], Task],
                   pick_executor: Callable) -> None:
        """Batch-execute the offloadable subset of a stage's first attempts.

        Called by the DAG scheduler immediately before it spawns the
        stage's attempt loops; consumes no virtual time. Stages run
        strictly sequentially, so any memos left over from a previous
        stage (placement mispredictions) are dropped first, and segment
        mappings whose arrays the simulation has let go are released.
        """
        self._memos.clear()
        _sweep_segments()
        if not self.enabled:
            return
        entries: List[Tuple[Tuple[int, int, int, int, int], Task,
                            "Executor"]] = []
        for position, partition in enumerate(partitions):
            try:
                task = task_factory(partition, 0)
                executor = pick_executor(rdd, partition, position, set())
            except Exception:  # placement will fail in-sim too; stay inline
                continue
            if not self._offloadable(sc, task, executor):
                continue
            key = (task.stage_id, task.stage_attempt, task.partition,
                   task.attempt, executor.executor_id)
            entries.append((key, task, executor))
        if not entries:
            return
        if self.mode == "inline" or self.size <= 1 or len(entries) == 1:
            computed = {i: self._compute(task, executor)
                        for i, (_k, task, executor) in enumerate(entries)}
        else:
            computed = self._fork_compute(entries)
        claimed_any = False
        for i, (key, _task, _executor) in enumerate(entries):
            memo = computed.get(i)
            if memo is not None:
                self._memos[key] = memo
                self.stats["precomputed"] += 1
                claimed_any = True
        if claimed_any:
            self.stats["stages_batched"] += 1

    @staticmethod
    def _compute(task: Task, executor: "Executor") -> Optional[TaskMemo]:
        """Run one task body against ``executor``'s stores, capturing the
        memo. Returns None when the body raises (the inline rerun will
        reproduce the failure inside the simulation, where retry logic
        lives)."""
        recorder = None
        if isinstance(task, ShuffleMapTask):
            recorder = _RecordingShuffleStore(executor.shuffle_store)
            executor.shuffle_store = recorder
        ctx = TaskContext(task.stage_id, task.partition, task.attempt,
                          executor=executor)
        push_task_context(ctx)
        try:
            result = task.run(ctx)
        except Exception:
            return None
        finally:
            pop_task_context()
            if recorder is not None:
                executor.shuffle_store = recorder.inner
        return TaskMemo(result, ctx.charged,
                        recorder.records if recorder is not None else [],
                        ctx.accumulator_updates)

    def _fork_compute(self, entries: list) -> Dict[int, TaskMemo]:
        """Compute ``entries`` on ``min(size, len(entries))`` forked workers.

        Worker ``w`` owns entries ``i`` with ``i % workers == w`` and
        streams back length-prefixed frames built by :func:`_encode_frame`
        (NumPy payloads ride shared memory, the rest in-band pickle);
        entries whose memo fails to serialize are skipped individually
        (the simulation runs them inline instead). Orphaned segments of
        entries whose frame never arrived — a worker crash between
        segment creation and frame flush — are reaped before returning.
        """
        workers = min(self.size, len(entries))
        parent_pid = os.getpid()
        if _resource_tracker is not None:
            # Spawn the resource tracker *before* forking so workers
            # inherit it instead of each lazily spawning their own —
            # a per-worker tracker would outlive its worker and try to
            # clean names the driver has already unlinked.
            try:
                _resource_tracker.ensure_running()
            except Exception:  # pragma: no cover
                pass
        pipes: List[Tuple[int, int]] = []
        pids: List[int] = []
        for w in range(workers):
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:  # pragma: no cover - child process
                status = 0
                try:
                    os.close(read_fd)
                    for sibling_read, _closed in pipes:
                        os.close(sibling_read)
                    with os.fdopen(write_fd, "wb") as out:
                        for i in range(w, len(entries), workers):
                            _key, task, executor = entries[i]
                            memo = self._compute(task, executor)
                            payload = _encode_frame(i, memo, parent_pid)
                            out.write(_HEADER.pack(len(payload)))
                            out.write(payload)
                except BaseException:
                    status = 1
                finally:
                    os._exit(status)
            os.close(write_fd)
            pipes.append((read_fd, write_fd))
            pids.append(pid)

        computed: Dict[int, TaskMemo] = {}
        received = set()
        for read_fd, _write_fd in pipes:
            with os.fdopen(read_fd, "rb") as src:
                while True:
                    header = src.read(_HEADER.size)
                    if len(header) < _HEADER.size:
                        break
                    (length,) = _HEADER.unpack(header)
                    payload = src.read(length)
                    if len(payload) < length:
                        break  # worker died mid-frame; its entries inline
                    try:
                        i, memo = _decode_frame(payload)
                    except Exception:
                        continue
                    received.add(i)
                    if memo is not None:
                        computed[i] = memo
        for pid in pids:
            os.waitpid(pid, 0)
        for i in range(len(entries)):
            if i not in received:
                _reap_orphan(parent_pid, i)
        return computed

    # -------------------------------------------------------------- claim
    def claim(self, task: Task, executor: "Executor") -> Optional[TaskMemo]:
        """Pop the memo for this exact attempt on this exact executor.

        Retries (``attempt > 0``), stage reattempts, and re-placements all
        miss by construction of the key, falling back to inline execution.
        """
        if not self._memos:
            return None
        key = (task.stage_id, task.stage_attempt, task.partition,
               task.attempt, executor.executor_id)
        memo = self._memos.pop(key, None)
        if memo is not None:
            self.stats["claimed"] += 1
        return memo

    def close(self) -> None:
        """Release pool-held resources (idempotent).

        Workers are forked per :meth:`precompute` call and reaped there,
        so the only durable state is the memo table and any parked
        shared-memory mappings whose arrays the simulation has let go.
        Context teardown calls this so chaos runs — a job raising
        mid-stage — cannot strand either across context lifetimes.
        """
        self._memos.clear()
        _sweep_segments()

    def __repr__(self) -> str:
        return (f"<HostPool size={self.size} mode={self.mode} "
                f"stats={self.stats}>")
