"""Shuffle bookkeeping: map-output registry and executor shuffle stores.

A shuffle moves key-value data across a stage boundary. Map tasks bucket
their output by reduce partition, optionally combining values map-side, and
register the buckets with the driver's :class:`MapOutputTracker`. Reduce
tasks fetch every map task's bucket for their partition — from local memory
when the bucket was produced on the same executor, over the network
otherwise — paying serialization both ways, exactly the cost structure that
makes Spark's tree aggregation expensive for large aggregators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["MapStatus", "MapOutputTracker", "ShuffleStore", "FetchFailed"]


class FetchFailed(Exception):
    """A reduce task could not fetch a map output (executor lost).

    The DAG scheduler reacts by resubmitting the parent map stage, which is
    Spark's lineage-based recovery for shuffles.
    """

    def __init__(self, shuffle_id: int, map_index: int, executor_id: int):
        super().__init__(
            f"shuffle {shuffle_id} map {map_index} lost on "
            f"executor {executor_id}")
        self.shuffle_id = shuffle_id
        self.map_index = map_index
        self.executor_id = executor_id


@dataclass
class MapStatus:
    """Where one map task's output lives and how big each bucket is."""

    executor_id: int
    #: simulated serialized bytes per reduce partition
    bucket_bytes: Tuple[float, ...]


class MapOutputTracker:
    """Driver-side registry of completed shuffle map outputs."""

    def __init__(self) -> None:
        self._statuses: Dict[int, Dict[int, MapStatus]] = {}
        self._num_maps: Dict[int, int] = {}

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        self._statuses.setdefault(shuffle_id, {})
        self._num_maps[shuffle_id] = num_maps

    def register_map_output(self, shuffle_id: int, map_index: int,
                            status: MapStatus) -> None:
        self._statuses[shuffle_id][map_index] = status

    def unregister_executor(self, executor_id: int) -> int:
        """Drop every map output that lived on ``executor_id``."""
        dropped = 0
        for statuses in self._statuses.values():
            for map_index in list(statuses):
                if statuses[map_index].executor_id == executor_id:
                    del statuses[map_index]
                    dropped += 1
        return dropped

    def status(self, shuffle_id: int, map_index: int) -> Optional[MapStatus]:
        return self._statuses.get(shuffle_id, {}).get(map_index)

    def is_complete(self, shuffle_id: int) -> bool:
        statuses = self._statuses.get(shuffle_id)
        if statuses is None:
            return False
        return len(statuses) == self._num_maps.get(shuffle_id, -1)

    def missing_maps(self, shuffle_id: int) -> List[int]:
        statuses = self._statuses.get(shuffle_id, {})
        total = self._num_maps.get(shuffle_id, 0)
        return [i for i in range(total) if i not in statuses]

    def num_maps(self, shuffle_id: int) -> int:
        return self._num_maps.get(shuffle_id, 0)


class ShuffleStore:
    """One executor's shuffle-bucket storage.

    Keyed by ``(shuffle_id, map_index, reduce_index)``; holds the actual
    bucket data (list of key-value pairs) plus its simulated serialized
    size.
    """

    def __init__(self, executor_id: int):
        self.executor_id = executor_id
        self._buckets: Dict[Tuple[int, int, int], Tuple[list, float]] = {}

    def put_bucket(self, shuffle_id: int, map_index: int, reduce_index: int,
                   records: list, sim_bytes: float) -> None:
        self._buckets[(shuffle_id, map_index, reduce_index)] = (
            list(records), float(sim_bytes))

    def get_bucket(self, shuffle_id: int, map_index: int,
                   reduce_index: int) -> Optional[Tuple[list, float]]:
        return self._buckets.get((shuffle_id, map_index, reduce_index))

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        return len(self._buckets)
