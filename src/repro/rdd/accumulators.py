"""Accumulators: write-only shared variables (Spark's metric channel).

Tasks add to an accumulator; only the driver reads the total. Spark uses
these for internal metrics (records read, bytes spilled) and MLlib for
things like sample counts. Semantics mirror Spark's:

* updates from **successful** task attempts are applied exactly once —
  a retried task's failed attempt contributes nothing;
* updates become visible to the driver when the task completes;
* accumulators are not readable inside tasks.

Implementation: each task attempt buffers its updates in the
:class:`~repro.rdd.task_context.TaskContext`; the executor publishes the
buffer to the driver only when the attempt finishes cleanly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generic, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkerContext
    from .task_context import TaskContext

__all__ = ["Accumulator", "AccumulatorRegistry"]

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A driver-readable, task-addable counter."""

    def __init__(self, sc: "SparkerContext", accum_id: int, zero: T,
                 add_op: Callable[[T, T], T], name: str = ""):
        self._sc = sc
        self.accum_id = accum_id
        self.name = name or f"accumulator_{accum_id}"
        self._zero = zero
        self._add_op = add_op
        self._value = zero

    @property
    def value(self) -> T:
        """Driver-side read of the accumulated total."""
        ctx = _active_task_context()
        if ctx is not None:
            raise RuntimeError(
                f"accumulator {self.name!r} cannot be read inside a task")
        return self._value

    def add(self, amount: T) -> None:
        """Add ``amount`` — buffered per attempt inside tasks, immediate
        on the driver."""
        ctx = _active_task_context()
        if ctx is None:
            self._value = self._add_op(self._value, amount)
            return
        buffered = ctx.accumulator_updates.get(self.accum_id, self._zero)
        ctx.accumulator_updates[self.accum_id] = self._add_op(buffered,
                                                              amount)

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    # ------------------------------------------------------------- plumbing
    def _apply(self, amount: T) -> None:
        """Driver-side merge of one completed attempt's buffered update."""
        self._value = self._add_op(self._value, amount)

    def reset(self) -> None:
        """Driver-side reset to the zero value."""
        self._value = self._zero

    def __repr__(self) -> str:
        return f"<Accumulator {self.name!r} id={self.accum_id}>"


class AccumulatorRegistry:
    """Driver-side registry; resolves ids to accumulators on publish."""

    def __init__(self) -> None:
        self._accumulators: Dict[int, Accumulator] = {}
        self._next_id = 0

    def create(self, sc: "SparkerContext", zero: Any,
               add_op: Callable[[Any, Any], Any],
               name: str = "") -> Accumulator:
        accum = Accumulator(sc, self._next_id, zero, add_op, name)
        self._accumulators[self._next_id] = accum
        self._next_id += 1
        return accum

    def publish(self, updates: Dict[int, Any]) -> None:
        """Apply one successful task attempt's buffered updates."""
        for accum_id, amount in updates.items():
            accum = self._accumulators.get(accum_id)
            if accum is not None:
                accum._apply(amount)


# --------------------------------------------------------------------------
# Active-task tracking: lets Accumulator.add know whether it runs inside a
# task (buffer per attempt) or on the driver (apply immediately). The
# executor sets/clears this around user code; the simulation is
# single-threaded, so a module global is safe and deterministic.
# --------------------------------------------------------------------------
_ACTIVE_CONTEXT: list = []


def _active_task_context():
    return _ACTIVE_CONTEXT[-1] if _ACTIVE_CONTEXT else None


def push_task_context(ctx: "TaskContext") -> None:
    _ACTIVE_CONTEXT.append(ctx)


def pop_task_context() -> None:
    _ACTIVE_CONTEXT.pop()
