"""Partitioners for key-value shuffles."""

from __future__ import annotations

from typing import Any

__all__ = ["Partitioner", "HashPartitioner", "ModuloPartitioner"]


class Partitioner:
    """Maps keys to reduce-partition indices."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other) and
                self.num_partitions == other.num_partitions)  # type: ignore

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``hash(key) mod n`` (non-negative)."""

    def partition(self, key: Any) -> int:
        return hash(key) % self.num_partitions


class ModuloPartitioner(Partitioner):
    """For integer keys: ``key mod n``.

    This is what ``treeAggregate`` uses — it keys partial aggregators by
    ``partition_index % scale``, which must land deterministically.
    """

    def partition(self, key: Any) -> int:
        return int(key) % self.num_partitions
