"""A from-scratch Spark-like dataflow engine on the simulated cluster.

Implements the substrate the paper's contribution plugs into: RDDs with
lineage, a DAG scheduler with shuffle stage boundaries, executors with task
slots, block/shuffle storage, broadcast, and fault recovery. See
``DESIGN.md`` §3 for the module map.
"""

from .accumulators import Accumulator
from .broadcast import Broadcast
from .context import SparkerContext
from .costing import ELEMENT_OVERHEAD, Costed, cost_of
from .executor import Executor, ExecutorLost, TaskKilled
from .partitioner import HashPartitioner, ModuloPartitioner, Partitioner
from .rdd import (
    RDD,
    CoalescedRDD,
    MapPartitionsRDD,
    ParallelCollectionRDD,
    ShuffledRDD,
    UnionRDD,
)
from .scheduler import DAGScheduler, JobFailed, StageInfo
from .shuffle import FetchFailed, MapOutputTracker
from .speculation import SpeculationLost, SpeculationPolicy
from .storage import BlockTracker, MemoryStore, StorageLevel
from .task_context import TaskContext

__all__ = [
    "SparkerContext",
    "RDD",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "CoalescedRDD",
    "ShuffledRDD",
    "Broadcast",
    "Accumulator",
    "Costed",
    "cost_of",
    "ELEMENT_OVERHEAD",
    "Executor",
    "ExecutorLost",
    "TaskKilled",
    "Partitioner",
    "HashPartitioner",
    "ModuloPartitioner",
    "DAGScheduler",
    "StageInfo",
    "JobFailed",
    "SpeculationPolicy",
    "SpeculationLost",
    "FetchFailed",
    "MapOutputTracker",
    "BlockTracker",
    "MemoryStore",
    "StorageLevel",
    "TaskContext",
]
