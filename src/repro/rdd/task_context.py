"""Per-task execution context.

A :class:`TaskContext` travels with one task attempt through user code. It
accumulates the task's virtual compute cost (user functions annotated with
:class:`~repro.rdd.costing.Costed` charge through it), carries pre-fetched
shuffle inputs, and identifies the attempt for fault-injection tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .executor import Executor

__all__ = ["TaskContext"]


class TaskContext:
    """State visible to user code while a task attempt runs."""

    def __init__(self, stage_id: int, partition_id: int, attempt: int,
                 executor: "Executor"):
        self.stage_id = stage_id
        self.partition_id = partition_id
        self.attempt = attempt
        self.executor = executor
        #: accumulated virtual compute seconds, settled by the executor
        self.charged = 0.0
        #: shuffle inputs pre-fetched by the executor:
        #: ``(shuffle_id, reduce_partition) -> list of (key, value)``
        self.fetched: Dict[Tuple[int, int], list] = {}
        #: per-attempt accumulator updates (published only on success)
        self.accumulator_updates: Dict[int, Any] = {}

    def charge(self, seconds: float) -> None:
        """Add ``seconds`` of virtual compute time to this task."""
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds}")
        self.charged += seconds

    def drain_charges(self) -> float:
        """Return and reset the accumulated charge (engine hook)."""
        charged, self.charged = self.charged, 0.0
        return charged

    def __repr__(self) -> str:
        return (f"<TaskContext stage={self.stage_id} "
                f"partition={self.partition_id} attempt={self.attempt}>")
