"""The paper's contribution: tree aggregation, split aggregation (SAI), IMM.

* :func:`tree_aggregate` — Spark's baseline ``treeAggregate`` (with an
  ``imm=True`` variant for the paper's "Tree+IMM" ablation),
* :func:`split_aggregate` — Sparker's split aggregation interface backed by
  the PDR ring reduce-scatter,
* :class:`SpawnRDD` — statically scheduled tasks (§4.3),
* :class:`MutableObjectManager` — the in-memory merge substrate (§3.2).
"""

from .aggregation import fresh_zero, tree_aggregate, tree_reduce
from .auto_split import (
    AutoSegment,
    DerivedOps,
    UnsplittableError,
    derive_split_ops,
)
from .imm import MutableObjectManager, ObjectId, StaleMergeError
from .sai import split_aggregate
from .spawn_rdd import SpawnRDD
from .spec import (
    COLLECTIVES,
    AggregationSpec,
    resolve_host_pool,
    resolve_sparse_policy,
    spec_with_legacy,
    warn_deprecated_kwarg,
)

__all__ = [
    "tree_aggregate",
    "tree_reduce",
    "split_aggregate",
    "AggregationSpec",
    "COLLECTIVES",
    "resolve_sparse_policy",
    "resolve_host_pool",
    "spec_with_legacy",
    "warn_deprecated_kwarg",
    "derive_split_ops",
    "DerivedOps",
    "AutoSegment",
    "UnsplittableError",
    "fresh_zero",
    "SpawnRDD",
    "MutableObjectManager",
    "ObjectId",
    "StaleMergeError",
]
