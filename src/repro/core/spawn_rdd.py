"""SpawnRDD: statically scheduled tasks over executor-resident state.

Paper §4.3: "SpawnRDD enables task creation with static scheduling. Given a
closure describing the task and a list of executor ids describing the task
locations, SpawnRDD will launch tasks exactly according to the executor
list." Split aggregation uses it to run one task per executor over the
aggregator that the reduced-result stage left in that executor's mutable
object manager.

Unlike ordinary RDDs, SpawnRDD partitions are *not* relocatable: the data
lives only in one executor's memory, so a dead pinned executor fails the
task (the caller restarts the aggregation from its own lineage).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple

from ..rdd.executor import ExecutorLost
from ..rdd.rdd import RDD
from ..rdd.task_context import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from ..rdd.context import SparkerContext

__all__ = ["SpawnRDD"]


class SpawnRDD(RDD):
    """One pinned task per entry of ``(executor_id, closure)``."""

    #: closures read executor-resident IMM state — never host-precomputable
    host_compute_pure = False

    def __init__(self, sc: "SparkerContext",
                 tasks: Sequence[Tuple[int, Callable[[TaskContext], Any]]]):
        if not tasks:
            raise ValueError("SpawnRDD needs at least one task")
        super().__init__(sc, deps=[])
        self._tasks: List[Tuple[int, Callable[[TaskContext], Any]]] = list(tasks)
        self.name = "SpawnRDD"

    # ---------------------------------------------------------- construction
    @classmethod
    def from_holders(cls, sc: "SparkerContext",
                     holders: Sequence[Tuple[int, Tuple[int, int]]]
                     ) -> "SpawnRDD":
        """A SpawnRDD reading IMM-merged aggregators from their executors.

        ``holders`` is the ``[(executor_id, object_id), ...]`` list returned
        by :meth:`SparkerContext.run_reduced_job`.
        """
        def reader(object_id: Tuple[int, int]):
            def read(ctx: TaskContext) -> Any:
                value = ctx.executor.object_manager.get(object_id)
                if value is None:
                    raise ExecutorLost(
                        f"aggregator {object_id} is gone from executor "
                        f"{ctx.executor.executor_id}")
                return value
            return read

        return cls(sc, [(executor_id, reader(object_id))
                        for executor_id, object_id in holders])

    @staticmethod
    def cleanup_holders(sc: "SparkerContext",
                        holders: Sequence[Tuple[int, Tuple[int, int]]]
                        ) -> None:
        """Release the IMM objects backing a finished aggregation."""
        for executor_id, object_id in holders:
            try:
                executor = sc.executor_by_id(executor_id)
            except KeyError:  # pragma: no cover - defensive
                continue
            executor.object_manager.clear(object_id)

    # ------------------------------------------------------------- RDD hooks
    def num_partitions(self) -> int:
        return len(self._tasks)

    def compute(self, index: int, ctx: TaskContext) -> list:
        executor_id, closure = self._tasks[index]
        if ctx.executor.executor_id != executor_id:
            raise ExecutorLost(
                f"SpawnRDD partition {index} is pinned to executor "
                f"{executor_id} but ran on {ctx.executor.executor_id}")
        return [closure(ctx)]

    def pinned_executor(self, index: int) -> Optional[int]:
        return self._tasks[index][0]

    def executor_ids(self) -> List[int]:
        """The static schedule, in partition order."""
        return [executor_id for executor_id, _ in self._tasks]
