"""Split aggregation: the paper's contribution (§3.1, §4.3, Figure 6).

``splitAggregate(zeroValue)(seqOp, splitOp, reduceOp, concatOp,
parallelism)`` generalizes ``treeAggregate`` with object-splitting
callbacks so the reduction can run a *scalable* algorithm:

* ``seqOp(U, T) -> U`` — fold one element into an aggregator (unchanged),
* ``splitOp(U, i, n) -> V`` — extract segment ``i`` of ``n`` from an
  aggregator; aggregator (``U``) and segment (``V``) types may differ
  (Figure 7's ``Agg`` vs ``AggSeg`` rationale),
* ``reduceOp(V, V) -> V`` — merge two segments,
* ``concatOp(Seq[V]) -> V`` — reassemble segments into the final value.

Execution (§4.3): a **reduced-result stage** folds every partition and
merges task results per executor in memory (IMM), leaving exactly one
aggregator per executor; a **SpawnRDD** pins one task per holding executor;
those tasks run the PDR ring **reduce-scatter** over ``N * parallelism``
segments; the owned segments are collected to the driver and concatenated.

The executor-local IMM merge operates on whole aggregators, which is the
one operation the four SAI callbacks cannot express when ``U != V``; pass
``merge_op`` (MLlib's existing ``combOp``) for such types. When ``U`` and
``V`` coincide (Figure 7's arrays, the micro-benchmarks), the default
derives the merge from ``splitOp``/``reduceOp`` on the whole-object
segment.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..comm.ring import ScalableCommunicator
from ..rdd.costing import ELEMENT_OVERHEAD, cost_of
from ..rdd.rdd import RDD
from ..rdd.task_context import TaskContext
from .aggregation import fresh_zero
from .spawn_rdd import SpawnRDD

__all__ = ["split_aggregate"]

SeqOp = Callable[[Any, Any], Any]
SplitOp = Callable[[Any, int, int], Any]
ReduceOp = Callable[[Any, Any], Any]
ConcatOp = Callable[[Sequence[Any]], Any]
MergeOp = Callable[[Any, Any], Any]


def split_aggregate(rdd: RDD, zero: Any, seq_op: SeqOp, split_op: SplitOp,
                    reduce_op: ReduceOp, concat_op: ConcatOp,
                    parallelism: int = 4, *,
                    merge_op: Optional[MergeOp] = None,
                    topology_aware: bool = True) -> Any:
    """Sparker's ``splitAggregate`` (blocking driver call).

    Returns the fully reduced value of type ``V`` (Figure 6: the action's
    result type is the segment type, produced by ``concatOp``).
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    sc = rdd.sc

    if merge_op is None:
        def merge_op(a: Any, b: Any) -> Any:  # noqa: F811 - documented default
            return reduce_op(split_op(a, 0, 1), split_op(b, 0, 1))

    if rdd.num_partitions() == 0:
        z = fresh_zero(zero)
        return concat_op([split_op(z, i, parallelism)
                          for i in range(parallelism)])

    # ---- stage 1: reduced-result stage with in-memory merge ---------------
    def partial_func(_idx: int, data: list, ctx: TaskContext) -> Any:
        acc = fresh_zero(zero)
        # Opt-in whole-partition fold (e.g. the batched CSR gradient
        # kernel): the seqOp object declares it and stays responsible for
        # charging the same virtual time the per-element loop would.
        folder = getattr(seq_op, "fold_partition", None)
        if folder is not None:
            return folder(acc, data, ctx)
        for x in data:
            ctx.charge(cost_of(seq_op, acc, x) + ELEMENT_OVERHEAD)
            acc = seq_op(acc, x)
        return acc

    with sc.stopwatch.span("agg.compute"):
        holders = sc.run_reduced_job(rdd, partial_func, merge_op)

    # ---- stage 2: SpawnRDD + scalable reduce-scatter, then gather ---------
    with sc.stopwatch.span("agg.reduce"):
        slot_by_id = {slot.executor_id: slot
                      for slot in sc.cluster.executors}
        slots = [slot_by_id[executor_id] for executor_id, _ in holders]
        comm = ScalableCommunicator(sc.cluster, parallelism=parallelism,
                                    topology_aware=topology_aware,
                                    slots=slots, bus=sc.event_bus)
        spawned = SpawnRDD.from_holders(sc, holders)
        # The SpawnRDD launch validates static placement and reads each
        # executor's aggregator; its (cheap) results stay executor-side —
        # the ring operates on the very same in-memory objects.
        object_by_executor = dict(holders)
        values = []
        for slot in comm.ranked:
            executor = sc.executor_by_id(slot.executor_id)
            value = executor.object_manager.get(
                object_by_executor[slot.executor_id])
            values.append(value)
        spawn_results = sc.run_job(
            spawned, lambda _i, data, _ctx: len(data))
        if len(spawn_results) != len(holders):  # pragma: no cover
            raise RuntimeError("SpawnRDD lost partitions")

        proc = sc.env.process(comm.reduce_scatter_gather(
            values, split_op, reduce_op, concat_op))
        result = sc.env.run(until=proc)

        SpawnRDD.cleanup_holders(sc, holders)
    return result
